#!/usr/bin/env bash
# The full local gate: everything CI would run, in dependency order.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test --workspace -q

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== bench smoke (PKVM_BENCH_QUICK=1) =="
PKVM_BENCH_QUICK=1 cargo bench -p pkvm-bench

echo "ci.sh: all green"
