#!/usr/bin/env bash
# The full local gate: everything CI would run, in dependency order.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test --workspace -q

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== bench smoke (PKVM_BENCH_QUICK=1) =="
PKVM_BENCH_QUICK=1 cargo bench -p pkvm-bench

echo "== quick campaign (2 workers, fixed seed) =="
# A short concurrent random-testing campaign under the oracle; the example
# exits non-zero on any violation or panic, so a concurrency regression in
# the oracle or the hypervisor fails the gate.
cargo run --release --example campaign -- 2 500 0xc1

echo "== chaos campaign (fixed seed, all hook families) =="
# Corrupts the oracle's inputs for a whole campaign, then replays the
# recorded trace twice; exits non-zero if the oracle (rather than the
# containment layer) crashes or the chaotic replay diverges.
cargo run --release --example chaos -- campaign 0xc2

echo "== trace-file record/replay (fresh-process determinism) =="
# Records a fixed-seed chaotic campaign to a .pkvmtrace file, replays it
# from disk in a *separate* process, and asserts the canonical verdict
# lines (violation counts, kinds, event sequence ids, panic, steps) are
# byte-identical. Fails if persistence or cross-process replay drifts.
TRACE_TMP="$(mktemp -t pkvmtrace.XXXXXX)"
trap 'rm -f "$TRACE_TMP"' EXIT
RECORDED_VERDICT="$(cargo run --release --example chaos -- record "$TRACE_TMP" 0xc2 400 | grep '^verdict:')"
REPLAYED_VERDICT="$(cargo run --release --example chaos -- replay "$TRACE_TMP" | grep '^verdict:')"
echo "  recorded: $RECORDED_VERDICT"
echo "  replayed: $REPLAYED_VERDICT"
if [ "$RECORDED_VERDICT" != "$REPLAYED_VERDICT" ]; then
    echo "trace-file replay verdict differs from the recording process" >&2
    exit 1
fi
cargo run --release --example trace_inspect -- "$TRACE_TMP" summary > /dev/null
cargo run --release --example trace_inspect -- "$TRACE_TMP" stats > /dev/null

echo "== compaction gate (observation-only drop preserves the verdict) =="
# Rewrites the recorded trace without its observation-only families and
# replays the compacted file: the canonical verdict line must be
# byte-identical to the original recording's.
COMPACT_TMP="$(mktemp -t pkvmcompact.XXXXXX)"
trap 'rm -f "$TRACE_TMP" "$COMPACT_TMP"' EXIT
cargo run --release --example trace_inspect -- "$TRACE_TMP" compact "$COMPACT_TMP" \
    read-once lock-acquired lock-releasing trap-enter trap-exit chaos check
COMPACT_VERDICT="$(cargo run --release --example chaos -- replay "$COMPACT_TMP" | grep '^verdict:')"
echo "  original:  $RECORDED_VERDICT"
echo "  compacted: $COMPACT_VERDICT"
if [ "$RECORDED_VERDICT" != "$COMPACT_VERDICT" ]; then
    echo "compacted trace replays to a different verdict" >&2
    exit 1
fi

echo "== differential gate (fault-catalog replay matrix, fresh-process determinism) =="
# Records one clean fixed-seed schedule, replays it against the clean
# hypervisor and every cataloged fault, and enforces: clean row
# violation-free, at least 14/17 faults diverging (only the race-window
# and init-shape bugs are structurally out of a single-threaded
# schedule's reach), and a bit-identical canonical matrix line when the
# matrix is recomputed in a *second* process.
DIFF_TMP="$(mktemp -t pkvmdiff.XXXXXX)"
trap 'rm -f "$TRACE_TMP" "$COMPACT_TMP" "$DIFF_TMP"' EXIT
cargo run --release --example differential -- record "$DIFF_TMP" 0x42 2500
DIFF_GATE="$(cargo run --release --example differential -- gate "$DIFF_TMP" 14 | grep '^diff-matrix:')"
DIFF_AGAIN="$(cargo run --release --example differential -- matrix "$DIFF_TMP" | grep '^diff-matrix:')"
echo "  gate:     $DIFF_GATE"
echo "  recheck:  $DIFF_AGAIN"
if [ "$DIFF_GATE" != "$DIFF_AGAIN" ]; then
    echo "differential matrix line differs across processes" >&2
    exit 1
fi

echo "== fuzz gate (fixed seed, coverage vs random + corpus round-trip) =="
# A short fixed-seed coverage-guided fuzzing session. Fails unless (a) the
# fuzzer's session coverage is at least the pure-random baseline's at an
# equal driver-step budget, (b) zero panics escaped the oracle's
# containment, and (c) the persisted corpus reloads and replays with
# bit-identical verdicts in a *second process*.
FUZZ_CORPUS="$(mktemp -d -t pkvmcorpus.XXXXXX)"
trap 'rm -f "$TRACE_TMP" "$COMPACT_TMP" "$DIFF_TMP"; rm -rf "$FUZZ_CORPUS"' EXIT
GATE_VERDICT="$(cargo run --release --example fuzz -- gate "$FUZZ_CORPUS" 0xc5 4000 | grep '^corpus-verdict:')"
VERIFY_VERDICT="$(cargo run --release --example fuzz -- verify "$FUZZ_CORPUS" | grep '^corpus-verdict:')"
echo "  gate:     $GATE_VERDICT"
echo "  verified: $VERIFY_VERDICT"
if [ "$GATE_VERDICT" != "$VERIFY_VERDICT" ]; then
    echo "fuzz corpus replay verdict differs across processes" >&2
    exit 1
fi

echo "== fleet gate (2 workers, forced kill + torn file, merged-corpus round-trip) =="
# A short fixed-seed 2-worker fuzzing fleet with one forced worker kill
# and one forced torn corpus file. Fails unless zero admitted seeds were
# lost, the killed worker was respawned, the torn file was skip-counted,
# the coordinator shut down cleanly, and the merged corpus replays with a
# bit-identical verdict in a *second process*.
FLEET_ROOT="$(mktemp -d -t pkvmfleet.XXXXXX)"
trap 'rm -f "$TRACE_TMP" "$COMPACT_TMP" "$DIFF_TMP"; rm -rf "$FUZZ_CORPUS" "$FLEET_ROOT"' EXIT
FLEET_VERDICT="$(cargo run --release --example fleet -- gate "$FLEET_ROOT" 0xc6 | grep '^fleet-verdict:')"
FLEET_VERIFY="$(cargo run --release --example fleet -- verify "$FLEET_ROOT" | grep '^fleet-verdict:')"
echo "  gate:     $FLEET_VERDICT"
echo "  verified: $FLEET_VERIFY"
if [ "$FLEET_VERDICT" != "$FLEET_VERIFY" ]; then
    echo "fleet merged-corpus replay verdict differs across processes" >&2
    exit 1
fi

echo "== pipeline gate (E12: mode equivalence + pipelined throughput) =="
# Runs the E3 workload at a fixed seed under CheckMode::Inline and
# CheckMode::Pipelined: exits non-zero unless both modes produce identical
# violation (kind, event seq) lists, checked-trap counts and canonical
# event-stream signatures, and pipelined checked throughput stays within
# 3x of unchecked.
cargo run --release --example pipeline_gate -- 1000 0xe12

echo "== bbm gate (E13: break-before-make spec check, both modes) =="
# The missing-TLBI bug must be detected by the break-before-make spec
# check — not only behaviourally — with identical verdicts and violation
# event seqs under CheckMode::Inline and CheckMode::Pipelined, and zero
# break-before-make verdicts on clean and stale-TLB-chaos runs.
cargo run --release --example bbm_gate -- 400 0xe13

echo "== android gate (E16: protected boot, share/unshare, churn) =="
# The Android workload surface: handwritten scenarios clean, a
# fixed-seed Android-weighted campaign violation-free and bit-identical
# under CheckMode::Inline and CheckMode::Pipelined, one detection per
# new spec check under its matching fault, and a canonical verdict line
# that reproduces when the saved trace is replayed in a *second* process.
ANDROID_TMP="$(mktemp -t pkvmandroid.XXXXXX)"
trap 'rm -f "$TRACE_TMP" "$COMPACT_TMP" "$DIFF_TMP" "$ANDROID_TMP"; rm -rf "$FUZZ_CORPUS" "$FLEET_ROOT"' EXIT
ANDROID_GATE="$(cargo run --release --example android -- gate "$ANDROID_TMP" 0xe16 1200 | grep '^android-verdict:')"
ANDROID_REPLAY="$(cargo run --release --example android -- replay "$ANDROID_TMP" | grep '^android-verdict:')"
echo "  gate:     $ANDROID_GATE"
echo "  replayed: $ANDROID_REPLAY"
if [ "$ANDROID_GATE" != "$ANDROID_REPLAY" ]; then
    echo "android trace replay verdict differs across processes" >&2
    exit 1
fi

echo "== mutation mini-sweep (3 bugs x 3 chaos families) =="
# Known bugs injected while chaos corrupts the oracle's inputs; exits
# non-zero unless every bug is still detected with no worker panic.
cargo run --release --example chaos -- mutation 0xc3

echo "ci.sh: all green"
