//! Coverage-guided fuzzing sessions, the CI gate, and the E11 experiment.
//!
//! Subcommands:
//!
//! - `run <seed> <budget> [workers] [corpus_dir [crashes_dir]]` — one
//!   fuzzing session; prints the report, exits non-zero on escaped
//!   panics or (unfaulted) crash families.
//! - `gate <corpus_dir> <seed> <budget>` — the CI gate: asserts the
//!   fuzzer's session coverage is at least a pure-random baseline's at
//!   an equal driver-step budget, that no panic escaped the oracle's
//!   containment, and prints a `corpus-verdict:` digest line that a
//!   second process (`verify`) must reproduce bit-identically.
//! - `verify <corpus_dir>` — fresh-process corpus check: reloads every
//!   persisted seed, replays it, prints the same `corpus-verdict:` line.
//! - `sweep <seed> <budget>` — experiment E11: per seeded bug family,
//!   fuzzer vs pure random detection and steps-to-detection at an equal
//!   step budget.

use std::path::PathBuf;
use std::process::ExitCode;

use pkvm_harness::coverage::CoverageSummary;
use pkvm_harness::fuzz::{corpus, FuzzCfg, Fuzzer};
use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};
use pkvm_hyp::cov;
use pkvm_hyp::faults::{Fault, FaultSet};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fuzz run <seed> <budget> [workers] [corpus_dir [crashes_dir]]\n\
         \x20      fuzz gate <corpus_dir> <seed> <budget>\n\
         \x20      fuzz verify <corpus_dir>\n\
         \x20      fuzz sweep <seed> <budget>"
    );
    ExitCode::from(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("gate") => cmd_gate(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (Some(seed), Some(budget)) = (
        args.first().and_then(|s| parse_u64(s)),
        args.get(1).and_then(|s| parse_u64(s)),
    ) else {
        return usage();
    };
    let workers = args.get(2).and_then(|s| parse_u64(s)).unwrap_or(1) as usize;
    let mut cfg = FuzzCfg::builder()
        .seed(seed)
        .step_budget(budget)
        .workers(workers);
    if let Some(dir) = args.get(3) {
        cfg = cfg.corpus_dir(dir);
    }
    if let Some(dir) = args.get(4) {
        cfg = cfg.crashes_dir(dir);
    }
    let mut fuzzer = Fuzzer::new(cfg.build());
    let report = fuzzer.run();
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Distinct coverage points (implementation + specification) a summary
/// reached.
fn points_hit(summary: &CoverageSummary) -> usize {
    summary.hyp.hit_count() + summary.spec.hit_count()
}

/// Pure-random baseline: one long oracle-checked random run, budgeted in
/// *driver events* (the same unit the fuzzer's budget counts), so the
/// comparison is apples to apples.
fn random_baseline(seed: u64, budget: u64) -> (CoverageSummary, u64, usize) {
    let before = cov::snapshot();
    let proxy = Proxy::builder().record(true).boot();
    let cfg = RandomCfg::builder()
        .seed(seed)
        .invalid_fraction(0.15)
        .build();
    let mut tester = RandomTester::new(proxy, cfg);
    let mut driver_steps = 0u64;
    while driver_steps < budget {
        tester.run(25);
        driver_steps += tester
            .proxy
            .events()
            .take_events()
            .iter()
            .filter(|r| r.event.is_driver())
            .count() as u64;
        if tester.proxy.machine.panicked().is_some() {
            break;
        }
    }
    let violations = tester.proxy.violations().len();
    (CoverageSummary::since(&before), driver_steps, violations)
}

fn cmd_gate(args: &[String]) -> ExitCode {
    let (Some(dir), Some(seed), Some(budget)) = (
        args.first().map(PathBuf::from),
        args.get(1).and_then(|s| parse_u64(s)),
        args.get(2).and_then(|s| parse_u64(s)),
    ) else {
        return usage();
    };

    let (base_cov, base_steps, base_violations) = random_baseline(seed, budget);
    let base_points = points_hit(&base_cov);
    println!(
        "baseline: {base_points} points in {base_steps} driver steps, {base_violations} violations"
    );

    let mut fuzzer = Fuzzer::new(
        FuzzCfg::builder()
            .seed(seed)
            .step_budget(budget)
            .corpus_dir(&dir)
            .build(),
    );
    let report = fuzzer.run();
    let fuzz_points = points_hit(&report.coverage);
    println!(
        "fuzzer:   {fuzz_points} points in {} driver steps, {} corpus seeds",
        report.steps, report.corpus_size
    );
    if std::env::var_os("FUZZ_GATE_DEBUG").is_some() {
        let hit = |r: &pkvm_hyp::cov::Report| {
            r.points
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|&(p, _)| p)
                .collect::<Vec<_>>()
        };
        let base: Vec<_> = [hit(&base_cov.hyp), hit(&base_cov.spec)].concat();
        let fuzz: Vec<_> = [hit(&report.coverage.hyp), hit(&report.coverage.spec)].concat();
        let only_base: Vec<_> = base.iter().filter(|p| !fuzz.contains(p)).collect();
        let only_fuzz: Vec<_> = fuzz.iter().filter(|p| !base.contains(p)).collect();
        println!("only baseline: {only_base:?}");
        println!("only fuzzer:   {only_fuzz:?}");
    }

    let mut failed = false;
    if fuzz_points < base_points {
        eprintln!(
            "fuzz gate: coverage regressed below the pure-random baseline \
             ({fuzz_points} < {base_points} points at {budget} steps)"
        );
        failed = true;
    }
    if report.escaped_panics > 0 {
        eprintln!(
            "fuzz gate: {} panics escaped the oracle's containment",
            report.escaped_panics
        );
        failed = true;
    }
    if !report.crashes.is_empty() {
        eprintln!(
            "fuzz gate: {} crash families on an unfaulted hypervisor:",
            report.crashes.len()
        );
        for c in &report.crashes {
            eprintln!("  {}", c.sig);
        }
        failed = true;
    }
    println!("{}", corpus_verdict(&dir));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let Some(dir) = args.first().map(PathBuf::from) else {
        return usage();
    };
    println!("{}", corpus_verdict(&dir));
    ExitCode::SUCCESS
}

/// Replays every persisted corpus seed (in filename order) and folds the
/// verdicts into one digest line. Any process replaying the same corpus
/// must print the identical line — the cross-process round-trip check.
/// The digest itself is [`corpus::replay_digest`], shared with the fleet
/// coordinator's shutdown audit.
fn corpus_verdict(dir: &std::path::Path) -> String {
    let (seeds, digest) = corpus::replay_digest(dir);
    format!("corpus-verdict: {seeds} seeds {digest:016x}")
}

/// The bug families experiment E11 measures, with the real pKVM bugs
/// first. Init-time families (bug 5) are excluded: they trigger at boot,
/// before any driver op, so neither method's input matters.
const SWEEP_FAULTS: &[Fault] = &[
    Fault::Bug1MemcacheAlignment,
    Fault::Bug2MemcacheSize,
    Fault::Bug3VcpuLoadRace,
    Fault::Bug4HostFaultRace,
    Fault::SynShareWrongState,
    Fault::SynShareHypExec,
    Fault::SynUnshareKeepsHypMapping,
    Fault::SynShareSkipsCheck,
    Fault::SynReclaimSkipsWipe,
    Fault::SynHostMapOffByOne,
    Fault::SynDonateWrongOwner,
    Fault::SynVcpuPutLeak,
    Fault::SynTeardownSkipsUnmap,
    Fault::SynBlockAlignment,
    Fault::SynMissingTlbi,
];

/// Pure-random detection: one oracle-checked run under `fault`, stopping
/// at the first violation. Returns driver steps to detection, if any.
fn random_detect(fault: Fault, seed: u64, budget: u64) -> Option<u64> {
    let faults = FaultSet::none();
    faults.inject(fault);
    let proxy = Proxy::builder().record(true).faults(faults).boot();
    let cfg = RandomCfg::builder()
        .seed(seed)
        .invalid_fraction(0.15)
        .build();
    let mut tester = RandomTester::new(proxy, cfg);
    let mut driver_steps = 0u64;
    while driver_steps < budget {
        tester.run(25);
        driver_steps += tester
            .proxy
            .events()
            .take_events()
            .iter()
            .filter(|r| r.event.is_driver())
            .count() as u64;
        if !tester.proxy.violations().is_empty() || tester.proxy.machine.panicked().is_some() {
            return Some(driver_steps);
        }
    }
    None
}

/// Fuzzer detection: same budget, stop at the first triaged family.
fn fuzz_detect(fault: Fault, seed: u64, budget: u64) -> Option<u64> {
    let faults = FaultSet::none();
    faults.inject(fault);
    let mut fuzzer = Fuzzer::new(
        FuzzCfg::builder()
            .seed(seed)
            .step_budget(budget)
            .faults(&faults)
            .stop_on_violation(true)
            .build(),
    );
    let report = fuzzer.run();
    report.crashes.first().map(|c| c.steps_to_find)
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let (Some(seed), Some(budget)) = (
        args.first().and_then(|s| parse_u64(s)),
        args.get(1).and_then(|s| parse_u64(s)),
    ) else {
        return usage();
    };
    println!("E11: fuzzer vs pure random, budget {budget} driver steps, seed {seed:#x}");
    println!("{:<28} {:>14} {:>14}", "fault", "random", "fuzzer");
    let (mut random_found, mut fuzz_found) = (0, 0);
    for &fault in SWEEP_FAULTS {
        let r = random_detect(fault, seed, budget);
        let f = fuzz_detect(fault, seed, budget);
        random_found += usize::from(r.is_some());
        fuzz_found += usize::from(f.is_some());
        let show = |d: Option<u64>| d.map_or("missed".into(), |s| format!("{s} steps"));
        println!("{:<28} {:>14} {:>14}", fault.name(), show(r), show(f));
    }
    println!(
        "detected: random {random_found}/{}, fuzzer {fuzz_found}/{}",
        SWEEP_FAULTS.len(),
        SWEEP_FAULTS.len()
    );
    if fuzz_found >= random_found {
        ExitCode::SUCCESS
    } else {
        eprintln!("fuzzer detected fewer bug families than pure random");
        ExitCode::FAILURE
    }
}
