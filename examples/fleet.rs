//! The fuzzing fleet: coordinator, worker entrypoint, CI gate, and the
//! E14 experiment modes.
//!
//! Subcommands:
//!
//! - `run <root> <workers> <rounds> [seed]` — a plain fleet: spawn the
//!   workers, supervise, merge, audit; prints the report and the
//!   `fleet-verdict:` line.
//! - `soak <root> <workers> <rounds> [seed]` — a longer run that skips
//!   the per-seed frontier re-measurement and distills the merged
//!   corpus at shutdown.
//! - `chaos <root> <workers> <rounds> [seed]` — the fleet's own
//!   fault-injection harness: random worker kills, torn corpus files
//!   and frozen workers from a seeded stream, on top of supervision.
//! - `gate <root> <seed>` — the CI gate: a 2-worker fleet with one
//!   *forced* worker kill and one *forced* torn corpus file; fails
//!   unless zero admitted seeds were lost, the coordinator shut down
//!   cleanly, the kill was recovered (a respawn happened), the torn
//!   file was skip-counted, and no panic escaped containment. Prints a
//!   `fleet-verdict:` line a second process (`verify`) must reproduce
//!   bit-identically.
//! - `verify <root>` — fresh-process audit: replays the merged corpus
//!   and prints the same `fleet-verdict:` line.
//! - `worker <root> <id>` — the worker-process entrypoint the
//!   coordinator spawns (this same binary, re-invoked).

use std::process::ExitCode;

use pkvm_harness::fleet::{self, FleetCfg, FleetChaos, FleetReport, SupervisionCfg, WorkerCfg};
use pkvm_harness::fuzz;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleet run   <root> <workers> <rounds> [seed]\n\
         \x20      fleet soak  <root> <workers> <rounds> [seed]\n\
         \x20      fleet chaos <root> <workers> <rounds> [seed]\n\
         \x20      fleet gate  <root> <seed>\n\
         \x20      fleet verify <root>\n\
         \x20      fleet worker <root> <id>"
    );
    ExitCode::from(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_fleet(&args[1..], Mode::Run),
        Some("soak") => cmd_fleet(&args[1..], Mode::Soak),
        Some("chaos") => cmd_fleet(&args[1..], Mode::Chaos),
        Some("gate") => cmd_gate(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        _ => usage(),
    }
}

fn cmd_worker(args: &[String]) -> ExitCode {
    let (Some(root), Some(id)) = (args.first(), args.get(1).and_then(|s| parse_u64(s))) else {
        return usage();
    };
    ExitCode::from(fleet::worker_main(root, id as usize) as u8)
}

enum Mode {
    Run,
    Soak,
    Chaos,
}

fn cmd_fleet(args: &[String], mode: Mode) -> ExitCode {
    let (Some(root), Some(workers), Some(rounds)) = (
        args.first(),
        args.get(1).and_then(|s| parse_u64(s)),
        args.get(2).and_then(|s| parse_u64(s)),
    ) else {
        return usage();
    };
    let seed = args.get(3).and_then(|s| parse_u64(s)).unwrap_or(0xf1ee7);
    let mut cfg = FleetCfg::builder()
        .root(root)
        .workers(workers as usize)
        .shards(workers as usize * 2)
        .rounds(rounds)
        .poll_ms(250)
        .worker(WorkerCfg {
            seed,
            ..WorkerCfg::default()
        });
    match mode {
        Mode::Run => {}
        Mode::Soak => {
            // Long-haul shape: skip the O(seeds) frontier replay, bound
            // the corpus by distilling it at shutdown.
            cfg = cfg.audit_frontier(false).distill(true);
        }
        Mode::Chaos => {
            cfg = cfg.chaos(FleetChaos {
                seed: seed ^ 0x000c_4a05,
                ..FleetChaos::default()
            });
        }
    }
    let report = fleet::run(&cfg.build());
    print!("{}", report.render());
    let failed = report.stats.escaped_panics > 0 || report.lost_seeds > 0;
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_gate(args: &[String]) -> ExitCode {
    let (Some(root), Some(seed)) = (args.first(), args.get(1).and_then(|s| parse_u64(s))) else {
        return usage();
    };
    let cfg = FleetCfg::builder()
        .root(root)
        .workers(2)
        .shards(4)
        .rounds(14)
        .poll_ms(250)
        .worker(WorkerCfg {
            seed,
            round_steps: 400,
            ..WorkerCfg::default()
        })
        .supervision(SupervisionCfg {
            // Generous on a loaded CI box: a healthy worker round takes
            // well under a second; 60s of zero progress is a real wedge.
            wedge_deadline_ms: 60_000,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            restart_budget: 3,
            jitter_seed: seed,
        })
        // The two forced injections the gate is about: a worker process
        // killed mid-round, and a torn (half-written) corpus file.
        .forced_kill_round(2)
        .forced_torn_round(3)
        .build();
    let report = fleet::run(&cfg);
    print!("{}", report.render());
    gate_checks(&report)
}

fn gate_checks(report: &FleetReport) -> ExitCode {
    let mut failed = false;
    if report.lost_seeds > 0 {
        eprintln!(
            "fleet gate: {} admitted seeds never reached the merged corpus",
            report.lost_seeds
        );
        failed = true;
    }
    if !report.clean_shutdown {
        eprintln!("fleet gate: workers had to be killed at shutdown");
        failed = true;
    }
    if report.stats.respawns == 0 {
        eprintln!("fleet gate: the forced kill was never recovered (no respawn)");
        failed = true;
    }
    if report.stats.merge_skips == 0 {
        eprintln!("fleet gate: the forced torn corpus file was never skip-counted");
        failed = true;
    }
    if report.stats.escaped_panics > 0 {
        eprintln!(
            "fleet gate: {} panics escaped the oracle's containment",
            report.stats.escaped_panics
        );
        failed = true;
    }
    if report.stats.quarantined > 0 {
        eprintln!(
            "fleet gate: {} workers quarantined on a healthy fleet",
            report.stats.quarantined
        );
        failed = true;
    }
    if report.replay_seeds == 0 {
        eprintln!("fleet gate: the merged corpus is empty");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let Some(root) = args.first() else {
        return usage();
    };
    let merged = fleet::FleetDirs::new(root).merged_dir();
    let (seeds, digest) = fuzz::replay_digest(&merged);
    println!("fleet-verdict: {seeds} seeds {digest:016x}");
    ExitCode::SUCCESS
}
