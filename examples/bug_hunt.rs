//! The bug detection matrix: re-introduce each of the five real pKVM
//! bugs (§6) and every synthetic bug (§5), run the triggering scenario,
//! and report how the oracle (or a content check) catches it.
//!
//! Run with `cargo run --example bug_hunt`.

use pkvm_harness::bugs::{sweep, Detection};

fn main() {
    println!(
        "{:<28} {:>8}  {:<13} first violation",
        "injected fault", "real bug", "detection"
    );
    println!("{}", "-".repeat(100));
    let mut missed = 0;
    for r in sweep() {
        let real = r
            .real_bug
            .map(|n| format!("#{n}"))
            .unwrap_or_else(|| "-".into());
        let det = match r.detection {
            Detection::Oracle => "oracle",
            Detection::ContentCheck => "content check",
            Detection::Missed => {
                missed += 1;
                "MISSED"
            }
        };
        let first = r
            .first_violation
            .as_deref()
            .map(|v| v.lines().next().unwrap_or(""))
            .unwrap_or("");
        println!("{:<28} {:>8}  {:<13} {}", r.fault.name(), real, det, first);
    }
    println!("{}", "-".repeat(100));
    if missed == 0 {
        println!("all injected bugs detected");
    } else {
        println!("{missed} bug(s) missed");
        std::process::exit(1);
    }
}
