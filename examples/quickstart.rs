//! Quickstart: boot the hypervisor under the ghost oracle, run one
//! `host_share_hyp`, and print the abstract-state diff the paper shows in
//! §4.2.2.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use pkvm_ghost::prelude::*;
use pkvm_ghost::{abstract_host, abstract_hyp, diff_states};
use pkvm_hyp::faults::FaultSet;
use pkvm_hyp::hypercalls::HVC_HOST_SHARE_HYP;
use pkvm_hyp::machine::{Machine, MachineConfig};

fn snapshot(machine: &Machine, oracle: &Oracle) -> GhostState {
    // Compute the host and pKVM abstractions directly (tests normally let
    // the oracle's lock hooks do this; here we snapshot for printing).
    let mut anomalies = Vec::new();
    let mut s = GhostState::blank(&oracle.globals);
    s.host = Some(abstract_host(
        &machine.mem,
        machine.state.host_pgt.lock().root,
        &oracle.globals,
        &mut anomalies,
    ));
    s.pkvm = Some(abstract_hyp(
        &machine.mem,
        machine.state.hyp_pgt.lock().root,
        &mut anomalies,
    ));
    assert!(
        anomalies.is_empty(),
        "clean boot must be anomaly-free: {anomalies:?}"
    );
    s
}

fn main() {
    // Boot the machine with the ghost spec installed (the paper's
    // CONFIG_NVHE_GHOST_SPEC=y build).
    let config = MachineConfig::default();
    let oracle = Oracle::builder(&config).build();
    let machine = Machine::boot(config, oracle.clone(), Arc::new(FaultSet::none()));
    assert!(oracle.check_boot(), "boot state must match the boot spec");
    println!("booted; boot-state check passed");

    // The host shares one page with the hypervisor.
    let pfn = 0x40100u64; // physical 0x4010_0000, host-owned RAM
    let pre = snapshot(&machine, &oracle);
    let ret = machine.hvc(0, HVC_HOST_SHARE_HYP, &[pfn]);
    let post = snapshot(&machine, &oracle);
    println!("host_share_hyp(pfn={pfn:#x}) -> {ret}");

    // The §4.2.2 artefact: the recorded abstract-state diff.
    println!("\nrecorded post ghost state diff from recorded pre:");
    print!("{}", diff_states(&pre, &post));

    // And the oracle's verdict on the trap it checked. `wait()` is the
    // sync point with the checker (a no-op in the default inline mode).
    let verdict = oracle.verdict();
    verdict.wait();
    let violations = verdict.violations();
    println!("\noracle verdict: {} violation(s)", violations.len());
    for v in &violations {
        println!("  {v}");
    }
    assert!(verdict.all_clear());
    for t in verdict.trace() {
        println!("trace: cpu{} {} -> {:?}", t.cpu, t.name, t.outcome);
    }
    let stats = verdict.stats();
    println!(
        "stats: {} trap(s) checked, {} abstraction(s) computed, ~{} KiB ghost state",
        stats.traps_checked,
        stats.abstractions,
        oracle.approx_ghost_bytes() / 1024,
    );
}
