//! E13: the break-before-make gate — the missing-TLBI bug must be
//! *spec*-detected, identically in both check modes, with no false
//! positives from clean runs or harness-injected TLB staleness.
//!
//! Three phases, all at a fixed seed:
//!
//! 1. **Detection**: the E3 random-tester workload with
//!    `Fault::SynMissingTlbi` injected, under `CheckMode::Inline` and
//!    `CheckMode::Pipelined`. Both modes must report at least one
//!    `break-before-make` violation anchored at a downgrade's event seq,
//!    and the full violation lists (kind, seq) must be identical.
//! 2. **Clean guard**: the same workload without the fault must report
//!    zero `break-before-make` violations in both modes.
//! 3. **Chaos guard**: the clean workload under stale-TLB chaos (remote
//!    invalidations delayed/dropped below the hook stream) must still
//!    report zero `break-before-make` violations — the spec check sees
//!    the hypervisor's true invalidation sequence, so harness-injected
//!    staleness is never blamed on the hypervisor.
//!
//! Run with `cargo run --release --example bbm_gate -- [steps] [seed]`.

use std::process::ExitCode;

use pkvm_ghost::oracle::OracleOpts;
use pkvm_ghost::CheckMode;
use pkvm_harness::chaos::ChaosCfg;
use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};
use pkvm_hyp::faults::{Fault, FaultSet};

/// One fixed-seed tester run; returns every violation as (kind, seq).
fn run(
    mode: CheckMode,
    steps: u64,
    seed: u64,
    fault: Option<Fault>,
    chaos: Option<ChaosCfg>,
) -> Vec<(&'static str, Option<u64>)> {
    let faults = FaultSet::none();
    if let Some(f) = fault {
        faults.inject(f);
    }
    let proxy = Proxy::builder()
        .faults(faults)
        .chaos(chaos)
        .oracle_opts(OracleOpts::builder().check_mode(mode).build())
        .boot();
    let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(seed).build());
    t.run(steps);
    let verdict = t.proxy.verdict().expect("oracle installed");
    verdict.wait();
    verdict
        .violations()
        .iter()
        .map(|v| (v.kind(), v.event_seq()))
        .collect()
}

fn bbm_count(violations: &[(&'static str, Option<u64>)]) -> usize {
    violations
        .iter()
        .filter(|(kind, _)| *kind == "break-before-make")
        .count()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let steps: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xe13);

    // Phase 1: the missing-TLBI bug is spec-detected in both modes.
    let inline = run(
        CheckMode::Inline,
        steps,
        seed,
        Some(Fault::SynMissingTlbi),
        None,
    );
    let piped = run(
        CheckMode::pipelined(),
        steps,
        seed,
        Some(Fault::SynMissingTlbi),
        None,
    );
    println!(
        "detection ({steps} steps, seed {seed:#x}): inline {} bbm / {} total, pipelined {} bbm / {} total",
        bbm_count(&inline),
        inline.len(),
        bbm_count(&piped),
        piped.len(),
    );
    if inline != piped {
        eprintln!(
            "violation mismatch under SynMissingTlbi:\n  inline:    {inline:?}\n  pipelined: {piped:?}"
        );
        return ExitCode::FAILURE;
    }
    if bbm_count(&inline) == 0 {
        eprintln!("missing-TLBI bug produced no break-before-make violation: {inline:?}");
        return ExitCode::FAILURE;
    }
    if !inline
        .iter()
        .filter(|(kind, _)| *kind == "break-before-make")
        .all(|(_, seq)| seq.is_some())
    {
        eprintln!("a break-before-make violation lost its anchoring event seq: {inline:?}");
        return ExitCode::FAILURE;
    }
    println!("  both modes agree, every verdict anchored at its downgrade seq");

    // Phases 2 and 3: no false positives — clean, and under stale-TLB
    // chaos injected below the hook stream.
    for (label, chaos) in [
        ("clean", None),
        (
            "stale-tlb chaos",
            Some(ChaosCfg::builder().seed(seed).stale_tlb(0.5).build()),
        ),
    ] {
        for mode in [CheckMode::Inline, CheckMode::pipelined()] {
            let violations = run(mode, steps, seed ^ 1, None, chaos);
            let bbm = bbm_count(&violations);
            if bbm != 0 {
                eprintln!(
                    "{label} run under {mode:?} fabricated {bbm} break-before-make violation(s): {violations:?}"
                );
                return ExitCode::FAILURE;
            }
        }
        println!("{label}: zero break-before-make violations in both modes");
    }

    println!("bbm gate: all green");
    ExitCode::SUCCESS
}
