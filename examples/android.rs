//! E16: the Android workload gate — pvmfw-style protected boot,
//! share/unshare ping-pong and dense VM churn, each pinned to its new
//! spec check.
//!
//! Modes:
//! - `gate <file.pkvmtrace> [seed] [steps]` — four phases, all at a
//!   fixed seed with the firmware-protection and transfer-protocol
//!   checks on (their default):
//!   1. The handwritten Android scenario family runs violation-free.
//!   2. A single-worker Android-weighted random campaign runs under
//!      `CheckMode::Inline` and `CheckMode::Pipelined`; both must be
//!      violation-free with bit-identical event-stream signatures and
//!      step counts. The inline recording is saved to `<file>`.
//!   3. Every new spec check detects its matching fault at least once:
//!      `firmware-protection` under `SynFirmwareReclaim`,
//!      `transfer-protocol` under `SynShareWrongState`, `reclaim-wipe`
//!      under `SynReclaimSkipsWipe`, and the oversized-top-up
//!      `spec-mismatch` under `Bug2MemcacheSize`.
//!   4. The saved trace replays in-process and the canonical
//!      `android-verdict:` line is printed.
//! - `replay <file.pkvmtrace>` — load the saved trace in a *fresh*
//!   process, replay it and print the same canonical line; ci.sh
//!   compares the two for cross-process determinism.
//!
//! Run with `cargo run --release --example android -- <mode> <args>`.

use std::process::ExitCode;

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_ghost::event::canonical_signature;
use pkvm_ghost::oracle::OracleOpts;
use pkvm_ghost::CheckMode;
use pkvm_harness::android;
use pkvm_harness::campaign::{replay, CampaignCfg, CampaignTrace};
use pkvm_harness::proxy::Proxy;
use pkvm_harness::tracefile::{load_trace, save_trace};
use pkvm_hyp::faults::{Fault, FaultSet};
use pkvm_hyp::vm::GuestOp;

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// The canonical verdict line: derived from a replay of the trace plus
/// the event-stream signature, so any process that loads the same file
/// prints the same bytes.
fn verdict_line(trace: &CampaignTrace) -> String {
    let outcome = replay(trace);
    let mut kinds: Vec<&str> = outcome.violations.iter().map(|v| v.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    format!(
        "android-verdict: events={} steps={} violations={} kinds=[{}] panic={} sig={:#018x}",
        trace.events.len(),
        outcome.steps,
        outcome.violations.len(),
        kinds.join(","),
        outcome.hyp_panic.is_some(),
        canonical_signature(&trace.events),
    )
}

/// One single-worker Android-weighted campaign; single-worker so the
/// recorded schedule (and thus the signature) is deterministic and the
/// two modes are comparable bit for bit.
fn run_campaign(seed: u64, steps: u64, mode: CheckMode) -> pkvm_harness::campaign::CampaignReport {
    CampaignCfg::builder()
        .workers(1)
        .steps_per_worker(steps)
        .base_seed(seed)
        .invalid_fraction(0.0)
        .stop_on_violation(false)
        .record_trace(true)
        .android()
        .oracle_opts(OracleOpts::builder().check_mode(mode).build())
        .run()
}

/// One detection probe: a fault to inject, the violation kind it must
/// produce, and the deterministic driver that witnesses it.
type DetectionCheck = (Fault, &'static str, fn(&Proxy));

/// Drives `drive` against a hypervisor with `fault` injected and
/// requires at least one violation of `kind`.
fn detects(fault: Fault, kind: &str, drive: impl Fn(&Proxy)) -> Result<usize, String> {
    let faults = FaultSet::none();
    faults.inject(fault);
    let p = Proxy::builder().faults(faults).boot();
    drive(&p);
    let hits = p.violations().iter().filter(|v| v.kind() == kind).count();
    if hits == 0 {
        Err(format!(
            "{fault:?} produced no {kind} violation: {:?}",
            p.violations()
        ))
    } else {
        Ok(hits)
    }
}

fn gate(path: &str, seed: u64, steps: u64) -> ExitCode {
    // Phase 1: the handwritten Android family is a true positive control.
    for s in android::all() {
        let p = Proxy::builder().boot();
        (s.run)(&p);
        if !p.all_clear() {
            eprintln!(
                "android scenario {} not clean: {:?}",
                s.name,
                p.violations()
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "scenarios: {} android scenarios clean",
        android::all().len()
    );

    // Phase 2: the mixed campaign, both check modes, bit-identical.
    let inline = run_campaign(seed, steps, CheckMode::Inline);
    let piped = run_campaign(seed, steps, CheckMode::pipelined());
    for (label, r) in [("inline", &inline), ("pipelined", &piped)] {
        if !r.is_clean() {
            eprintln!("{label} android campaign not clean:\n{}", r.render());
            return ExitCode::FAILURE;
        }
    }
    let sig_inline = canonical_signature(&inline.trace.as_ref().expect("trace").events);
    let sig_piped = canonical_signature(&piped.trace.as_ref().expect("trace").events);
    if sig_inline != sig_piped || inline.workers[0].steps != piped.workers[0].steps {
        eprintln!(
            "modes diverge: inline sig={sig_inline:#x} steps={}, pipelined sig={sig_piped:#x} steps={}",
            inline.workers[0].steps, piped.workers[0].steps
        );
        return ExitCode::FAILURE;
    }
    let fw_calls = inline.stats.per_op.get("firmware").copied().unwrap_or(0);
    println!(
        "campaign ({steps} steps, seed {seed:#x}): clean in both modes, sig {sig_inline:#018x}, {fw_calls} firmware loads"
    );

    // Phase 3: each new spec check fires under its matching fault.
    let checks: [DetectionCheck; 4] = [
        (Fault::SynFirmwareReclaim, "firmware-protection", |p| {
            let handle = p.init_vm(0, 1, true).expect("init_vm");
            let fw = p.alloc_page();
            p.load_firmware(0, handle, fw, 0xa0, 1).expect("firmware");
            p.teardown(0, handle).expect("teardown");
            let _ = p.reclaim(0, fw);
        }),
        (Fault::SynShareWrongState, "transfer-protocol", |p| {
            let pfn = p.alloc_page();
            let _ = p.share(0, pfn);
            let _ = p.share(0, pfn);
            let _ = p.unshare(0, pfn);
        }),
        (Fault::SynReclaimSkipsWipe, "reclaim-wipe", |p| {
            let handle = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, handle, 0).expect("init_vcpu");
            p.vcpu_load(0, handle, 0).expect("vcpu_load");
            p.topup(0, 4).expect("topup");
            let pfn = p.map_guest(0, 0x10).expect("map_guest");
            p.push_guest_op(handle, 0, GuestOp::Write(0x10 * PAGE_SIZE, 0xd1ce))
                .expect("push");
            p.vcpu_run(0).expect("vcpu_run");
            p.vcpu_put(0).expect("vcpu_put");
            p.teardown(0, handle).expect("teardown");
            let _ = p.reclaim(0, pfn);
        }),
        (Fault::Bug2MemcacheSize, "spec-mismatch", |p| {
            let handle = p.init_vm(0, 1, false).expect("init_vm");
            p.init_vcpu(0, handle, 0).expect("init_vcpu");
            p.vcpu_load(0, handle, 0).expect("vcpu_load");
            // Oversized top-up: the clean hypervisor answers E2BIG, the
            // buggy one truncates the count to zero and reports success.
            let _ = p.topup_raw(0, 0x47f0_0000, 0x1_0000);
        }),
    ];
    for (fault, kind, drive) in checks {
        match detects(fault, kind, drive) {
            Ok(hits) => println!("detection: {fault:?} -> {hits} {kind} violation(s)"),
            Err(e) => {
                eprintln!("detection failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Phase 4: persist the inline recording and print the canonical line.
    let trace = inline.trace.expect("trace recorded");
    if let Err(e) = save_trace(path, &trace) {
        eprintln!("cannot save {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{}", verdict_line(&trace));
    println!("gate ok: scenarios clean, modes agree, all four spec checks detect");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(mode) = args.next() else {
        eprintln!("usage: android <gate|replay> <file.pkvmtrace> [seed] [steps]");
        return ExitCode::from(2);
    };
    let Some(path) = args.next() else {
        eprintln!("usage: android {mode} <file.pkvmtrace> [args]");
        return ExitCode::from(2);
    };
    match mode.as_str() {
        "gate" => {
            let seed = args.next().as_deref().and_then(parse_u64).unwrap_or(0xe16);
            let steps = args.next().as_deref().and_then(parse_u64).unwrap_or(1200);
            gate(&path, seed, steps)
        }
        "replay" => {
            let trace = match load_trace(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot load {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", verdict_line(&trace));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown mode {other:?}; use gate | replay");
            ExitCode::from(2)
        }
    }
}
