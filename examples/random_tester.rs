//! The model-guided random tester (§5): run a configurable number of
//! steps under the oracle and report throughput and state-machine depth.
//!
//! Run with `cargo run --release --example random_tester -- [steps] [seed]`.

use std::time::Instant;

use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};

fn main() {
    let mut args = std::env::args().skip(1);
    let steps: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xc0ffee);

    let proxy = Proxy::builder().boot();
    let mut tester = RandomTester::new(proxy, RandomCfg::builder().seed(seed).build());

    let start = Instant::now();
    tester.run(steps);
    let elapsed = start.elapsed();

    let stats = &tester.stats;
    println!("ran {} steps in {:.2?} (seed {seed:#x})", steps, elapsed);
    println!(
        "  {} hypercalls ({} ok, {} err), {} host accesses, {} crash-predicted rejections",
        stats.calls, stats.ok, stats.errs, stats.host_accesses, stats.rejected
    );
    let per_hour = stats.calls as f64 / elapsed.as_secs_f64() * 3600.0;
    println!(
        "  throughput: {per_hour:.0} hypercalls/hour (paper: ~200,000 on a Mac Mini M2 under QEMU)"
    );
    let mut ops: Vec<_> = stats.per_op.iter().collect();
    ops.sort();
    for (op, n) in ops {
        println!("    {op:<12} {n}");
    }

    let verdict = tester.proxy.verdict().expect("oracle installed");
    let violations = verdict.wait().violations();
    println!("\noracle verdict: {} violation(s)", violations.len());
    for v in violations.iter().take(5) {
        println!("  {v}");
    }
    assert!(
        verdict.all_clear(),
        "random testing found spec/impl disagreement"
    );
    println!(
        "model: {} pages tracked, {} live VMs",
        tester.model.pages.len(),
        tester.model.vms.len()
    );
}
