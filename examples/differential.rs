//! Differential replay over the fault catalog: one recorded schedule,
//! every deliberately-wrong hypervisor.
//!
//! Modes:
//! - `record <file> [seed] [steps]` — run one *clean* campaign (no
//!   faults, no chaos, stop-on-violation off so the schedule runs to its
//!   full length) and persist its trace to `<file>`. The recording runs
//!   a single worker on purpose: a one-lane schedule is bit-identical
//!   across recordings (no thread interleaving), so the matrix digest
//!   below is stable run to run, not just replay to replay.
//! - `matrix <file>` — replay the recorded schedule against the clean
//!   hypervisor and every `Fault::ALL` variant, print the detection
//!   matrix and its canonical `diff-matrix:` digest line. Replay is
//!   deterministic, so the line is bit-identical across processes — the
//!   ci gate computes it twice in separate processes and compares.
//! - `gate <file> [min]` — compute the matrix and enforce the pinned
//!   expectations: the clean row must be violation-free and at least
//!   `min` (default 14) fault rows must diverge. Three catalog entries
//!   are legitimately out of a single-threaded schedule's reach —
//!   Bug3/Bug4 need race windows and Bug5 an init-time machine shape —
//!   which is why the gate pins everything but those structural misses.
//!   (Bug2 and SynReclaimSkipsWipe used to be misses too, until the
//!   driver grew oversized top-ups and read-after-reclaim probes.)
//!
//! Run with `cargo run --release --example differential -- <mode> <args>`.

use pkvm_harness::campaign::CampaignCfg;
use pkvm_harness::differential::differential_matrix;
use pkvm_harness::tracefile::save_trace;

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(mode) = args.next() else {
        eprintln!("usage: differential <record|matrix|gate> <file.pkvmtrace> [args]");
        std::process::exit(2);
    };
    let Some(path) = args.next() else {
        eprintln!("usage: differential {mode} <file.pkvmtrace> [args]");
        std::process::exit(2);
    };

    match mode.as_str() {
        "record" => {
            // Defaults tuned so the gate's >= 14/17 detection floor holds
            // exactly and reproducibly: the single-worker recording is
            // deterministic, and 14/17 is the stable ceiling across
            // seeds (the three misses are structural, not schedule luck).
            let seed = args.next().as_deref().and_then(parse_u64).unwrap_or(0x42);
            let steps = args.next().as_deref().and_then(parse_u64).unwrap_or(2500);
            let report = CampaignCfg::builder()
                .workers(1)
                .steps_per_worker(steps)
                .base_seed(seed)
                .stop_on_violation(false)
                .run();
            if !report.is_clean() {
                eprintln!(
                    "differential: clean recording campaign was not clean:\n{}",
                    report.render()
                );
                std::process::exit(1);
            }
            let calls = report.total_calls();
            let trace = report.trace.expect("trace recorded");
            if let Err(e) = save_trace(&path, &trace) {
                eprintln!("differential: cannot save {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "recorded {} events ({calls} calls) to {path}",
                trace.events.len()
            );
        }
        "matrix" | "gate" => {
            let matrix = match differential_matrix(&path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("differential: cannot replay {path}: {e}");
                    std::process::exit(1);
                }
            };
            print!("{}", matrix.render());
            println!("{}", matrix.matrix_line());
            if mode == "gate" {
                let min: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
                let clean = matrix.clean_row();
                if clean.violations > 0 || clean.hyp_panic {
                    eprintln!(
                        "differential: clean row is not violation-free ({} violation(s), panic={})",
                        clean.violations, clean.hyp_panic
                    );
                    std::process::exit(1);
                }
                let detected = matrix.detected();
                if detected < min {
                    eprintln!(
                        "differential: only {detected}/{} faults diverged (gate requires >= {min})",
                        matrix.fault_rows().len()
                    );
                    std::process::exit(1);
                }
                println!(
                    "gate ok: clean row violation-free, {detected}/{} faults detected (>= {min})",
                    matrix.fault_rows().len()
                );
            }
        }
        other => {
            eprintln!("unknown mode {other:?}; use record | matrix | gate");
            std::process::exit(2);
        }
    }
}
