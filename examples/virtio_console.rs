//! A virtio-style guest/host console, the paper's motivating
//! communication pattern (§2: "guests can share/unshare virtual machine
//! memory back with the host and communicate with the host through
//! pagefaults (typically with virtio)") — run end to end under the
//! oracle.
//!
//! The protected guest owns a ring page and a set of buffer pages. To
//! send a message it writes the payload into a buffer, *shares* the
//! buffer with the host, and posts the buffer's frame number in the
//! (permanently shared) ring. The host polls the ring, reads the payload
//! directly from guest memory, acknowledges in place, and the guest
//! *unshares* — after which the host provably cannot touch the buffer
//! again.
//!
//! Run with `cargo run --example virtio_console`.

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::walk::Access;
use pkvm_harness::proxy::Proxy;
use pkvm_hyp::hypercalls::exit;
use pkvm_hyp::vm::GuestOp;

const RING_GFN: u64 = 0x80;
const BUF_GFNS: [u64; 3] = [0x90, 0x91, 0x92];

fn guest_step(p: &Proxy, handle: u32, op: GuestOp) -> u64 {
    p.push_guest_op(handle, 0, op).expect("queue guest op");
    p.vcpu_run(0).expect("vcpu_run")
}

fn main() {
    let p = Proxy::builder().boot();
    let oracle = p.oracle.as_ref().expect("oracle installed");

    // Bring up a protected VM with a ring page and three buffers.
    let handle = p.init_vm(0, 1, true).expect("init_vm");
    p.init_vcpu(0, handle, 0).expect("init_vcpu");
    p.vcpu_load(0, handle, 0).expect("vcpu_load");
    p.topup(0, 16).expect("topup");
    let ring_pfn = p.map_guest(0, RING_GFN).expect("map ring");
    let buf_pfns: Vec<u64> = BUF_GFNS
        .iter()
        .map(|&g| p.map_guest(0, g).expect("map buffer"))
        .collect();

    // The ring stays shared with the host for the VM's lifetime.
    assert_eq!(
        guest_step(&p, handle, GuestOp::HvcShareHost(RING_GFN * PAGE_SIZE)),
        exit::GUEST_HVC
    );
    println!("guest ring at gfn {RING_GFN:#x} (pfn {ring_pfn:#x}) shared with the host");

    for (i, msg) in [0xc0ffee_u64, 0xf00d, 0x5ec2e7].iter().enumerate() {
        let gfn = BUF_GFNS[i];
        let pfn = buf_pfns[i];
        // Guest: write the payload, share the buffer, post it in the ring.
        assert_eq!(
            guest_step(&p, handle, GuestOp::Write(gfn * PAGE_SIZE, *msg)),
            exit::CONTINUE
        );
        assert_eq!(
            guest_step(&p, handle, GuestOp::HvcShareHost(gfn * PAGE_SIZE)),
            exit::GUEST_HVC
        );
        assert_eq!(
            guest_step(&p, handle, GuestOp::Write(RING_GFN * PAGE_SIZE, gfn)),
            exit::CONTINUE
        );

        // Host: poll the ring, then read the payload straight out of the
        // (now shared) guest buffer.
        let posted = p
            .machine
            .host_read(1, ring_pfn * PAGE_SIZE)
            .expect("ring readable");
        assert_eq!(posted, gfn);
        let payload = p
            .machine
            .host_read(1, pfn * PAGE_SIZE)
            .expect("buffer shared");
        assert_eq!(payload, *msg);
        // Host acknowledges in place; the guest sees the ack.
        p.machine
            .host_write(1, pfn * PAGE_SIZE, payload | 0xacc0_0000_0000)
            .expect("ack");
        assert_eq!(
            guest_step(&p, handle, GuestOp::Read(gfn * PAGE_SIZE)),
            exit::CONTINUE
        );
        println!("message {i}: guest sent {msg:#x}, host acked");

        // Guest revokes the buffer; the host loses access immediately.
        assert_eq!(
            guest_step(&p, handle, GuestOp::HvcUnshareHost(gfn * PAGE_SIZE)),
            exit::GUEST_HVC
        );
        assert!(
            p.machine
                .host_access(1, pfn * PAGE_SIZE, Access::Read)
                .is_err(),
            "revoked buffer must not be host-readable"
        );
    }

    // Tear everything down and reclaim.
    assert_eq!(
        guest_step(&p, handle, GuestOp::HvcUnshareHost(RING_GFN * PAGE_SIZE)),
        exit::GUEST_HVC
    );
    p.vcpu_put(0).expect("vcpu_put");
    p.teardown(0, handle).expect("teardown");
    for pfn in buf_pfns.iter().chain([ring_pfn].iter()) {
        p.reclaim(0, *pfn).expect("reclaim");
    }

    let verdict = oracle.verdict();
    let checked = verdict.wait().stats().traps_checked;
    assert!(
        verdict.all_clear(),
        "violations: {:?}",
        verdict.violations()
    );
    println!("\nconsole session complete; oracle checked {checked} traps, all clean");
}
