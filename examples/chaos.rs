//! The chaos fault-injection sweeps: does the oracle *fail safe*?
//!
//! Three modes:
//!
//! - `matrix [runs-per-family] [seed]` — the detection matrix: for every
//!   chaos family, several campaigns on the clean hypervisor with only
//!   that family corrupting the oracle's inputs, classified as detected /
//!   degraded-but-safe / implementation-panic / silent. Exits nonzero if
//!   the fail-safe invariant breaks (an oracle panic escaping
//!   containment).
//! - `campaign [seed] [steps]` — one all-families chaotic campaign,
//!   followed by a double replay of the recorded trace to demonstrate
//!   that chaotic runs replay deterministically from seed + schedule.
//! - `mutation [seed] [steps]` — the mutation mini-sweep: known
//!   hypervisor bugs injected *while* a chaos family corrupts the
//!   oracle's inputs; reports whether detection survives the noise.
//! - `record <file> [seed] [steps]` — run one all-families chaotic
//!   campaign, persist its trace to `<file>` (`.pkvmtrace` format),
//!   replay it in-process and print the canonical verdict line.
//! - `replay <file>` — load `<file>` in a *fresh* process, replay it,
//!   and print the same canonical verdict line. A recorded campaign is
//!   bit-identically replayable iff the two lines match.
//!
//! Run with `cargo run --release --example chaos -- <mode> [args]`.

use pkvm_harness::campaign::{replay, replay_stream, CampaignCfg, ReplayOutcome};
use pkvm_harness::chaos::{detection_matrix, mutation_sweep, ChaosCfg, ChaosFamily, MatrixCfg};
use pkvm_harness::tracefile::{save_trace, TraceReader};
use pkvm_hyp::faults::Fault;

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// The canonical verdict line: everything that must survive a trip
/// through the trace file — violation count, kinds, the event sequence
/// ids each violation diverged at, the hypervisor panic, and the number
/// of driver events executed. `record` and `replay` both print it; the
/// ci gate asserts the two lines are byte-identical.
fn verdict_line(outcome: &ReplayOutcome) -> String {
    let kinds: Vec<&'static str> = outcome.violations.iter().map(|v| v.kind()).collect();
    let seqs: Vec<String> = outcome
        .violations
        .iter()
        .map(|v| match v.event_seq() {
            Some(s) => s.to_string(),
            None => "-".to_string(),
        })
        .collect();
    format!(
        "verdict: violations={} kinds=[{}] seqs=[{}] panic={:?} steps={}",
        outcome.violations.len(),
        kinds.join(","),
        seqs.join(","),
        outcome.hyp_panic.as_deref().unwrap_or("none"),
        outcome.steps,
    )
}

/// The all-families hook/alloc chaos config the `campaign` and `record`
/// modes share (bit flips excluded: they corrupt the machine, and these
/// modes demonstrate *oracle* survival plus deterministic replay).
fn all_families_chaos(seed: u64) -> ChaosCfg {
    ChaosCfg::builder()
        .seed(seed ^ 0xc4a0)
        .torn_read_once(0.1)
        .drop_lock_event(0.01)
        .dup_lock_event(0.01)
        .delay_hook(0.02)
        .alloc_chaos(0.1)
        .build()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| "matrix".into());
    match mode.as_str() {
        "matrix" => {
            let runs: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
            let seed = args.next().as_deref().and_then(parse_u64).unwrap_or(0xc405);
            let matrix = detection_matrix(&MatrixCfg {
                runs_per_family: runs,
                base_seed: seed,
                ..MatrixCfg::default()
            });
            print!("{}", matrix.render());
            if !matrix.fail_safe() {
                eprintln!("FAIL-SAFE INVARIANT BROKEN");
                std::process::exit(1);
            }
        }
        "campaign" => {
            let seed = args.next().as_deref().and_then(parse_u64).unwrap_or(0xc2);
            let steps = args.next().as_deref().and_then(parse_u64).unwrap_or(400);
            let chaos = all_families_chaos(seed);
            let report = CampaignCfg::builder()
                .workers(2)
                .steps_per_worker(steps)
                .base_seed(seed)
                .stop_on_violation(false)
                .chaos(chaos)
                .run();
            print!("{}", report.render());
            let injected = report.chaos_injected.unwrap_or_default();
            if injected.total() == 0 {
                eprintln!("chaos never fired; the campaign tested nothing");
                std::process::exit(1);
            }
            for w in &report.workers {
                if let Some(p) = &w.panicked {
                    eprintln!("worker {} panicked under hook chaos: {p}", w.worker);
                    std::process::exit(1);
                }
            }
            let trace = report.trace.expect("trace recorded");
            let once = replay(&trace);
            let twice = replay(&trace);
            println!(
                "replay x2: {} / {} violation(s) over {} events",
                once.violations.len(),
                twice.violations.len(),
                trace.events.len()
            );
            if once.violations.len() != twice.violations.len() || once.hyp_panic != twice.hyp_panic
            {
                eprintln!("chaotic replay was not deterministic");
                std::process::exit(1);
            }
            println!("chaotic campaign survived and replays deterministically");
        }
        "mutation" => {
            let seed = args.next().as_deref().and_then(parse_u64).unwrap_or(0xc3);
            let steps = args.next().as_deref().and_then(parse_u64).unwrap_or(400);
            let faults = [
                Fault::SynShareWrongState,
                Fault::SynShareHypExec,
                Fault::SynShareSkipsCheck,
            ];
            let families = [
                ChaosFamily::TornReadOnce,
                ChaosFamily::LockEvents,
                ChaosFamily::AllocChaos,
            ];
            let cells = mutation_sweep(&faults, &families, seed, steps);
            print!("{}", pkvm_harness::chaos::render_mutation(&cells));
            let caught = cells.iter().filter(|c| c.detected).count();
            if cells.iter().any(|c| c.impl_panic) {
                eprintln!("a worker panicked during the mutation sweep");
                std::process::exit(1);
            }
            // The noise families above corrupt recording, not the
            // machine; a healthy oracle still catches every bug.
            if caught < cells.len() {
                eprintln!("detection did not survive chaos: {caught}/{}", cells.len());
                std::process::exit(1);
            }
        }
        "record" => {
            let Some(path) = args.next() else {
                eprintln!("usage: chaos record <file.pkvmtrace> [seed] [steps]");
                std::process::exit(2);
            };
            let seed = args.next().as_deref().and_then(parse_u64).unwrap_or(0xc2);
            let steps = args.next().as_deref().and_then(parse_u64).unwrap_or(400);
            let report = CampaignCfg::builder()
                .workers(2)
                .steps_per_worker(steps)
                .base_seed(seed)
                .stop_on_violation(false)
                .chaos(all_families_chaos(seed))
                .run();
            let trace = report.trace.expect("trace recorded");
            if let Err(e) = save_trace(&path, &trace) {
                eprintln!("cannot save {path}: {e}");
                std::process::exit(1);
            }
            println!("recorded {} events to {path}", trace.events.len());
            println!("{}", verdict_line(&replay(&trace)));
        }
        "replay" => {
            let Some(path) = args.next() else {
                eprintln!("usage: chaos replay <file.pkvmtrace>");
                std::process::exit(2);
            };
            // Stream the trace straight from disk into the replay: the
            // header boots the machine, then events execute one at a
            // time — the timeline is never materialized.
            let reader = match TraceReader::open(&path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    std::process::exit(1);
                }
            };
            let header = reader.header().clone();
            let mut events = 0u64;
            let outcome = replay_stream(
                &header,
                reader.inspect(|r| {
                    if r.is_ok() {
                        events += 1;
                    }
                }),
            );
            match outcome {
                Ok(out) => {
                    println!("streamed {events} events from {path}");
                    println!("{}", verdict_line(&out));
                }
                Err(e) => {
                    eprintln!("cannot replay {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown mode {other:?}; use matrix | campaign | mutation | record | replay");
            std::process::exit(2);
        }
    }
}
