//! E12: the pipelined-checker gate — mode equivalence plus checked
//! throughput on the E3 random-tester workload.
//!
//! Two phases, both at a fixed seed:
//!
//! 1. **Equivalence** (recorded, short): the same tester run under
//!    `CheckMode::Inline` and `CheckMode::Pipelined` must produce the
//!    same verdict — identical violation kinds and event sequence ids,
//!    identical checked-trap counts, and identical canonical event-stream
//!    signatures ([`pkvm_ghost::event::canonical_signature`]).
//! 2. **Throughput** (unrecorded, longer): steps/second of the tester
//!    unchecked, inline-checked and pipeline-checked (both checked modes
//!    with the incremental abstraction cache, the configuration the
//!    pipeline is designed around). The pipelined clock stops only after
//!    `Verdict::wait()` — checked throughput counts checking, not just
//!    emission. The gate fails unless pipelined checked throughput is at
//!    least a third of unchecked.
//!
//! Run with `cargo run --release --example pipeline_gate -- [steps] [seed]`.

use std::process::ExitCode;
use std::time::Instant;

use pkvm_ghost::event::canonical_signature;
use pkvm_ghost::oracle::OracleOpts;
use pkvm_ghost::CheckMode;
use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};

struct Outcome {
    steps_per_sec: f64,
    violations: Vec<(&'static str, Option<u64>)>,
    traps_checked: u64,
    signature: Option<u64>,
}

/// One fixed-seed tester run; `mode == None` runs without the oracle.
/// The timed region spans driving *and* checking: the pipelined run's
/// clock stops after the frontier drains.
fn run(mode: Option<CheckMode>, steps: u64, seed: u64, record: bool) -> Outcome {
    let builder = Proxy::builder().record(record);
    let builder = match mode {
        None => builder.with_oracle(false),
        Some(m) => builder.oracle_opts(
            OracleOpts::builder()
                .incremental_abstraction(true)
                .check_mode(m)
                .build(),
        ),
    };
    let proxy = builder.boot();
    let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(seed).build());
    let start = Instant::now();
    t.run(steps);
    let verdict = t.proxy.verdict();
    if let Some(v) = &verdict {
        v.wait();
    }
    let elapsed = start.elapsed();
    let violations = verdict
        .as_ref()
        .map(|v| {
            v.violations()
                .iter()
                .map(|v| (v.kind(), v.event_seq()))
                .collect()
        })
        .unwrap_or_default();
    Outcome {
        steps_per_sec: steps as f64 / elapsed.as_secs_f64().max(1e-9),
        violations,
        traps_checked: verdict.map(|v| v.stats().traps_checked).unwrap_or(0),
        signature: record.then(|| canonical_signature(&t.proxy.events().take_events())),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let steps: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xe12);

    // Phase 1: equivalence at a fixed seed, recorded timelines.
    let eq_steps = steps.min(400);
    let inline = run(Some(CheckMode::Inline), eq_steps, seed, true);
    let piped = run(Some(CheckMode::pipelined()), eq_steps, seed, true);
    println!(
        "equivalence ({eq_steps} steps, seed {seed:#x}): inline {} violation(s) / {} trap(s), pipelined {} violation(s) / {} trap(s)",
        inline.violations.len(),
        inline.traps_checked,
        piped.violations.len(),
        piped.traps_checked,
    );
    if inline.violations != piped.violations {
        eprintln!(
            "violation mismatch:\n  inline:    {:?}\n  pipelined: {:?}",
            inline.violations, piped.violations
        );
        return ExitCode::FAILURE;
    }
    if inline.traps_checked != piped.traps_checked {
        eprintln!(
            "traps_checked mismatch: inline {} vs pipelined {}",
            inline.traps_checked, piped.traps_checked
        );
        return ExitCode::FAILURE;
    }
    if inline.signature != piped.signature {
        eprintln!(
            "canonical signature mismatch: inline {:?} vs pipelined {:?}",
            inline.signature, piped.signature
        );
        return ExitCode::FAILURE;
    }
    println!("  verdicts, violation seqs and canonical signatures identical");

    // Phase 2: throughput, unrecorded. Derive the seed so phase 1's
    // machines cannot prime anything. Each mode gets one untimed warmup
    // and then takes the best of five timed runs: a 1000-step run lasts
    // tens of milliseconds, so on a shared core a single scheduler
    // hiccup would otherwise dominate the ratio.
    let best = |mode: Option<CheckMode>| {
        run(mode, steps, seed ^ 1, false);
        (0..5)
            .map(|_| run(mode, steps, seed ^ 1, false))
            .max_by(|a, b| a.steps_per_sec.total_cmp(&b.steps_per_sec))
            .unwrap()
    };
    let unchecked = best(None);
    let inline_t = best(Some(CheckMode::Inline));
    let piped_t = best(Some(CheckMode::pipelined()));
    println!("throughput ({steps} steps, seed {:#x}):", seed ^ 1);
    println!(
        "  unchecked:         {:>10.0} steps/s",
        unchecked.steps_per_sec
    );
    println!(
        "  inline checked:    {:>10.0} steps/s ({:.1}x slower)",
        inline_t.steps_per_sec,
        unchecked.steps_per_sec / inline_t.steps_per_sec
    );
    println!(
        "  pipelined checked: {:>10.0} steps/s ({:.1}x slower)",
        piped_t.steps_per_sec,
        unchecked.steps_per_sec / piped_t.steps_per_sec
    );
    if piped_t.steps_per_sec * 3.0 < unchecked.steps_per_sec {
        eprintln!(
            "pipelined checked throughput below a third of unchecked: {:.0} vs {:.0} steps/s",
            piped_t.steps_per_sec, unchecked.steps_per_sec
        );
        return ExitCode::FAILURE;
    }
    println!("pipeline gate: all green");
    ExitCode::SUCCESS
}
