//! Inspect a recorded `.pkvmtrace` file without replaying it.
//!
//! A trace file is a correctness witness: the machine shape, the oracle
//! switches, the chaos config and seeds, and the full unified timeline
//! of one campaign. This tool decodes it and answers the first three
//! questions about any violating run — what happened (`summary`), in
//! what order (`dump`), and on which worker (`dump <lane>`).
//!
//! Usage:
//!   cargo run --release --example trace_inspect -- <file> [summary]
//!   cargo run --release --example trace_inspect -- <file> dump [lane]
//!
//! `summary` (the default) prints the campaign header plus the streaming
//! stats tables: event counts per family, chaos injections per kind,
//! per-trap latency histogram summaries, and per-lane occupancy. `dump`
//! prints every record in global sequence order, optionally filtered to
//! one lane (worker).

use pkvm_ghost::event::{Event, TraceStats};
use pkvm_harness::tracefile::load_trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_inspect <file.pkvmtrace> [summary | dump [lane]]");
        std::process::exit(2);
    };
    let mode = args.next().unwrap_or_else(|| "summary".to_string());
    let lane_filter: Option<u32> = args.next().and_then(|s| s.parse().ok());

    let trace = match load_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_inspect: cannot load {path}: {e}");
            std::process::exit(1);
        }
    };

    println!("{path}:");
    println!(
        "  machine: {} cpus, {} dram region(s), {} mmio region(s), {} hyp pool pages",
        trace.config.nr_cpus,
        trace.config.dram.len(),
        trace.config.mmio.len(),
        trace.config.hyp_pool_pages,
    );
    println!("  fault bits: {:#x}", trace.fault_bits);
    match &trace.chaos {
        Some(c) => println!("  chaos: seed {:#x}", c.seed),
        None => println!("  chaos: none"),
    }
    println!("  worker seeds: {:x?}", trace.seeds);
    let violations = trace
        .events
        .iter()
        .filter(|r| matches!(r.event, Event::Violation(_)))
        .count();
    println!(
        "  events: {} ({} violation(s))",
        trace.events.len(),
        violations
    );

    match mode.as_str() {
        "summary" => {
            let mut stats = TraceStats::new();
            stats.observe_all(&trace.events);
            print!("{}", stats.render());
        }
        "dump" => {
            for rec in &trace.events {
                if lane_filter.is_some_and(|l| l != rec.lane) {
                    continue;
                }
                let trap = rec.trap.map(|t| format!(" trap#{t}")).unwrap_or_default();
                println!(
                    "  #{:<6} lane {:<2}{} +{}ns {:?}",
                    rec.seq, rec.lane, trap, rec.t_ns, rec.event
                );
            }
        }
        other => {
            eprintln!("trace_inspect: unknown mode {other:?} (want summary or dump)");
            std::process::exit(2);
        }
    }
}
