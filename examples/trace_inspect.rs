//! Inspect a recorded `.pkvmtrace` file without replaying it — in
//! bounded memory, however long the trace.
//!
//! A trace file is a correctness witness: the machine shape, the oracle
//! switches, the chaos config and seeds, and the full unified timeline
//! of one campaign. Every mode streams the timeline through a
//! [`TraceReader`], one record at a time — no `Vec<Event>` is ever
//! materialized, so a multi-gigabyte soak trace inspects in the same
//! peak memory as a toy one.
//!
//! Usage:
//!   cargo run --release --example trace_inspect -- <file> [summary]
//!   cargo run --release --example trace_inspect -- <file> dump [lane]
//!   cargo run --release --example trace_inspect -- <file> stats
//!   cargo run --release --example trace_inspect -- <file> materialize
//!   cargo run --release --example trace_inspect -- <file> compact <dst> [family ...]
//!
//! `summary` (the default) prints the campaign header plus the streaming
//! stats tables: event counts per family, chaos injections per kind,
//! per-trap latency histogram summaries, and per-lane occupancy. `dump`
//! prints every record in global sequence order, optionally filtered to
//! one lane (worker). `stats` adds the trace-scale analytics: per-handler
//! latency percentiles (p50/p90/p99 off the log2 histogram) and the
//! spec-coverage-over-time curve. `materialize` computes the same stats
//! through `load_trace` — the whole-timeline baseline the E15 peak-memory
//! comparison measures the iterator against. `compact` rewrites the trace
//! to `<dst>` dropping the named observation-only event families
//! (default: `read-once`), refusing replay-critical ones.
//!
//! With `PKVM_PRINT_PEAK_RSS=1` in the environment, every mode appends a
//! `peak-rss: <kB> kB` line read from `/proc/self/status` (Linux only) —
//! how E15 measures streaming vs materialized peak memory.

use pkvm_ghost::event::{Event, EventRecord, TraceStats};
use pkvm_harness::tracefile::{compact_trace, load_trace, TraceReader};

/// Streams the whole file through `f`, exiting nonzero on the first
/// decode error, and returns (events, violations).
fn stream(path: &str, mut f: impl FnMut(&EventRecord)) -> (u64, u64) {
    let reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_inspect: cannot open {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut events = 0u64;
    let mut violations = 0u64;
    for rec in reader {
        let rec = match rec {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace_inspect: {path}: {e}");
                std::process::exit(1);
            }
        };
        events += 1;
        if matches!(rec.event, Event::Violation(_)) {
            violations += 1;
        }
        f(&rec);
    }
    (events, violations)
}

fn print_header(path: &str) {
    let header = match TraceReader::open(path).map(|r| r.header().clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("trace_inspect: cannot open {path}: {e}");
            std::process::exit(1);
        }
    };
    println!("{path}:");
    println!(
        "  machine: {} cpus, {} dram region(s), {} mmio region(s), {} hyp pool pages",
        header.config.nr_cpus,
        header.config.dram.len(),
        header.config.mmio.len(),
        header.config.hyp_pool_pages,
    );
    println!("  fault bits: {:#x}", header.fault_bits);
    match &header.chaos {
        Some(c) => println!("  chaos: seed {:#x}", c.seed),
        None => println!("  chaos: none"),
    }
    println!("  worker seeds: {:x?}", header.seeds);
}

/// Peak resident set size so far, from `/proc/self/status` (`VmHWM`).
/// `None` off Linux or on any parse surprise.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn maybe_print_peak_rss() {
    if std::env::var_os("PKVM_PRINT_PEAK_RSS").is_none() {
        return;
    }
    match peak_rss_kb() {
        Some(kb) => println!("peak-rss: {kb} kB"),
        None => println!("peak-rss: unavailable"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!(
            "usage: trace_inspect <file.pkvmtrace> [summary | dump [lane] | stats | materialize | compact <dst> [family ...]]"
        );
        std::process::exit(2);
    };
    let mode = args.next().unwrap_or_else(|| "summary".to_string());

    match mode.as_str() {
        "summary" => {
            print_header(&path);
            let mut stats = TraceStats::new();
            let (events, violations) = stream(&path, |rec| stats.observe(rec));
            println!("  events: {events} ({violations} violation(s))");
            print!("{}", stats.render());
        }
        "dump" => {
            let lane_filter: Option<u32> = args.next().and_then(|s| s.parse().ok());
            print_header(&path);
            let (events, violations) = stream(&path, |rec| {
                if lane_filter.is_some_and(|l| l != rec.lane) {
                    return;
                }
                let trap = rec.trap.map(|t| format!(" trap#{t}")).unwrap_or_default();
                println!(
                    "  #{:<6} lane {:<2}{} +{}ns {:?}",
                    rec.seq, rec.lane, trap, rec.t_ns, rec.event
                );
            });
            println!("  events: {events} ({violations} violation(s))");
        }
        "stats" => {
            print_header(&path);
            let mut stats = TraceStats::new();
            let (events, violations) = stream(&path, |rec| stats.observe(rec));
            println!("  events: {events} ({violations} violation(s))");
            print!("{}", stats.render());
            print!("{}", stats.render_percentiles());
            print!("{}", stats.render_coverage());
        }
        "materialize" => {
            // The whole-timeline baseline: identical output to `stats`,
            // but through load_trace's Vec<EventRecord>. Exists so the
            // peak-RSS comparison in EXPERIMENTS.md E15 has something
            // honest to measure the streaming path against.
            print_header(&path);
            let trace = match load_trace(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("trace_inspect: cannot load {path}: {e}");
                    std::process::exit(1);
                }
            };
            let mut stats = TraceStats::new();
            let mut violations = 0u64;
            for rec in &trace.events {
                if matches!(rec.event, Event::Violation(_)) {
                    violations += 1;
                }
                stats.observe(rec);
            }
            println!(
                "  events: {} ({violations} violation(s))",
                trace.events.len()
            );
            print!("{}", stats.render());
            print!("{}", stats.render_percentiles());
            print!("{}", stats.render_coverage());
        }
        "compact" => {
            let Some(dst) = args.next() else {
                eprintln!("usage: trace_inspect <file.pkvmtrace> compact <dst> [family ...]");
                std::process::exit(2);
            };
            let families: Vec<String> = args.collect();
            let drop: Vec<&str> = if families.is_empty() {
                vec!["read-once"]
            } else {
                families.iter().map(String::as_str).collect()
            };
            match compact_trace(&path, &dst, &drop) {
                Ok(stats) => {
                    println!(
                        "compacted {path} -> {dst}: kept {} record(s), dropped {} ({})",
                        stats.kept,
                        stats.dropped,
                        drop.join(","),
                    );
                }
                Err(e) => {
                    eprintln!("trace_inspect: compact failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!(
                "trace_inspect: unknown mode {other:?} (want summary, dump, stats, materialize or compact)"
            );
            std::process::exit(2);
        }
    }
    maybe_print_peak_rss();
}
