//! A parallel random-testing campaign (§5, scaled out): N worker threads
//! drive one machine under the oracle, each pinned to its own simulated
//! CPU, with the interleaved schedule recorded. A violating campaign is
//! replayed single-threaded from the recorded seeds and schedule alone,
//! then minimized to a short reproducer.
//!
//! Run with `cargo run --release --example campaign -- [workers] [steps-per-worker] [seed]`.

use pkvm_harness::campaign::{minimize, replay, CampaignCfg};

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let steps: u64 = args.next().as_deref().and_then(parse_u64).unwrap_or(2_000);
    let seed: u64 = args
        .next()
        .as_deref()
        .and_then(parse_u64)
        .unwrap_or(0xc0ffee);

    let report = CampaignCfg::builder()
        .workers(workers)
        .steps_per_worker(steps)
        .base_seed(seed)
        .run();
    print!("{}", report.render());

    if report.is_clean() {
        println!("clean campaign: no violations, no panics");
        return;
    }

    // Something went wrong: reproduce it deterministically from the trace.
    let Some(trace) = &report.trace else {
        eprintln!("violating campaign, but trace recording was disabled");
        std::process::exit(1);
    };
    println!(
        "\nreplaying the {} recorded events single-threaded ...",
        trace.events.len()
    );
    let outcome = replay(trace);
    println!(
        "  replay: {} violation(s){} after {} events",
        outcome.violations.len(),
        outcome
            .hyp_panic
            .as_deref()
            .map(|p| format!(", hypervisor panic: {p}"))
            .unwrap_or_default(),
        outcome.steps,
    );
    if outcome.violated() {
        let minimized = minimize(trace, 200);
        println!(
            "  minimized reproducer: {} of {} events still violate",
            minimized.events.len(),
            trace.events.len()
        );
        for ev in minimized.events.iter().take(10) {
            println!("    #{} lane {}: {:?}", ev.seq, ev.lane, ev.event);
        }
    } else {
        println!("  (the violation did not reproduce under the recorded linearisation)");
    }
    std::process::exit(1);
}
