//! Coverage of implementation and specification after the handwritten
//! suite and a random burst — the custom coverage tooling of §5.
//!
//! Run with `cargo run --release --example coverage_report`.

use pkvm_harness::coverage::{self, CoverageSummary};
use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};
use pkvm_harness::scenarios;

fn main() {
    // Delta against a snapshot rather than a global reset: a reset would
    // race (and destroy) any other thread's counters in this process;
    // the snapshot/diff pair measures just what runs below.
    let base = coverage::snapshot();

    // Phase 1: the 41 handwritten tests.
    let result = scenarios::run_all(true);
    assert!(
        result.oracle_failures.is_empty(),
        "{:?}",
        result.oracle_failures
    );
    let after_suite = CoverageSummary::since(&base);
    println!(
        "after the handwritten suite ({} tests: {} error-free, {} error, {} concurrent):",
        result.total, result.ok_kind, result.err_kind, result.concurrent
    );
    print!("{}", after_suite.render());

    // Phase 2: a random burst on top.
    let proxy = Proxy::builder().boot();
    let mut tester = RandomTester::new(proxy, RandomCfg::default());
    tester.run(5000);
    assert!(tester.proxy.all_clear());
    let after_random = CoverageSummary::since(&base);
    println!("\nafter adding 5000 random-tester steps:");
    print!("{}", after_random.render());

    println!("\nimplementation points never hit:");
    for p in after_random.hyp.missed() {
        println!("  {p}");
    }
    println!("specification points never hit (mostly deliberately-loose paths):");
    for p in after_random.spec.missed() {
        println!("  {p}");
    }
}
