//! A protected VM's whole life, checked by the oracle at every trap:
//! creation from host-donated pages, vCPU init/load, memcache top-up,
//! donation of guest memory, guest execution (faults, virtio-style shares
//! with the host), teardown, and page reclaim.
//!
//! Run with `cargo run --example vm_lifecycle`.

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::walk::Access;
use pkvm_harness::proxy::Proxy;
use pkvm_hyp::hypercalls::exit;
use pkvm_hyp::vm::GuestOp;

fn main() {
    let p = Proxy::builder().boot();
    let oracle = p.oracle.as_ref().expect("oracle installed");
    assert!(oracle.check_boot());

    // Create a protected VM with one vCPU; the host donates the metadata
    // and stage 2 root pages.
    let handle = p.init_vm(0, 1, true).expect("init_vm");
    p.init_vcpu(0, handle, 0).expect("init_vcpu");
    println!("created protected VM {handle:#x} with one vCPU");

    // Load the vCPU onto CPU 0 and pre-pay for its stage 2 tables.
    p.vcpu_load(0, handle, 0).expect("vcpu_load");
    p.topup(0, 8).expect("topup");

    // The guest touches an unmapped page: stage 2 abort exit.
    p.push_guest_op(handle, 0, GuestOp::Write(0x10 * PAGE_SIZE, 0xfeed))
        .unwrap();
    assert_eq!(p.vcpu_run(0).expect("run"), exit::MEM_ABORT);
    let gipa = p.machine.cpus[0].lock().regs.get(2);
    println!("guest aborted at IPA {gipa:#x}; host resolves the fault");

    // The host donates a page at the faulting gfn and re-runs the guest.
    let pfn = p.map_guest(0, gipa / PAGE_SIZE).expect("host_map_guest");
    println!("host donated pfn {pfn:#x} to the guest (now invisible to the host)");
    assert!(p
        .machine
        .host_access(1, pfn * PAGE_SIZE, Access::Read)
        .is_err());
    p.push_guest_op(handle, 0, GuestOp::Write(0x10 * PAGE_SIZE, 0xfeed))
        .unwrap();
    assert_eq!(p.vcpu_run(0).expect("run"), exit::CONTINUE);

    // The guest shares the page back (virtio-style) and revokes it.
    p.push_guest_op(handle, 0, GuestOp::HvcShareHost(0x10 * PAGE_SIZE))
        .unwrap();
    assert_eq!(p.vcpu_run(0).expect("run"), exit::GUEST_HVC);
    assert_eq!(
        p.machine
            .host_access(1, pfn * PAGE_SIZE, Access::Read)
            .expect("shared back"),
        0xfeed,
        "the host sees the guest's write through the share"
    );
    println!("guest shared its page with the host; host read the guest's data");
    p.push_guest_op(handle, 0, GuestOp::HvcUnshareHost(0x10 * PAGE_SIZE))
        .unwrap();
    assert_eq!(p.vcpu_run(0).expect("run"), exit::GUEST_HVC);
    assert!(p
        .machine
        .host_access(1, pfn * PAGE_SIZE, Access::Read)
        .is_err());
    println!("guest revoked the share; host access faults again");

    // Teardown: infrastructure pages return immediately, guest memory
    // only through the (wiping) reclaim protocol.
    p.vcpu_put(0).expect("vcpu_put");
    p.teardown(0, handle).expect("teardown");
    assert!(p
        .machine
        .host_access(1, pfn * PAGE_SIZE, Access::Read)
        .is_err());
    p.reclaim(0, pfn).expect("reclaim");
    assert_eq!(
        p.machine
            .host_access(1, pfn * PAGE_SIZE, Access::Read)
            .expect("reclaimed"),
        0,
        "reclaimed pages are wiped before the host regains them"
    );
    println!("VM torn down; guest page wiped and reclaimed");

    let verdict = oracle.verdict();
    let checked = verdict.wait().stats().traps_checked;
    assert!(
        verdict.all_clear(),
        "violations: {:?}",
        verdict.violations()
    );
    println!("\noracle checked {checked} traps: all clean");
}
