//! Whole-system integration tests spanning every crate: substrate,
//! hypervisor, oracle, and harness together.

use pkvm_repro::aarch64::addr::PAGE_SIZE;
use pkvm_repro::aarch64::walk::Access;
use pkvm_repro::harness::bugs::{self, Detection};
use pkvm_repro::harness::proxy::Proxy;
use pkvm_repro::harness::random::{RandomCfg, RandomTester};
use pkvm_repro::harness::scenarios;
use pkvm_repro::hyp::faults::{Fault, FaultSet};
use pkvm_repro::hyp::vm::GuestOp;

/// The headline result, end to end: the clean hypervisor survives the
/// handwritten suite, concurrency, and random testing with zero oracle
/// violations — and every re-introducible bug is caught.
#[test]
fn clean_hypervisor_passes_everything() {
    let r = scenarios::run_all(true);
    assert_eq!(r.total, 41);
    assert!(r.oracle_failures.is_empty(), "{:?}", r.oracle_failures);
}

#[test]
fn random_campaign_multiple_seeds() {
    for seed in [1, 2, 3] {
        let proxy = Proxy::builder().boot();
        let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(seed).build());
        t.run(1500);
        assert!(
            t.proxy.all_clear(),
            "seed {seed} found violations on a clean hypervisor: {:?}",
            t.proxy.violations()
        );
    }
}

#[test]
fn bug_sweep_detects_everything() {
    for r in bugs::sweep() {
        assert_ne!(r.detection, Detection::Missed, "missed {:?}", r.fault);
    }
}

/// The isolation property itself, observed from the outside: once memory
/// is donated to a protected guest, no host access path reaches it until
/// it is reclaimed — and reclaim wipes it.
#[test]
fn end_to_end_isolation_story() {
    let p = Proxy::builder().boot();
    let h = p.init_vm(0, 1, true).unwrap();
    p.init_vcpu(0, h, 0).unwrap();
    p.vcpu_load(0, h, 0).unwrap();
    p.topup(0, 8).unwrap();
    let pfn = p.map_guest(0, 0x40).unwrap();
    let pa = pfn * PAGE_SIZE;

    // Guest stores a secret.
    p.push_guest_op(h, 0, GuestOp::Write(0x40 * PAGE_SIZE, 0x5ec2e7))
        .unwrap();
    p.vcpu_run(0).unwrap();

    // The host cannot read it from any CPU.
    for cpu in 0..p.machine.nr_cpus() {
        assert!(p.machine.host_access(cpu, pa, Access::Read).is_err());
        assert!(p.machine.host_access(cpu, pa, Access::Write).is_err());
    }

    // Not even after teardown, until the reclaim wipes it.
    p.vcpu_put(0).unwrap();
    p.teardown(0, h).unwrap();
    assert!(p.machine.host_access(0, pa, Access::Read).is_err());
    p.reclaim(0, pfn).unwrap();
    assert_eq!(
        p.machine.host_access(0, pa, Access::Read).unwrap(),
        0,
        "wiped"
    );
    assert!(p.all_clear(), "{:?}", p.violations());
}

/// Cross-CPU VM migration: load/run/put on different CPUs, with the
/// oracle tracking the vCPU ownership transfers.
#[test]
fn vcpu_migrates_across_cpus() {
    let p = Proxy::builder().boot();
    let h = p.init_vm(0, 1, true).unwrap();
    p.init_vcpu(0, h, 0).unwrap();
    for cpu in 0..p.machine.nr_cpus() {
        p.vcpu_load(cpu, h, 0).unwrap();
        p.topup(cpu, 2).unwrap();
        assert_eq!(
            p.vcpu_run(cpu).unwrap(),
            pkvm_repro::hyp::hypercalls::exit::WFI
        );
        p.vcpu_put(cpu).unwrap();
    }
    assert!(p.all_clear(), "{:?}", p.violations());
}

/// Guest registers survive migration: a value loaded by a guest read on
/// one CPU is still in the vCPU context after moving to another CPU.
#[test]
fn guest_state_survives_migration() {
    let p = Proxy::builder().boot();
    let h = p.init_vm(0, 1, true).unwrap();
    p.init_vcpu(0, h, 0).unwrap();
    p.vcpu_load(0, h, 0).unwrap();
    p.topup(0, 8).unwrap();
    let pfn = p.map_guest(0, 0x10).unwrap();
    p.machine
        .mem
        .write_u64(pkvm_repro::aarch64::PhysAddr::from_pfn(pfn), 0)
        .unwrap();
    p.push_guest_op(h, 0, GuestOp::Write(0x10 * PAGE_SIZE, 0xabcd))
        .unwrap();
    p.vcpu_run(0).unwrap();
    p.push_guest_op(h, 0, GuestOp::Read(0x10 * PAGE_SIZE))
        .unwrap();
    p.vcpu_run(0).unwrap();
    p.vcpu_put(0).unwrap();
    // Migrate to CPU 2 and verify the guest's x0 still holds the value.
    p.vcpu_load(2, h, 0).unwrap();
    {
        let g = p.machine.cpus[2].lock();
        let (_, _, vcpu) = g.loaded_vcpu.as_ref().unwrap();
        assert_eq!(vcpu.regs.get(0), 0xabcd);
    }
    p.vcpu_put(2).unwrap();
    assert!(p.all_clear(), "{:?}", p.violations());
}

/// Injecting a bug *mid-run* is caught at the first affected trap, not
/// blamed on earlier clean history.
#[test]
fn mid_run_injection_is_localised() {
    let p = Proxy::builder().boot();
    let pfn = p.alloc_page();
    p.share(0, pfn).unwrap();
    p.unshare(0, pfn).unwrap();
    assert!(p.all_clear());
    p.machine.faults.inject(Fault::SynShareWrongState);
    p.share(0, pfn).unwrap();
    let vs = p.violations();
    assert!(!vs.is_empty());
    assert!(
        vs.iter().all(|v| v.to_string().contains("host_share_hyp")),
        "{vs:?}"
    );
    // Once the state is corrupted, later calls may legitimately disagree
    // (the wrongly-Owned page cannot be unshared); what matters is that no
    // *false* blame landed before the injection.
    p.machine.faults.clear(Fault::SynShareWrongState);
    p.oracle.as_ref().unwrap().clear_violations();
    assert!(
        p.unshare(0, pfn).is_err(),
        "the corrupted page state persists"
    );
}

/// Machines with several disjoint DRAM regions boot and operate cleanly;
/// the carveout comes from the last region and the layout spans all.
#[test]
fn multi_region_dram_configurations() {
    use pkvm_repro::hyp::machine::{Machine, MachineConfig};
    use pkvm_repro::prelude::*;
    use std::sync::Arc;
    let config = MachineConfig {
        dram: vec![(0x4000_0000, 0x400_0000), (0x9000_0000, 0x400_0000)],
        ..MachineConfig::default()
    };
    let oracle = Oracle::builder(&config).build();
    let m = Machine::boot(config, oracle.clone(), Arc::new(FaultSet::none()));
    assert!(oracle.check_boot(), "{:?}", oracle.violations());
    // Host faults and shares in both regions.
    m.host_access(0, 0x4100_0000, Access::Read).unwrap();
    m.host_access(0, 0x9100_0000, Access::Write).unwrap();
    assert_eq!(
        m.hvc(
            0,
            pkvm_repro::hyp::hypercalls::HVC_HOST_SHARE_HYP,
            &[0x40200]
        ),
        0
    );
    assert_eq!(
        m.hvc(
            0,
            pkvm_repro::hyp::hypercalls::HVC_HOST_SHARE_HYP,
            &[0x90200]
        ),
        0
    );
    // The gap between the regions is nobody's memory.
    assert!(m.host_access(0, 0x6000_0000, Access::Read).is_err());
    assert!(oracle.is_clean(), "{:?}", oracle.violations());
}

/// Several bugs injected simultaneously: each is still attributed to its
/// own trap.
#[test]
fn combined_injections_are_all_detected() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynShareWrongState);
    faults.inject(Fault::SynVcpuPutLeak);
    let p = Proxy::builder().faults(faults).boot();
    let pfn = p.alloc_page();
    p.share(0, pfn).unwrap();
    let h = p.init_vm(0, 1, true).unwrap();
    p.init_vcpu(0, h, 0).unwrap();
    p.vcpu_load(0, h, 0).unwrap();
    p.vcpu_put(0).unwrap();
    let vs: Vec<String> = p.violations().iter().map(|v| v.to_string()).collect();
    assert!(vs.iter().any(|v| v.contains("host_share_hyp")), "{vs:?}");
    assert!(vs.iter().any(|v| v.contains("vcpu_put")), "{vs:?}");
}

/// A stress mix across all CPUs, longer than the unit variants.
#[test]
fn sustained_concurrent_stress() {
    let faults = FaultSet::none();
    let p = Proxy::builder().faults(faults).boot();
    std::thread::scope(|s| {
        // One VM worker.
        s.spawn(|| {
            for round in 0..6 {
                let h = p.init_vm(0, 1, round % 2 == 0).unwrap();
                p.init_vcpu(0, h, 0).unwrap();
                p.vcpu_load(0, h, 0).unwrap();
                p.topup(0, 8).unwrap();
                let pfn = p.map_guest(0, 0x10).unwrap();
                p.push_guest_op(h, 0, GuestOp::Write(0x10 * PAGE_SIZE, round))
                    .unwrap();
                p.vcpu_run(0).unwrap();
                p.vcpu_put(0).unwrap();
                p.teardown(0, h).unwrap();
                let _ = p.reclaim(0, pfn);
            }
        });
        // Share workers.
        for cpu in 1..p.machine.nr_cpus() {
            let p = &p;
            s.spawn(move || {
                let base = p.alloc_pages(32);
                for round in 0..4 {
                    for i in 0..32 {
                        p.share(cpu, base + i).unwrap();
                    }
                    for i in 0..32 {
                        p.unshare(cpu, base + i).unwrap();
                    }
                    let _ = round;
                }
            });
        }
        // A host-fault worker hammering mapping-on-demand.
        {
            let p = &p;
            s.spawn(move || {
                for i in 0..64u64 {
                    let _ = p
                        .machine
                        .host_access(0, 0x4200_0000 + i * 0x1000, Access::Read);
                }
            });
        }
    });
    assert!(p.all_clear(), "{:?}", p.violations());
    assert!(p.machine.panicked().is_none());
}
