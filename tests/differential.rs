//! Differential replay, end to end: one recorded clean schedule replayed
//! against the clean hypervisor and every cataloged fault. The matrix
//! must be deterministic (same file, same digest line, every time), its
//! clean row must be violation-free, and fault rows that diverge must
//! anchor their first divergence to a real event seq.

use pkvm_repro::harness::campaign::CampaignCfg;
use pkvm_repro::harness::differential::differential_matrix;
use pkvm_repro::harness::tracefile::save_trace;
use pkvm_repro::hyp::faults::Fault;

fn record(path: &std::path::Path, seed: u64, steps: u64) {
    let report = CampaignCfg::builder()
        .workers(2)
        .steps_per_worker(steps)
        .base_seed(seed)
        .stop_on_violation(false)
        .run();
    assert!(report.is_clean(), "recording campaign must be clean");
    save_trace(path, &report.trace.expect("trace recorded")).expect("save");
}

/// The matrix over a small clean schedule: one row per catalog entry
/// plus the clean baseline, a violation-free clean row, deterministic
/// digest lines across repeated computations, and seq-anchored
/// divergences on the rows that do detect.
#[test]
fn matrix_is_deterministic_with_a_clean_baseline() {
    let path = std::env::temp_dir().join(format!("pkvm-diff-{}.pkvmtrace", std::process::id()));
    record(&path, 0x42, 250);

    let m1 = differential_matrix(&path).expect("matrix");
    let m2 = differential_matrix(&path).expect("matrix again");
    let _ = std::fs::remove_file(&path);

    // Shape: the clean baseline plus every cataloged fault.
    assert_eq!(m1.rows.len(), Fault::ALL.len() + 1);
    assert!(m1.events > 0, "the schedule recorded no events");

    // The clean hypervisor replays its own schedule without complaint.
    let clean = m1.clean_row();
    assert!(clean.fault.is_none());
    assert_eq!(clean.violations, 0, "clean row violated:\n{}", m1.render());
    assert!(!clean.hyp_panic);
    assert!(clean.first_divergence.is_none());

    // Replay is deterministic: the digest line is bit-identical, and so
    // is every row underneath it.
    assert_eq!(m1.matrix_line(), m2.matrix_line());
    for (a, b) in m1.rows.iter().zip(&m2.rows) {
        assert_eq!(a.violations, b.violations, "{}", a.name());
        assert_eq!(a.first_divergence, b.first_divergence, "{}", a.name());
        assert_eq!(a.kinds, b.kinds, "{}", a.name());
        assert_eq!(a.hyp_panic, b.hyp_panic, "{}", a.name());
    }

    // Even this small schedule catches real bugs, and each detection is
    // anchored: a diverging row names the event seq it diverged at.
    assert!(m1.detected() > 0, "no fault diverged:\n{}", m1.render());
    for row in m1.fault_rows() {
        if row.diverged() {
            assert!(row.first_divergence.is_some() || row.hyp_panic);
            assert!(row.violations > 0 || row.hyp_panic, "{}", row.name());
        }
    }
}

/// Two *different* schedules give different digests — the matrix line
/// actually hashes the detection content rather than a constant.
#[test]
fn different_schedules_give_different_digests() {
    let p1 = std::env::temp_dir().join(format!("pkvm-diff-a-{}.pkvmtrace", std::process::id()));
    let p2 = std::env::temp_dir().join(format!("pkvm-diff-b-{}.pkvmtrace", std::process::id()));
    record(&p1, 0x42, 150);
    record(&p2, 0x1234_5678, 150);
    let m1 = differential_matrix(&p1).expect("matrix");
    let m2 = differential_matrix(&p2).expect("matrix");
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
    assert_ne!(
        m1.matrix_line(),
        m2.matrix_line(),
        "two unrelated schedules produced the same digest"
    );
}
