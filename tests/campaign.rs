//! End-to-end tests of the parallel random-testing campaign: concurrent
//! clean runs, deterministic replay of an injected bug from the recorded
//! seeds and schedule alone, and trace minimization.

use pkvm_repro::harness::campaign::{minimize, replay, CampaignCfg};
use pkvm_repro::hyp::faults::{Fault, FaultSet};

#[test]
fn concurrent_campaign_on_a_clean_hypervisor_is_clean() {
    // Several base seeds, all workers concurrent, oracle fully on: the
    // §4.4 machinery must not report anything on a correct hypervisor.
    for seed in [11, 12] {
        let report = CampaignCfg::builder()
            .workers(4)
            .steps_per_worker(300)
            .base_seed(seed)
            .record_trace(false)
            .run();
        assert!(
            report.is_clean(),
            "seed {seed}: {}\n{:?}",
            report.render(),
            report.violations
        );
    }
}

#[test]
fn injected_bug_found_by_a_campaign_replays_and_minimizes() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynShareWrongState);
    let report = CampaignCfg::builder()
        .workers(2)
        .steps_per_worker(2_000)
        .base_seed(0xdead)
        .faults(&faults)
        .run();
    assert!(
        !report.violations.is_empty(),
        "the injected bug was never triggered:\n{}",
        report.render()
    );
    let trace = report.trace.as_ref().expect("trace recorded");

    // Deterministic reproduction: a fresh machine, the recorded schedule,
    // nothing else. Twice, to catch nondeterminism in the replay itself.
    let first = replay(trace);
    assert!(first.violated(), "recorded schedule did not reproduce");
    let second = replay(trace);
    assert_eq!(
        first.violations.len(),
        second.violations.len(),
        "replay is not deterministic"
    );

    // The minimized trace is no longer and still violates.
    let minimized = minimize(trace, 60);
    assert!(minimized.events.len() <= trace.events.len());
    assert!(replay(&minimized).violated());
}
