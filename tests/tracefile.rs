//! The `.pkvmtrace` codec, end to end: round trips over real recorded
//! campaigns (clean and chaotic, across seeds), verdict preservation
//! through a save/load cycle, and the robustness guarantee — truncated
//! or bit-corrupted files fail with a clean error, never a panic.

use pkvm_repro::harness::campaign::{replay, CampaignCfg, CampaignTrace};
use pkvm_repro::harness::chaos::ChaosCfg;
use pkvm_repro::harness::tracefile::{
    decode_trace, encode_trace, load_trace, save_trace, TraceFileError, FORMAT_VERSION, MAGIC,
};
use pkvm_repro::hyp::faults::{Fault, FaultSet};

fn record_campaign(seed: u64, chaotic: bool, fault: Option<Fault>) -> CampaignTrace {
    let mut b = CampaignCfg::builder()
        .workers(2)
        .steps_per_worker(150)
        .base_seed(seed)
        .stop_on_violation(false);
    if chaotic {
        b = b.chaos(
            ChaosCfg::builder()
                .seed(seed ^ 0xc4a0)
                .torn_read_once(0.1)
                .drop_lock_event(0.01)
                .dup_lock_event(0.01)
                .delay_hook(0.02)
                .alloc_chaos(0.1)
                .build(),
        );
    }
    if let Some(f) = fault {
        let faults = FaultSet::none();
        faults.inject(f);
        b = b.faults(&faults);
    }
    b.run().trace.expect("trace recorded")
}

/// The round-trip property over seeded campaigns: for clean and chaotic
/// runs alike, decode(encode(trace)) reproduces the trace exactly —
/// config, oracle switches, faults, chaos, seeds, and every event record
/// field for field.
#[test]
fn round_trip_preserves_clean_and_chaotic_campaigns_across_seeds() {
    for seed in 0..6u64 {
        let chaotic = seed % 2 == 1;
        let trace = record_campaign(0x70ac_e000 + seed, chaotic, None);
        assert!(
            !trace.events.is_empty(),
            "seed {seed}: campaign recorded nothing"
        );
        let decoded = decode_trace(&encode_trace(&trace)).expect("round trip decodes");
        assert_eq!(decoded, trace, "seed {seed} (chaotic={chaotic})");
    }
}

/// A violating campaign — a real injected hypervisor bug — survives the
/// trip through a file on disk: the loaded trace equals the recorded one
/// and replays to the identical verdict, violation kinds and event
/// sequence ids included.
#[test]
fn violating_trace_survives_disk_and_replays_to_the_same_verdict() {
    let trace = record_campaign(0x70ac_e100, true, Some(Fault::SynShareWrongState));
    let path =
        std::env::temp_dir().join(format!("pkvmtrace-test-{}.pkvmtrace", std::process::id()));
    save_trace(&path, &trace).expect("save");
    let loaded = load_trace(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, trace);

    let original = replay(&trace);
    let reloaded = replay(&loaded);
    assert!(original.violated(), "the injected bug must reproduce");
    assert_eq!(
        original.violations.len(),
        reloaded.violations.len(),
        "verdicts diverged through the file"
    );
    for (a, b) in original.violations.iter().zip(&reloaded.violations) {
        assert_eq!(a.kind(), b.kind());
        assert_eq!(a.event_seq(), b.event_seq());
    }
    assert_eq!(original.hyp_panic, reloaded.hyp_panic);
    assert_eq!(original.steps, reloaded.steps);
}

/// Format v3 carries the TLB-plane records: `Tlbi`/`Dsb`/`PteDowngrade`
/// events, the `StaleTlb` chaos tag with its `p_stale_tlb` knob, and the
/// `BreakBeforeMake` violation. A stale-chaos campaign and a
/// missing-TLBI campaign between them exercise every new tag; both must
/// survive the codec field for field.
#[test]
fn v3_tlb_records_round_trip() {
    use pkvm_repro::ghost::event::{ChaosKind, Event};

    // Clean hypervisor under stale-TLB chaos: the full invalidation
    // protocol is on the stream, plus the chaos injection tags.
    let chaotic = CampaignCfg::builder()
        .workers(2)
        .steps_per_worker(150)
        .base_seed(0x70ac_e400)
        .stop_on_violation(false)
        .chaos(ChaosCfg::builder().seed(0x57a1).stale_tlb(0.5).build())
        .run()
        .trace
        .expect("trace recorded");
    let has = |pred: &dyn Fn(&Event) -> bool| chaotic.events.iter().any(|r| pred(&r.event));
    assert!(has(&|e| matches!(e, Event::Tlbi { .. })), "no Tlbi event");
    assert!(has(&|e| matches!(e, Event::Dsb { .. })), "no Dsb event");
    assert!(
        has(&|e| matches!(e, Event::PteDowngrade { .. })),
        "no PteDowngrade event"
    );
    assert_eq!(
        chaotic.chaos.map(|c| c.p_stale_tlb),
        Some(0.5),
        "the stale knob travels in the config"
    );
    let decoded = decode_trace(&encode_trace(&chaotic)).expect("round trip decodes");
    assert_eq!(decoded, chaotic);

    // Missing-TLBI bug: the spec check's break-before-make verdict is a
    // recorded violation and must round trip with its anchoring seq.
    let faulted = record_campaign(0x70ac_e500, false, Some(Fault::SynMissingTlbi));
    assert!(
        faulted.events.iter().any(|r| matches!(
            &r.event,
            Event::Violation(v) if v.kind() == "break-before-make" && v.event_seq().is_some()
        )),
        "missing-TLBI campaign recorded no break-before-make violation"
    );
    let decoded = decode_trace(&encode_trace(&faulted)).expect("round trip decodes");
    assert_eq!(decoded, faulted);

    // The chaos stream itself tags each suppressed delivery.
    assert!(
        has(&|e| matches!(
            e,
            Event::Chaos {
                kind: ChaosKind::StaleTlb,
                ..
            }
        )),
        "no StaleTlb chaos tag on the chaotic stream"
    );
}

/// Robustness: every proper prefix of a valid file fails with a clean
/// [`TraceFileError`] — never a panic, never a silently short trace.
#[test]
fn every_truncation_fails_cleanly() {
    let trace = record_campaign(0x70ac_e200, true, None);
    let bytes = encode_trace(&trace);
    // Every prefix short enough to matter, then a coarse sweep.
    let cuts: Vec<usize> = (0..bytes.len().min(64))
        .chain((64..bytes.len()).step_by(97))
        .collect();
    for cut in cuts {
        match decode_trace(&bytes[..cut]) {
            Ok(_) => panic!("a {cut}-byte prefix of a {}-byte file decoded", bytes.len()),
            Err(
                TraceFileError::Truncated | TraceFileError::BadMagic | TraceFileError::Malformed(_),
            ) => {}
            Err(e) => panic!("unexpected error for {cut}-byte prefix: {e}"),
        }
    }
}

/// Robustness: flipping a byte anywhere in the file either still decodes
/// (the flip landed in a value, not the structure) or fails with a clean
/// error. It never panics and never decodes to the original trace when
/// the flip landed in the header.
#[test]
fn corrupted_bytes_never_panic_the_decoder() {
    let trace = record_campaign(0x70ac_e300, true, None);
    let bytes = encode_trace(&trace);
    for pos in (0..bytes.len()).step_by(13) {
        let mut evil = bytes.clone();
        evil[pos] ^= 0xa5;
        // Decoding must terminate without panicking; both outcomes fine.
        let _ = decode_trace(&evil);
    }
    // Header corruption specifically must be rejected, not reinterpreted.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        decode_trace(&bad_magic),
        Err(TraceFileError::BadMagic)
    ));
    let mut bad_version = bytes.clone();
    bad_version[MAGIC.len()] = (FORMAT_VERSION + 1) as u8;
    assert!(matches!(
        decode_trace(&bad_version),
        Err(TraceFileError::BadVersion(_))
    ));
}
