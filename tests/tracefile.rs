//! The `.pkvmtrace` codec, end to end: round trips over real recorded
//! campaigns (clean and chaotic, across seeds), verdict preservation
//! through a save/load cycle, and the robustness guarantee — truncated
//! or bit-corrupted files fail with a clean error, never a panic.

use pkvm_repro::harness::campaign::{replay, CampaignCfg, CampaignTrace};
use pkvm_repro::harness::chaos::ChaosCfg;
use pkvm_repro::harness::tracefile::{
    compact_trace, decode_trace, encode_trace, load_trace, save_trace, CompactError,
    TraceFileError, TraceHeader, TraceReader, TraceWriter, FORMAT_VERSION, MAGIC,
};
use pkvm_repro::hyp::faults::{Fault, FaultSet};

fn record_campaign(seed: u64, chaotic: bool, fault: Option<Fault>) -> CampaignTrace {
    let mut b = CampaignCfg::builder()
        .workers(2)
        .steps_per_worker(150)
        .base_seed(seed)
        .stop_on_violation(false);
    if chaotic {
        b = b.chaos(
            ChaosCfg::builder()
                .seed(seed ^ 0xc4a0)
                .torn_read_once(0.1)
                .drop_lock_event(0.01)
                .dup_lock_event(0.01)
                .delay_hook(0.02)
                .alloc_chaos(0.1)
                .build(),
        );
    }
    if let Some(f) = fault {
        let faults = FaultSet::none();
        faults.inject(f);
        b = b.faults(&faults);
    }
    b.run().trace.expect("trace recorded")
}

/// The round-trip property over seeded campaigns: for clean and chaotic
/// runs alike, decode(encode(trace)) reproduces the trace exactly —
/// config, oracle switches, faults, chaos, seeds, and every event record
/// field for field.
#[test]
fn round_trip_preserves_clean_and_chaotic_campaigns_across_seeds() {
    for seed in 0..6u64 {
        let chaotic = seed % 2 == 1;
        let trace = record_campaign(0x70ac_e000 + seed, chaotic, None);
        assert!(
            !trace.events.is_empty(),
            "seed {seed}: campaign recorded nothing"
        );
        let decoded = decode_trace(&encode_trace(&trace)).expect("round trip decodes");
        assert_eq!(decoded, trace, "seed {seed} (chaotic={chaotic})");
    }
}

/// A violating campaign — a real injected hypervisor bug — survives the
/// trip through a file on disk: the loaded trace equals the recorded one
/// and replays to the identical verdict, violation kinds and event
/// sequence ids included.
#[test]
fn violating_trace_survives_disk_and_replays_to_the_same_verdict() {
    let trace = record_campaign(0x70ac_e100, true, Some(Fault::SynShareWrongState));
    let path =
        std::env::temp_dir().join(format!("pkvmtrace-test-{}.pkvmtrace", std::process::id()));
    save_trace(&path, &trace).expect("save");
    let loaded = load_trace(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, trace);

    let original = replay(&trace);
    let reloaded = replay(&loaded);
    assert!(original.violated(), "the injected bug must reproduce");
    assert_eq!(
        original.violations.len(),
        reloaded.violations.len(),
        "verdicts diverged through the file"
    );
    for (a, b) in original.violations.iter().zip(&reloaded.violations) {
        assert_eq!(a.kind(), b.kind());
        assert_eq!(a.event_seq(), b.event_seq());
    }
    assert_eq!(original.hyp_panic, reloaded.hyp_panic);
    assert_eq!(original.steps, reloaded.steps);
}

/// Format v3 carries the TLB-plane records: `Tlbi`/`Dsb`/`PteDowngrade`
/// events, the `StaleTlb` chaos tag with its `p_stale_tlb` knob, and the
/// `BreakBeforeMake` violation. A stale-chaos campaign and a
/// missing-TLBI campaign between them exercise every new tag; both must
/// survive the codec field for field.
#[test]
fn v3_tlb_records_round_trip() {
    use pkvm_repro::ghost::event::{ChaosKind, Event};

    // Clean hypervisor under stale-TLB chaos: the full invalidation
    // protocol is on the stream, plus the chaos injection tags.
    let chaotic = CampaignCfg::builder()
        .workers(2)
        .steps_per_worker(150)
        .base_seed(0x70ac_e400)
        .stop_on_violation(false)
        .chaos(ChaosCfg::builder().seed(0x57a1).stale_tlb(0.5).build())
        .run()
        .trace
        .expect("trace recorded");
    let has = |pred: &dyn Fn(&Event) -> bool| chaotic.events.iter().any(|r| pred(&r.event));
    assert!(has(&|e| matches!(e, Event::Tlbi { .. })), "no Tlbi event");
    assert!(has(&|e| matches!(e, Event::Dsb { .. })), "no Dsb event");
    assert!(
        has(&|e| matches!(e, Event::PteDowngrade { .. })),
        "no PteDowngrade event"
    );
    assert_eq!(
        chaotic.chaos.map(|c| c.p_stale_tlb),
        Some(0.5),
        "the stale knob travels in the config"
    );
    let decoded = decode_trace(&encode_trace(&chaotic)).expect("round trip decodes");
    assert_eq!(decoded, chaotic);

    // Missing-TLBI bug: the spec check's break-before-make verdict is a
    // recorded violation and must round trip with its anchoring seq.
    let faulted = record_campaign(0x70ac_e500, false, Some(Fault::SynMissingTlbi));
    assert!(
        faulted.events.iter().any(|r| matches!(
            &r.event,
            Event::Violation(v) if v.kind() == "break-before-make" && v.event_seq().is_some()
        )),
        "missing-TLBI campaign recorded no break-before-make violation"
    );
    let decoded = decode_trace(&encode_trace(&faulted)).expect("round trip decodes");
    assert_eq!(decoded, faulted);

    // The chaos stream itself tags each suppressed delivery.
    assert!(
        has(&|e| matches!(
            e,
            Event::Chaos {
                kind: ChaosKind::StaleTlb,
                ..
            }
        )),
        "no StaleTlb chaos tag on the chaotic stream"
    );
}

/// Robustness: every proper prefix of a valid file fails with a clean
/// [`TraceFileError`] — never a panic, never a silently short trace.
#[test]
fn every_truncation_fails_cleanly() {
    let trace = record_campaign(0x70ac_e200, true, None);
    let bytes = encode_trace(&trace);
    // Every prefix short enough to matter, then a coarse sweep.
    let cuts: Vec<usize> = (0..bytes.len().min(64))
        .chain((64..bytes.len()).step_by(97))
        .collect();
    for cut in cuts {
        match decode_trace(&bytes[..cut]) {
            Ok(_) => panic!("a {cut}-byte prefix of a {}-byte file decoded", bytes.len()),
            Err(
                TraceFileError::Truncated | TraceFileError::BadMagic | TraceFileError::Malformed(_),
            ) => {}
            Err(e) => panic!("unexpected error for {cut}-byte prefix: {e}"),
        }
    }
}

/// Robustness: flipping a byte anywhere in the file either still decodes
/// (the flip landed in a value, not the structure) or fails with a clean
/// error. It never panics and never decodes to the original trace when
/// the flip landed in the header.
#[test]
fn corrupted_bytes_never_panic_the_decoder() {
    let trace = record_campaign(0x70ac_e300, true, None);
    let bytes = encode_trace(&trace);
    for pos in (0..bytes.len()).step_by(13) {
        let mut evil = bytes.clone();
        evil[pos] ^= 0xa5;
        // Decoding must terminate without panicking; both outcomes fine.
        let _ = decode_trace(&evil);
    }
    // Header corruption specifically must be rejected, not reinterpreted.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        decode_trace(&bad_magic),
        Err(TraceFileError::BadMagic)
    ));
    let mut bad_version = bytes.clone();
    bad_version[MAGIC.len()] = (FORMAT_VERSION + 1) as u8;
    assert!(matches!(
        decode_trace(&bad_version),
        Err(TraceFileError::BadVersion(_))
    ));
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pkvmtrace-{tag}-{}.pkvmtrace", std::process::id()))
}

/// The streaming reader and the materialized loader are the same codec:
/// over clean, chaotic and violating campaigns across seeds, iterating a
/// [`TraceReader`] yields exactly the records `load_trace` materializes,
/// the header matches the trace's campaign configuration, and
/// `into_trace` reassembles the original trace field for field.
#[test]
fn streaming_reader_equals_materialized_loader_across_seeds() {
    let cases = [
        (0x5eed_0000u64, false, None),
        (0x5eed_0001, true, None),
        (0x5eed_0002, false, Some(Fault::SynShareWrongState)),
        (0x5eed_0003, true, Some(Fault::SynMissingTlbi)),
        (0x5eed_0004, true, None),
        (0x5eed_0005, false, Some(Fault::Bug1MemcacheAlignment)),
    ];
    for (i, (seed, chaotic, fault)) in cases.into_iter().enumerate() {
        let trace = record_campaign(seed, chaotic, fault);
        let path = temp_path(&format!("stream-eq-{i}"));
        save_trace(&path, &trace).expect("save");

        // Iterating streams exactly the materialized event list.
        let reader = TraceReader::open(&path).expect("open");
        assert_eq!(reader.header(), &TraceHeader::of(&trace));
        let streamed: Vec<_> = reader.map(|r| r.expect("record decodes")).collect();
        assert_eq!(streamed, trace.events, "case {i}");

        // And reassembling gives back load_trace's (and the original) trace.
        let materialized = load_trace(&path).expect("load");
        let reassembled = TraceReader::open(&path)
            .and_then(TraceReader::into_trace)
            .expect("into_trace");
        let _ = std::fs::remove_file(&path);
        assert_eq!(materialized, trace, "case {i}");
        assert_eq!(reassembled, trace, "case {i}");
    }
}

/// Streaming truncation semantics: every proper prefix of a valid file
/// either fails to open (the cut landed in the header) or streams some
/// records and then a typed error — and the records streamed before the
/// error are a *prefix of the true event list*, never garbage. After the
/// error the iterator is fused.
#[test]
fn every_truncation_streams_a_clean_prefix_then_a_typed_error() {
    let trace = record_campaign(0x5eed_0100, true, None);
    let bytes = encode_trace(&trace);
    let cuts: Vec<usize> = (0..bytes.len().min(64))
        .chain((64..bytes.len()).step_by(97))
        .collect();
    for cut in cuts {
        let mut reader = match TraceReader::from_bytes(&bytes[..cut]) {
            Ok(r) => r,
            Err(
                TraceFileError::Truncated | TraceFileError::BadMagic | TraceFileError::Malformed(_),
            ) => continue,
            Err(e) => panic!("unexpected open error for {cut}-byte prefix: {e}"),
        };
        let mut streamed = 0usize;
        loop {
            match reader.next() {
                Some(Ok(rec)) => {
                    assert_eq!(
                        Some(&rec),
                        trace.events.get(streamed),
                        "cut {cut}: record {streamed} is not a prefix of the true events"
                    );
                    streamed += 1;
                }
                Some(Err(
                    TraceFileError::Truncated
                    | TraceFileError::Malformed(_)
                    | TraceFileError::Io(_),
                )) => break,
                Some(Err(e)) => panic!("unexpected stream error at cut {cut}: {e}"),
                None => panic!(
                    "a {cut}-byte prefix of a {}-byte file streamed to a clean end",
                    bytes.len()
                ),
            }
        }
        assert!(reader.next().is_none(), "cut {cut}: iterator not fused");
        assert!(
            streamed < trace.events.len() || cut < bytes.len(),
            "cut {cut} streamed every event from a truncated file"
        );
    }
}

/// Flipping a byte anywhere never panics the streaming reader: it either
/// still streams (the flip landed in a value) or stops at a typed error,
/// and in both cases the iterator terminates and fuses.
#[test]
fn corrupted_bytes_never_panic_the_streaming_reader() {
    let trace = record_campaign(0x5eed_0200, true, None);
    let bytes = encode_trace(&trace);
    for pos in (0..bytes.len()).step_by(13) {
        let mut evil = bytes.clone();
        evil[pos] ^= 0xa5;
        let Ok(mut reader) = TraceReader::from_bytes(&evil) else {
            continue;
        };
        let mut errored = false;
        // Bounded: a corrupt stream must still terminate promptly.
        for _ in 0..=trace.events.len() + 1 {
            match reader.next() {
                Some(Ok(_)) => assert!(!errored, "pos {pos}: record after error"),
                Some(Err(_)) => errored = true,
                None => break,
            }
        }
        assert!(reader.next().is_none(), "pos {pos}: iterator not fused");
    }
}

/// The incremental writer is the one-shot encoder: appending records one
/// at a time and finishing produces a byte-identical file, while
/// dropping an unfinished writer aborts cleanly — no destination file,
/// no leaked temp file.
#[test]
fn trace_writer_matches_the_one_shot_encoder_and_aborts_cleanly() {
    let trace = record_campaign(0x5eed_0300, true, None);
    let path = temp_path("writer-eq");
    let header = TraceHeader::of(&trace);

    let mut w = TraceWriter::create(&path, &header).expect("create");
    for rec in &trace.events {
        w.append(rec).expect("append");
    }
    assert_eq!(w.events_written(), trace.events.len() as u64);
    w.finish().expect("finish");
    let written = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        written,
        encode_trace(&trace),
        "writer diverged from encoder"
    );

    // Abort: drop without finish().
    let abort_path = temp_path("writer-abort");
    {
        let mut w = TraceWriter::create(&abort_path, &header).expect("create");
        w.append(&trace.events[0]).expect("append");
    }
    assert!(!abort_path.exists(), "aborted writer left the destination");
    let leaked: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("writer-abort") && n.contains("wtmp"))
        .collect();
    assert!(
        leaked.is_empty(),
        "aborted writer leaked temp files: {leaked:?}"
    );
}

/// Compacting away observation-only families preserves the correctness
/// witness: the compacted trace replays to the identical verdict —
/// violation kinds, anchoring event seqs, panic and step count — and
/// every recorded violation survives with its original global seq.
#[test]
fn compaction_preserves_verdict_and_violation_anchors() {
    use pkvm_repro::ghost::event::Event;

    let trace = record_campaign(0x5eed_0400, true, Some(Fault::SynShareWrongState));
    let src = temp_path("compact-src");
    let dst = temp_path("compact-dst");
    save_trace(&src, &trace).expect("save");

    let drop = [
        "read-once",
        "lock-acquired",
        "lock-releasing",
        "trap-enter",
        "trap-exit",
        "chaos",
        "check",
    ];
    let stats = compact_trace(&src, &dst, &drop).expect("compact");
    assert!(stats.dropped > 0, "the chaotic trace had nothing to drop");
    assert_eq!(stats.kept + stats.dropped, trace.events.len() as u64);

    let compacted = load_trace(&dst).expect("load compacted");
    let _ = std::fs::remove_file(&src);
    let _ = std::fs::remove_file(&dst);
    assert!(compacted
        .events
        .iter()
        .all(|r| !drop.contains(&r.event.family())));

    // Violation records survive with their original seqs.
    let viol_seqs = |t: &CampaignTrace| -> Vec<u64> {
        t.events
            .iter()
            .filter(|r| matches!(r.event, Event::Violation(_)))
            .map(|r| r.seq)
            .collect()
    };
    assert_eq!(viol_seqs(&compacted), viol_seqs(&trace));

    // And the replayed verdict is bit-for-bit the original's.
    let original = replay(&trace);
    let shrunk = replay(&compacted);
    assert!(original.violated(), "the injected bug must reproduce");
    assert_eq!(original.violations.len(), shrunk.violations.len());
    for (a, b) in original.violations.iter().zip(&shrunk.violations) {
        assert_eq!(a.kind(), b.kind());
        assert_eq!(a.event_seq(), b.event_seq());
    }
    assert_eq!(original.hyp_panic, shrunk.hyp_panic);
    assert_eq!(original.steps, shrunk.steps);
}

/// Compaction refuses to touch what replay needs: dropping a
/// replay-critical family or an unknown family is a typed error and the
/// destination file is never created.
#[test]
fn compaction_refuses_replay_critical_and_unknown_families() {
    let trace = record_campaign(0x5eed_0500, false, None);
    let src = temp_path("refuse-src");
    let dst = temp_path("refuse-dst");
    save_trace(&src, &trace).expect("save");

    for critical in [
        "hvc",
        "write-mem",
        "corrupt-mem",
        "host-access",
        "push-guest-op",
        "violation",
    ] {
        match compact_trace(&src, &dst, &[critical]) {
            Err(CompactError::ReplayCritical(f)) => assert_eq!(f, critical),
            other => panic!("dropping {critical} was not refused: {other:?}"),
        }
        assert!(!dst.exists(), "{critical}: refusal still created the dst");
    }
    match compact_trace(&src, &dst, &["read-once", "not-a-family"]) {
        Err(CompactError::UnknownFamily(f)) => assert_eq!(f, "not-a-family"),
        other => panic!("an unknown family was not refused: {other:?}"),
    }
    assert!(!dst.exists());
    let _ = std::fs::remove_file(&src);
}
