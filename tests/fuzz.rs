//! Property tests for the fuzzing subsystem (ISSUE 5).
//!
//! Over ≥32 seeds: structure-aware mutation preserves trap-boundary
//! well-formedness, mutated sequences replay deterministically (same
//! violations, same panic, same step count on two fresh machines), and
//! neither the harness nor the oracle ever panics on a mutated input —
//! any hypervisor panic is contained and reported, never escaped.

use pkvm_ghost::event::EventRecord;
use pkvm_ghost::oracle::OracleOpts;
use pkvm_harness::campaign::{replay_events, CampaignTrace};
use pkvm_harness::fuzz::mutate;
use pkvm_harness::fuzz::FuzzCfg;
use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};
use pkvm_harness::rng::Rng;
use pkvm_hyp::machine::MachineConfig;

/// A recorded driver-op sequence from a short model-guided run.
fn generate(seed: u64, steps: u64) -> Vec<EventRecord> {
    let proxy = Proxy::builder().with_oracle(false).record(true).boot();
    let cfg = RandomCfg::builder()
        .seed(seed)
        .invalid_fraction(0.2)
        .build();
    let mut t = RandomTester::new(proxy, cfg);
    t.run(steps);
    mutate::renumber(
        t.proxy
            .events()
            .take_events()
            .into_iter()
            .filter(|r| r.event.is_driver())
            .collect(),
    )
}

fn wrap(events: Vec<EventRecord>) -> CampaignTrace {
    CampaignTrace {
        config: MachineConfig::default(),
        oracle_opts: OracleOpts::default(),
        fault_bits: 0,
        chaos: None,
        seeds: Vec::new(),
        events,
    }
}

/// Replays `events` twice on fresh oracle-checked machines and asserts
/// both runs agree exactly; returns the replay outcome of the first.
fn replay_is_deterministic(events: &[EventRecord], ctx: &str) {
    let trace = wrap(events.to_vec());
    let a = replay_events(&trace, events);
    let b = replay_events(&trace, events);
    assert_eq!(a.steps, b.steps, "{ctx}: step counts diverge");
    assert_eq!(a.hyp_panic, b.hyp_panic, "{ctx}: panic outcomes diverge");
    assert_eq!(
        format!("{:?}", a.violations),
        format!("{:?}", b.violations),
        "{ctx}: violation lists diverge"
    );
}

#[test]
fn mutators_preserve_well_formedness_and_replay_deterministically() {
    let fuzz_cfg = FuzzCfg::builder().build();
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x5eed_0000 + seed);
        let a = generate(seed * 2 + 1, 30);
        let b = generate(seed * 2 + 2, 30);
        assert!(
            mutate::is_well_formed(&a) && mutate::is_well_formed(&b),
            "seed {seed}: recorded input is not well-formed"
        );

        let truncated = mutate::truncate(&a, &mut rng);
        let spliced = mutate::splice(&a, &b, &mut rng);
        let inserted = mutate::insert_ops(&fuzz_cfg, &a, &mut rng);
        let perturbed = mutate::mutate_params(&a, &mut rng);
        let capped = mutate::cap_len(spliced.clone(), 16);

        for (name, m) in [
            ("truncate", &truncated),
            ("splice", &spliced),
            ("insert-ops", &inserted),
            ("mutate-params", &perturbed),
            ("cap_len", &capped),
        ] {
            assert!(
                mutate::is_well_formed(m),
                "seed {seed}: {name} broke trap-boundary well-formedness"
            );
            assert!(
                m.iter().enumerate().all(|(i, r)| r.seq == i as u64),
                "seed {seed}: {name} left stale sequence numbers"
            );
        }
        assert!(capped.len() <= 16, "seed {seed}: cap_len exceeded the cap");

        // Deterministic, panic-free replay under the full oracle. The
        // mutants most likely to reach strange states carry the check;
        // a panic anywhere in here fails the test itself.
        replay_is_deterministic(&spliced, &format!("seed {seed} splice"));
        replay_is_deterministic(&perturbed, &format!("seed {seed} mutate-params"));
    }
}

#[test]
fn truncate_and_splice_cut_only_at_group_boundaries() {
    // Structural check independent of the machine: every group in a
    // mutant's decomposition must end in a trap-taking op, and group
    // contents must be copies of whole source groups.
    for seed in 100..132u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let a = generate(seed, 25);
        let b = generate(seed + 1000, 25);
        let groups_a = mutate::op_groups(&a);
        let spliced = mutate::splice(&a, &b, &mut rng);
        // The spliced prefix is a literal prefix of `a` at some group
        // boundary of `a`.
        let boundary_lens: Vec<usize> = std::iter::once(0)
            .chain(groups_a.iter().map(|g| g.end))
            .collect();
        let prefix_len = (0..=spliced.len())
            .rev()
            .find(|&n| {
                n <= a.len()
                    && a[..n]
                        .iter()
                        .zip(&spliced[..n])
                        .all(|(x, y)| x.event == y.event)
            })
            .unwrap_or(0);
        assert!(
            boundary_lens.iter().any(|&bl| bl <= prefix_len),
            "seed {seed}: splice prefix not group-aligned"
        );
        let truncated = mutate::truncate(&a, &mut rng);
        assert!(
            boundary_lens.contains(&truncated.len()),
            "seed {seed}: truncate kept a partial group ({} events)",
            truncated.len()
        );
    }
}
