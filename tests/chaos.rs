//! End-to-end tests of the chaos engine and the oracle's fail-safe
//! guarantees: the zero-intensity equivalence property, the
//! panic-safety sweep over every hypervisor fault and chaos family,
//! deterministic replay of chaotic campaigns, and graceful degradation
//! under per-trap check budgets.

use pkvm_repro::ghost::oracle::OracleOpts;
use pkvm_repro::harness::campaign::{replay, CampaignCfg};
use pkvm_repro::harness::chaos::{ChaosCfg, ChaosFamily};
use pkvm_repro::hyp::faults::{Fault, FaultSet};

/// Satellite (c): a chaos-*disabled* campaign on the clean hypervisor,
/// across many seeds, sees zero violations and none of the resilience
/// machinery firing — the containment layer costs nothing and changes
/// nothing when the world behaves. An *inert* chaos config (all
/// probabilities zero) must be indistinguishable from no chaos at all.
#[test]
fn thirty_two_seeds_of_clean_campaign_stay_clean_and_undegraded() {
    for seed in 0..32u64 {
        let chaotic = seed % 2 == 1;
        let mut b = CampaignCfg::builder()
            .workers(2)
            .steps_per_worker(120)
            .base_seed(0x5eed_0000 + seed)
            .record_trace(false);
        if chaotic {
            // Odd seeds run through the full chaos plumbing with every
            // probability at zero: the decorator must be transparent.
            let inert = ChaosCfg::default();
            assert!(inert.is_inert());
            b = b.chaos(inert);
        }
        let report = b.run();
        assert!(
            report.is_clean(),
            "seed {seed} (inert chaos: {chaotic}): {}\n{:?}",
            report.render(),
            report.violations
        );
        let r = report.resilience;
        assert_eq!(r.contained_panics, 0, "seed {seed}: contained panics");
        assert_eq!(r.quarantined_skips, 0, "seed {seed}: quarantine fired");
        assert_eq!(r.violations_dropped, 0, "seed {seed}: violations dropped");
        assert_eq!(r.budget_degraded_events, 0, "seed {seed}: budget fired");
        assert_eq!(r.degraded_traps, 0, "seed {seed}: degraded traps");
        if chaotic {
            assert_eq!(
                report.chaos_injected.map(|c| c.total()),
                Some(0),
                "seed {seed}: inert chaos injected something"
            );
        }
    }
}

/// Satellite (d): sweep every hypervisor fault and every chaos family;
/// whatever happens — detection, degradation, even an implementation
/// crash under memory corruption — the oracle itself never panics. The
/// campaign machinery catches worker panics; this wraps each whole run
/// in `catch_unwind` as well, so an abort-level escape in the oracle's
/// bookkeeping would fail the test rather than the process.
#[test]
fn fault_and_chaos_sweep_never_panics_the_oracle() {
    let families = ChaosFamily::ALL;
    // Every fault, each paired with a rotating chaos family, plus every
    // family alone on the clean hypervisor.
    let mut cells: Vec<(Option<Fault>, Option<ChaosFamily>)> = Fault::ALL
        .iter()
        .enumerate()
        .map(|(i, &f)| (Some(f), Some(families[i % families.len()])))
        .collect();
    cells.extend(families.iter().map(|&fam| (None, Some(fam))));
    for (i, (fault, family)) in cells.into_iter().enumerate() {
        let result = std::panic::catch_unwind(move || {
            let set = FaultSet::none();
            if let Some(f) = fault {
                set.inject(f);
            }
            let mut b = CampaignCfg::builder()
                .workers(2)
                .steps_per_worker(120)
                .base_seed(0xf417 + i as u64)
                .stop_on_violation(false)
                .record_trace(false)
                .faults(&set);
            if let Some(fam) = family {
                b = b.chaos(ChaosCfg::only(fam).reseeded(0xc4a0 + i as u64));
            }
            b.run()
        });
        let report = result.unwrap_or_else(|_| {
            panic!("campaign for {fault:?} + {family:?} panicked out of run()")
        });
        // Worker panics (implementation crashes under injected faults or
        // bit flips) are caught and reported — that is the honest
        // verdict for those cells. What must hold everywhere: the run
        // completed with every worker accounted for, and any panic that
        // did occur came from the implementation, not the oracle.
        assert_eq!(report.workers.len(), 2, "{fault:?} + {family:?}");
        for w in &report.workers {
            if let Some(p) = &w.panicked {
                assert!(
                    !p.contains("oracle") && !p.contains("abstraction"),
                    "{fault:?} + {family:?}: worker panic smells oracle-side: {p}"
                );
            }
        }
    }
}

/// The stale-TLB chaos family perturbs the machine's TLB below the hook
/// stream: broadcast invalidations are delayed or dropped on remote
/// CPUs, but the hypervisor's own downgrade/TLBI/DSB sequence reaches
/// the oracle intact. So whatever the staleness does to behaviour, the
/// break-before-make spec check must never blame the hypervisor for it.
#[test]
fn stale_tlb_chaos_never_fabricates_break_before_make() {
    for seed in 0..8u64 {
        let report = CampaignCfg::builder()
            .workers(2)
            .steps_per_worker(150)
            .base_seed(0x57a1_0000 + seed)
            .stop_on_violation(false)
            .record_trace(false)
            .chaos(ChaosCfg::only(ChaosFamily::StaleTlb).reseeded(0x57a1 + seed))
            .run();
        assert!(
            report
                .violations
                .iter()
                .all(|v| v.kind() != "break-before-make"),
            "seed {seed}: stale-tlb chaos fabricated a break-before-make verdict:\n{:?}",
            report.violations
        );
    }
}

/// The acceptance criterion's replay clause: a violating *chaotic*
/// campaign replays deterministically from its recorded seed and
/// schedule alone — twice, with identical outcomes.
#[test]
fn violating_chaotic_campaign_replays_deterministically() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynShareWrongState);
    let chaos = ChaosCfg::builder()
        .seed(0x0dd5)
        .torn_read_once(0.05)
        .drop_lock_event(0.01)
        .delay_hook(0.02)
        .alloc_chaos(0.05)
        .build();
    let report = CampaignCfg::builder()
        .workers(2)
        .steps_per_worker(400)
        .base_seed(0xb0b1)
        .faults(&faults)
        .chaos(chaos)
        .run();
    assert!(
        !report.is_clean(),
        "injected bug went unnoticed under chaos"
    );
    let trace = report.trace.expect("trace recorded");
    assert_eq!(
        trace.chaos,
        Some(chaos),
        "chaos config travels in the trace"
    );
    let once = replay(&trace);
    let twice = replay(&trace);
    assert!(once.violated(), "replay lost the violation");
    assert_eq!(once.violations.len(), twice.violations.len());
    assert_eq!(once.hyp_panic, twice.hyp_panic);
    assert_eq!(once.steps, twice.steps);
}

/// Per-trap check budgets degrade expensive checking into counted
/// `Unchecked` outcomes: with a tiny budget the campaign stays
/// violation-free on a clean hypervisor, and the degradation is visible
/// in the stats rather than silent.
#[test]
fn tiny_trap_budget_degrades_gracefully_not_wrongly() {
    let opts = OracleOpts::builder().trap_check_budget(1).build();
    let report = CampaignCfg::builder()
        .workers(2)
        .steps_per_worker(200)
        .base_seed(0xb4d6)
        .oracle_opts(opts)
        .record_trace(false)
        .run();
    assert!(
        report.is_clean(),
        "budget degradation caused spurious violations: {}\n{:?}",
        report.render(),
        report.violations
    );
    let r = report.resilience;
    assert!(
        r.budget_degraded_events > 0 || r.degraded_traps > 0,
        "budget of 1 event per trap never degraded anything: {r:?}"
    );
}
