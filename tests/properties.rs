//! Property-based tests over the core data structures and invariants.
//!
//! - the abstract [`Mapping`] agrees with a naive per-page model under
//!   arbitrary insert/remove sequences, and stays canonical;
//! - descriptor encode/decode round-trips for every attribute combination;
//! - the implementation's map walker and the ghost's interpretation
//!   function agree: installing arbitrary page sets and reading them back
//!   through `interpret_pgtable` and through the hardware walk yield the
//!   same extension;
//! - the buddy allocator never double-allocates and conserves pages;
//! - arbitrary well-formed share/unshare interleavings stay clean under
//!   the oracle.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pkvm_repro::aarch64::addr::PAGE_SIZE;
use pkvm_repro::aarch64::attrs::{Attrs, MemType, Perms, Stage};
use pkvm_repro::aarch64::desc::Pte;
use pkvm_repro::aarch64::memory::{MemRegion, PhysMem};
use pkvm_repro::aarch64::{walk as hw_walk, PhysAddr};
use pkvm_repro::ghost::maplet::{AbsAttrs, Maplet, MapletTarget};
use pkvm_repro::ghost::Mapping;
use pkvm_repro::hyp::owner::{OwnerId, PageState};
use pkvm_repro::hyp::pgtable::{
    kvm_pgtable_walk, KvmPgtable, MapWalker, PoolOps, SetOwnerWalker, WalkState,
};
use pkvm_repro::hyp::pool::HypPool;

// ------------------------------------------------------------ mapping --

#[derive(Clone, Debug)]
enum MapOp {
    InsertMapped {
        ia_page: u64,
        nr: u64,
        oa_page: u64,
        perms: u8,
    },
    InsertAnnot {
        ia_page: u64,
        nr: u64,
        owner: u8,
    },
    Remove {
        ia_page: u64,
        nr: u64,
    },
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0u64..64, 1u64..8, 0u64..64, 0u8..4).prop_map(|(ia_page, nr, oa_page, perms)| {
            MapOp::InsertMapped {
                ia_page,
                nr,
                oa_page,
                perms,
            }
        }),
        (0u64..64, 1u64..8, 0u8..4).prop_map(|(ia_page, nr, owner)| MapOp::InsertAnnot {
            ia_page,
            nr,
            owner
        }),
        (0u64..64, 1u64..8).prop_map(|(ia_page, nr)| MapOp::Remove { ia_page, nr }),
    ]
}

fn perms_of(p: u8) -> Perms {
    [Perms::RWX, Perms::RW, Perms::RX, Perms::R][p as usize % 4]
}

proptest! {
    /// The coalescing range map has exactly the semantics of a per-page map.
    #[test]
    fn mapping_matches_per_page_model(ops in proptest::collection::vec(map_op(), 1..60)) {
        let mut mapping = Mapping::new();
        let mut model: BTreeMap<u64, MapletTarget> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::InsertMapped { ia_page, nr, oa_page, perms } => {
                    let attrs = AbsAttrs {
                        perms: perms_of(perms),
                        memtype: MemType::Normal,
                        state: Some(PageState::Owned),
                    };
                    mapping.insert(Maplet {
                        ia: ia_page * PAGE_SIZE,
                        nr_pages: nr,
                        target: MapletTarget::Mapped { oa: oa_page * PAGE_SIZE, attrs },
                    });
                    for i in 0..nr {
                        model.insert(
                            (ia_page + i) * PAGE_SIZE,
                            MapletTarget::Mapped { oa: (oa_page + i) * PAGE_SIZE, attrs },
                        );
                    }
                }
                MapOp::InsertAnnot { ia_page, nr, owner } => {
                    let owner = OwnerId(owner);
                    mapping.insert(Maplet {
                        ia: ia_page * PAGE_SIZE,
                        nr_pages: nr,
                        target: MapletTarget::Annotated { owner },
                    });
                    for i in 0..nr {
                        model.insert((ia_page + i) * PAGE_SIZE, MapletTarget::Annotated { owner });
                    }
                }
                MapOp::Remove { ia_page, nr } => {
                    mapping.remove(ia_page * PAGE_SIZE, nr);
                    for i in 0..nr {
                        model.remove(&((ia_page + i) * PAGE_SIZE));
                    }
                }
            }
            // Canonical-form invariant after every operation.
            mapping.check_canonical().unwrap();
        }
        // Pointwise agreement over the whole exercised window.
        for page in 0..80u64 {
            let ia = page * PAGE_SIZE;
            prop_assert_eq!(mapping.lookup(ia), model.get(&ia).copied(), "page {:#x}", ia);
        }
        prop_assert_eq!(mapping.nr_pages(), model.len() as u64);
    }

    /// Two orders of building the same extension compare equal.
    #[test]
    fn mapping_equality_is_extensional(
        pages in proptest::collection::btree_set(0u64..48, 1..24),
    ) {
        let mut forward = Mapping::new();
        for &p in pages.iter() {
            forward.insert(Maplet {
                ia: p * PAGE_SIZE,
                nr_pages: 1,
                target: MapletTarget::Annotated { owner: OwnerId::HYP },
            });
        }
        let mut backward = Mapping::new();
        for &p in pages.iter().rev() {
            backward.insert(Maplet {
                ia: p * PAGE_SIZE,
                nr_pages: 1,
                target: MapletTarget::Annotated { owner: OwnerId::HYP },
            });
        }
        prop_assert_eq!(&forward, &backward);
        prop_assert!(forward.diff(&backward).is_empty());
    }

    // ------------------------------------------------------ descriptors --

    /// Leaf descriptors round-trip for every stage/level/attribute combo.
    #[test]
    fn pte_leaf_roundtrip(
        stage_s2 in any::<bool>(),
        level in 1u8..=3,
        oa_block in 0u64..512,
        r in any::<bool>(),
        w in any::<bool>(),
        x in any::<bool>(),
        device in any::<bool>(),
        sw in 0u8..3,
    ) {
        let stage = if stage_s2 { Stage::Stage2 } else { Stage::Stage1 };
        let block_size = pkvm_repro::aarch64::addr::level_size(level);
        let oa = PhysAddr::new(oa_block * block_size);
        let perms = if stage == Stage::Stage1 {
            // Stage 1 encodes no read-disable; r is architectural.
            Perms { r: true, w, x }
        } else {
            Perms { r, w, x }
        };
        let attrs = Attrs {
            perms,
            memtype: if device { MemType::Device } else { MemType::Normal },
            sw,
        };
        let pte = Pte::leaf(stage, level, oa, attrs);
        prop_assert_eq!(pte.leaf_oa(level), oa);
        prop_assert_eq!(pte.leaf_attrs(stage), attrs);
    }

    /// Owner annotations round-trip.
    #[test]
    fn annotation_roundtrip(owner in 0u8..32) {
        let pte = pkvm_repro::hyp::owner::annotation_pte(OwnerId(owner));
        prop_assert!(!pte.is_valid());
        prop_assert_eq!(pkvm_repro::hyp::owner::annotation_owner(pte), OwnerId(owner));
    }

    // ------------------------------------ walker vs interpretation ------

    /// Installing arbitrary page mappings through the implementation's
    /// walker and interpreting the table with the ghost's abstraction
    /// function recovers exactly the intended extension — and the
    /// hardware walk agrees pointwise.
    #[test]
    fn walker_and_interpretation_agree(
        entries in proptest::collection::btree_map(0u64..96, (0u64..96, any::<bool>()), 1..32),
    ) {
        let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x800_0000)]);
        let mut pool = HypPool::new(PhysAddr::new(0x4400_0000), 2048);
        let root = pool.alloc_page().unwrap();
        mem.zero_page(root).unwrap();
        let pgt = KvmPgtable { root, stage: Stage::Stage2 };

        let ia_base = 0x4000_0000u64;
        let oa_base = 0x4100_0000u64;
        let mut expected = Mapping::new();
        for (&ia_page, &(oa_page, writable)) in &entries {
            let perms = if writable { Perms::RWX } else { Perms::RX };
            let attrs = Attrs { perms, memtype: MemType::Normal, sw: PageState::Owned.to_sw() };
            let mut mm = PoolOps(&mut pool);
            let mut ws = WalkState::new(&mem, &mut mm);
            let mut w = MapWalker {
                stage: Stage::Stage2,
                phys_base: PhysAddr::new(oa_base + oa_page * PAGE_SIZE),
                ia_base: ia_base + ia_page * PAGE_SIZE,
                attrs,
                force_pages: true,
                corrupt_block_oa: false,
            };
            kvm_pgtable_walk(&pgt, &mut ws, ia_base + ia_page * PAGE_SIZE, PAGE_SIZE, &mut w)
                .unwrap();
            expected.insert(Maplet {
                ia: ia_base + ia_page * PAGE_SIZE,
                nr_pages: 1,
                target: MapletTarget::Mapped {
                    oa: oa_base + oa_page * PAGE_SIZE,
                    attrs: AbsAttrs {
                        perms,
                        memtype: MemType::Normal,
                        state: Some(PageState::Owned),
                    },
                },
            });
        }

        // Ghost interpretation recovers the extension.
        let mut anomalies = Vec::new();
        let abs = pkvm_repro::ghost::interpret_pgtable(&mem, Stage::Stage2, root, &mut anomalies);
        prop_assert!(anomalies.is_empty(), "{:?}", anomalies);
        prop_assert_eq!(&abs.mapping, &expected);

        // The hardware walk agrees pointwise with the abstract mapping.
        for page in 0..100u64 {
            let ia = ia_base + page * PAGE_SIZE;
            let hw = hw_walk::walk(&mem, Stage::Stage2, root, ia).ok().map(|t| t.oa.bits());
            let abstract_oa = expected.lookup(ia).map(|t| match t {
                MapletTarget::Mapped { oa, .. } => oa,
                MapletTarget::Annotated { .. } => unreachable!(),
            });
            prop_assert_eq!(hw, abstract_oa, "ia {:#x}", ia);
        }
    }

    /// Unmapping (annotating) arbitrary sub-ranges of a block-mapped
    /// region preserves the complement exactly.
    #[test]
    fn block_split_preserves_complement(
        holes in proptest::collection::btree_set(0u64..512, 1..20),
    ) {
        let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x800_0000)]);
        let mut pool = HypPool::new(PhysAddr::new(0x4400_0000), 2048);
        let root = pool.alloc_page().unwrap();
        mem.zero_page(root).unwrap();
        let pgt = KvmPgtable { root, stage: Stage::Stage2 };
        let base = 0x4020_0000u64; // one 2 MiB block
        let attrs = Attrs::normal(Perms::RWX).with_sw(PageState::Owned.to_sw());
        {
            let mut mm = PoolOps(&mut pool);
            let mut ws = WalkState::new(&mem, &mut mm);
            let mut w = MapWalker {
                stage: Stage::Stage2,
                phys_base: PhysAddr::new(base),
                ia_base: base,
                attrs,
                force_pages: false,
                corrupt_block_oa: false,
            };
            kvm_pgtable_walk(&pgt, &mut ws, base, 512 * PAGE_SIZE, &mut w).unwrap();
        }
        for &h in &holes {
            let mut mm = PoolOps(&mut pool);
            let mut ws = WalkState::new(&mem, &mut mm);
            let mut v = SetOwnerWalker {
                stage: Stage::Stage2,
                annotation: pkvm_repro::hyp::owner::annotation_pte(OwnerId::HYP),
            };
            kvm_pgtable_walk(&pgt, &mut ws, base + h * PAGE_SIZE, PAGE_SIZE, &mut v).unwrap();
        }
        for page in 0..512u64 {
            let ia = base + page * PAGE_SIZE;
            let tr = hw_walk::walk(&mem, Stage::Stage2, root, ia);
            if holes.contains(&page) {
                prop_assert!(tr.is_err(), "hole {:#x} still mapped", ia);
            } else {
                prop_assert_eq!(tr.unwrap().oa, PhysAddr::new(ia), "page {:#x} damaged", ia);
            }
        }
    }

    // ------------------------------------------------------- allocator --

    /// The buddy allocator conserves pages and never hands out
    /// overlapping blocks.
    #[test]
    fn buddy_allocator_invariants(ops in proptest::collection::vec((0u8..4, any::<bool>()), 1..100)) {
        let mut pool = HypPool::new(PhysAddr::new(0x4400_0000), 512);
        let mut live: Vec<(PhysAddr, u8)> = Vec::new();
        for (order, free_instead) in ops {
            if free_instead && !live.is_empty() {
                let (pa, _) = live.swap_remove(0);
                pool.put_page(pa);
            } else if let Ok(pa) = pool.alloc_pages(order) {
                // No overlap with any live block.
                for &(other, oorder) in &live {
                    let a = (pa.pfn(), pa.pfn() + (1 << order));
                    let b = (other.pfn(), other.pfn() + (1 << oorder));
                    prop_assert!(a.1 <= b.0 || b.1 <= a.0, "overlap {:?} {:?}", a, b);
                }
                // Natural alignment.
                prop_assert_eq!(pa.pfn() % (1 << order), 0);
                live.push((pa, order));
            }
            let live_pages: u64 = live.iter().map(|&(_, o)| 1u64 << o).sum();
            prop_assert_eq!(pool.free_pages() + live_pages, 512);
        }
        for (pa, _) in live {
            pool.put_page(pa);
        }
        prop_assert_eq!(pool.free_pages(), 512);
    }
}

// --------------------------------------------- oracle under randomness --

/// Abstract VM-lifecycle operations for the property below.
#[derive(Clone, Debug)]
enum VmOp {
    Load(usize),
    Put(usize),
    Topup(usize),
    MapGuest(usize),
    GuestWrite(usize),
}

fn vm_op() -> impl Strategy<Value = VmOp> {
    prop_oneof![
        (0usize..2).prop_map(VmOp::Load),
        (0usize..2).prop_map(VmOp::Put),
        (0usize..2).prop_map(VmOp::Topup),
        (0usize..2).prop_map(VmOp::MapGuest),
        (0usize..2).prop_map(VmOp::GuestWrite),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary VM-lifecycle interleavings over two CPUs: every call
    /// either succeeds or fails with the model-predicted error, and the
    /// oracle stays clean throughout.
    #[test]
    fn vm_lifecycle_sequences_stay_clean(ops in proptest::collection::vec(vm_op(), 1..30)) {
        use pkvm_repro::harness::proxy::{Proxy, ProxyOpts};
        use pkvm_repro::hyp::vm::GuestOp;
        let p = Proxy::boot(ProxyOpts::default());
        let h = p.init_vm(0, 1, true).unwrap();
        p.init_vcpu(0, h, 0).unwrap();
        // Model: which cpu (if any) holds the single vCPU, its memcache
        // estimate, and the next fresh gfn.
        let mut held: Option<usize> = None;
        let mut memcache = 0u64;
        let mut gfn = 0x10u64;
        for op in ops {
            match op {
                VmOp::Load(cpu) => {
                    let r = p.vcpu_load(cpu, h, 0);
                    prop_assert_eq!(r.is_ok(), held.is_none(), "load on cpu{}", cpu);
                    if r.is_ok() {
                        held = Some(cpu);
                    }
                }
                VmOp::Put(cpu) => {
                    let r = p.vcpu_put(cpu);
                    prop_assert_eq!(r.is_ok(), held == Some(cpu));
                    if r.is_ok() {
                        held = None;
                    }
                }
                VmOp::Topup(cpu) => {
                    let r = p.topup(cpu, 4);
                    prop_assert_eq!(r.is_ok(), held == Some(cpu));
                    if r.is_ok() {
                        memcache += 4;
                    }
                }
                VmOp::MapGuest(cpu) => {
                    let r = p.map_guest(cpu, gfn);
                    if held == Some(cpu) && memcache >= 3 {
                        prop_assert!(r.is_ok(), "map_guest: {:?}", r);
                        gfn += 1;
                        memcache = memcache.saturating_sub(3);
                    } else if held != Some(cpu) {
                        prop_assert!(r.is_err());
                    } else if r.is_ok() {
                        // Fewer tables were needed than the conservative
                        // estimate; account for the page.
                        gfn += 1;
                    }
                }
                VmOp::GuestWrite(cpu) => {
                    if held == Some(cpu) && gfn > 0x10 {
                        p.push_guest_op(h, 0, GuestOp::Write(0x10 * PAGE_SIZE, 1)).unwrap();
                        let exit = p.vcpu_run(cpu).unwrap();
                        prop_assert_eq!(exit, pkvm_repro::hyp::hypercalls::exit::CONTINUE);
                    }
                }
            }
        }
        prop_assert!(p.all_clear(), "{:?}", p.violations());
    }

    /// Arbitrary well-formed share/unshare interleavings stay clean under
    /// the oracle (a property-based slice of the random tester).
    #[test]
    fn share_sequences_stay_clean(ops in proptest::collection::vec((0u64..24, any::<bool>()), 1..40)) {
        use pkvm_repro::harness::proxy::{Proxy, ProxyOpts};
        let p = Proxy::boot(ProxyOpts::default());
        let base = p.alloc_pages(24);
        let mut shared = [false; 24];
        for (page, do_share) in ops {
            let pfn = base + page;
            if do_share {
                let r = p.share(0, pfn);
                prop_assert_eq!(r.is_ok(), !shared[page as usize]);
                shared[page as usize] = true;
            } else {
                let r = p.unshare(0, pfn);
                prop_assert_eq!(r.is_ok(), shared[page as usize]);
                shared[page as usize] = false;
            }
        }
        prop_assert!(p.all_clear(), "{:?}", p.violations());
    }
}
