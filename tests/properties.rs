//! Property-based tests over the core data structures and invariants.
//!
//! Driven by the in-tree deterministic [`Rng`] (no external property
//! framework in the hermetic build): each property runs many randomized
//! cases from fixed seeds, so failures are reproducible from the seed
//! printed in the assertion message.
//!
//! - the abstract [`Mapping`] agrees with a naive per-page model under
//!   arbitrary insert/remove sequences, and stays canonical;
//! - descriptor encode/decode round-trips for every attribute combination;
//! - the implementation's map walker and the ghost's interpretation
//!   function agree: installing arbitrary page sets and reading them back
//!   through `interpret_pgtable` and through the hardware walk yield the
//!   same extension;
//! - the buddy allocator never double-allocates and conserves pages;
//! - arbitrary well-formed share/unshare interleavings stay clean under
//!   the oracle.

use std::collections::{BTreeMap, BTreeSet};

use pkvm_repro::aarch64::addr::PAGE_SIZE;
use pkvm_repro::aarch64::attrs::{Attrs, MemType, Perms, Stage};
use pkvm_repro::aarch64::desc::Pte;
use pkvm_repro::aarch64::memory::{MemRegion, PhysMem};
use pkvm_repro::aarch64::{walk as hw_walk, PhysAddr};
use pkvm_repro::ghost::maplet::{AbsAttrs, Maplet, MapletTarget};
use pkvm_repro::ghost::Mapping;
use pkvm_repro::harness::rng::Rng;
use pkvm_repro::hyp::owner::{OwnerId, PageState};
use pkvm_repro::hyp::pgtable::{
    kvm_pgtable_walk, KvmPgtable, MapWalker, PoolOps, SetOwnerWalker, WalkState,
};
use pkvm_repro::hyp::pool::HypPool;

// ------------------------------------------------------------ mapping --

#[derive(Clone, Debug)]
enum MapOp {
    InsertMapped {
        ia_page: u64,
        nr: u64,
        oa_page: u64,
        perms: u8,
    },
    InsertAnnot {
        ia_page: u64,
        nr: u64,
        owner: u8,
    },
    Remove {
        ia_page: u64,
        nr: u64,
    },
}

fn map_op(rng: &mut Rng) -> MapOp {
    match rng.gen_range(0..3u32) {
        0 => MapOp::InsertMapped {
            ia_page: rng.gen_range(0..64u64),
            nr: rng.gen_range(1..8u64),
            oa_page: rng.gen_range(0..64u64),
            perms: rng.gen_range(0..4u64) as u8,
        },
        1 => MapOp::InsertAnnot {
            ia_page: rng.gen_range(0..64u64),
            nr: rng.gen_range(1..8u64),
            owner: rng.gen_range(0..4u64) as u8,
        },
        _ => MapOp::Remove {
            ia_page: rng.gen_range(0..64u64),
            nr: rng.gen_range(1..8u64),
        },
    }
}

fn perms_of(p: u8) -> Perms {
    [Perms::RWX, Perms::RW, Perms::RX, Perms::R][p as usize % 4]
}

/// The coalescing range map has exactly the semantics of a per-page map.
#[test]
fn mapping_matches_per_page_model() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nr_ops = rng.gen_range(1..60usize);
        let mut mapping = Mapping::new();
        let mut model: BTreeMap<u64, MapletTarget> = BTreeMap::new();
        for _ in 0..nr_ops {
            match map_op(&mut rng) {
                MapOp::InsertMapped {
                    ia_page,
                    nr,
                    oa_page,
                    perms,
                } => {
                    let attrs = AbsAttrs {
                        perms: perms_of(perms),
                        memtype: MemType::Normal,
                        state: Some(PageState::Owned),
                    };
                    mapping.insert(Maplet {
                        ia: ia_page * PAGE_SIZE,
                        nr_pages: nr,
                        target: MapletTarget::Mapped {
                            oa: oa_page * PAGE_SIZE,
                            attrs,
                        },
                    });
                    for i in 0..nr {
                        model.insert(
                            (ia_page + i) * PAGE_SIZE,
                            MapletTarget::Mapped {
                                oa: (oa_page + i) * PAGE_SIZE,
                                attrs,
                            },
                        );
                    }
                }
                MapOp::InsertAnnot { ia_page, nr, owner } => {
                    let owner = OwnerId(owner);
                    mapping.insert(Maplet {
                        ia: ia_page * PAGE_SIZE,
                        nr_pages: nr,
                        target: MapletTarget::Annotated { owner },
                    });
                    for i in 0..nr {
                        model.insert((ia_page + i) * PAGE_SIZE, MapletTarget::Annotated { owner });
                    }
                }
                MapOp::Remove { ia_page, nr } => {
                    mapping.remove(ia_page * PAGE_SIZE, nr);
                    for i in 0..nr {
                        model.remove(&((ia_page + i) * PAGE_SIZE));
                    }
                }
            }
            // Canonical-form invariant after every operation.
            mapping.check_canonical().unwrap();
        }
        // Pointwise agreement over the whole exercised window.
        for page in 0..80u64 {
            let ia = page * PAGE_SIZE;
            assert_eq!(
                mapping.lookup(ia),
                model.get(&ia).copied(),
                "seed {seed}, page {ia:#x}"
            );
        }
        assert_eq!(mapping.nr_pages(), model.len() as u64, "seed {seed}");
    }
}

/// Two orders of building the same extension compare equal.
#[test]
fn mapping_equality_is_extensional() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nr = rng.gen_range(1..24usize);
        let mut pages = BTreeSet::new();
        for _ in 0..nr {
            pages.insert(rng.gen_range(0..48u64));
        }
        let mut forward = Mapping::new();
        for &p in pages.iter() {
            forward.insert(Maplet {
                ia: p * PAGE_SIZE,
                nr_pages: 1,
                target: MapletTarget::Annotated {
                    owner: OwnerId::HYP,
                },
            });
        }
        let mut backward = Mapping::new();
        for &p in pages.iter().rev() {
            backward.insert(Maplet {
                ia: p * PAGE_SIZE,
                nr_pages: 1,
                target: MapletTarget::Annotated {
                    owner: OwnerId::HYP,
                },
            });
        }
        assert_eq!(&forward, &backward, "seed {seed}");
        assert!(forward.diff(&backward).is_empty(), "seed {seed}");
    }
}

// ------------------------------------------------------ descriptors --

/// Leaf descriptors round-trip for every stage/level/attribute combo.
#[test]
fn pte_leaf_roundtrip() {
    for seed in 0..256u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let stage = if rng.gen_bool(0.5) {
            Stage::Stage2
        } else {
            Stage::Stage1
        };
        let level = rng.gen_range(1..=3u64) as u8;
        let block_size = pkvm_repro::aarch64::addr::level_size(level);
        let oa = PhysAddr::new(rng.gen_range(0..512u64) * block_size);
        let (r, w, x) = (rng.gen_bool(0.5), rng.gen_bool(0.5), rng.gen_bool(0.5));
        let perms = if stage == Stage::Stage1 {
            // Stage 1 encodes no read-disable; r is architectural.
            Perms { r: true, w, x }
        } else {
            Perms { r, w, x }
        };
        let attrs = Attrs {
            perms,
            memtype: if rng.gen_bool(0.5) {
                MemType::Device
            } else {
                MemType::Normal
            },
            sw: rng.gen_range(0..3u64) as u8,
        };
        let pte = Pte::leaf(stage, level, oa, attrs);
        assert_eq!(pte.leaf_oa(level), oa, "seed {seed}");
        assert_eq!(pte.leaf_attrs(stage), attrs, "seed {seed}");
    }
}

/// Owner annotations round-trip.
#[test]
fn annotation_roundtrip() {
    for owner in 0u8..32 {
        let pte = pkvm_repro::hyp::owner::annotation_pte(OwnerId(owner));
        assert!(!pte.is_valid());
        assert_eq!(
            pkvm_repro::hyp::owner::annotation_owner(pte),
            OwnerId(owner)
        );
    }
}

// ------------------------------------ walker vs interpretation ------

/// Installing arbitrary page mappings through the implementation's
/// walker and interpreting the table with the ghost's abstraction
/// function recovers exactly the intended extension — and the
/// hardware walk agrees pointwise.
#[test]
fn walker_and_interpretation_agree() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nr = rng.gen_range(1..32usize);
        let mut entries: BTreeMap<u64, (u64, bool)> = BTreeMap::new();
        for _ in 0..nr {
            entries.insert(
                rng.gen_range(0..96u64),
                (rng.gen_range(0..96u64), rng.gen_bool(0.5)),
            );
        }
        let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x800_0000)]);
        let mut pool = HypPool::new(PhysAddr::new(0x4400_0000), 2048);
        let root = pool.alloc_page().unwrap();
        mem.zero_page(root).unwrap();
        let pgt = KvmPgtable {
            root,
            stage: Stage::Stage2,
        };

        let ia_base = 0x4000_0000u64;
        let oa_base = 0x4100_0000u64;
        let mut expected = Mapping::new();
        for (&ia_page, &(oa_page, writable)) in &entries {
            let perms = if writable { Perms::RWX } else { Perms::RX };
            let attrs = Attrs {
                perms,
                memtype: MemType::Normal,
                sw: PageState::Owned.to_sw(),
            };
            let mut mm = PoolOps(&mut pool);
            let mut ws = WalkState::new(&mem, &mut mm);
            let mut w = MapWalker {
                stage: Stage::Stage2,
                phys_base: PhysAddr::new(oa_base + oa_page * PAGE_SIZE),
                ia_base: ia_base + ia_page * PAGE_SIZE,
                attrs,
                force_pages: true,
                corrupt_block_oa: false,
            };
            kvm_pgtable_walk(
                &pgt,
                &mut ws,
                ia_base + ia_page * PAGE_SIZE,
                PAGE_SIZE,
                &mut w,
            )
            .unwrap();
            expected.insert(Maplet {
                ia: ia_base + ia_page * PAGE_SIZE,
                nr_pages: 1,
                target: MapletTarget::Mapped {
                    oa: oa_base + oa_page * PAGE_SIZE,
                    attrs: AbsAttrs {
                        perms,
                        memtype: MemType::Normal,
                        state: Some(PageState::Owned),
                    },
                },
            });
        }

        // Ghost interpretation recovers the extension.
        let mut anomalies = Vec::new();
        let abs = pkvm_repro::ghost::interpret_pgtable(&mem, Stage::Stage2, root, &mut anomalies);
        assert!(anomalies.is_empty(), "seed {seed}: {anomalies:?}");
        assert_eq!(&abs.mapping, &expected, "seed {seed}");

        // The hardware walk agrees pointwise with the abstract mapping.
        for page in 0..100u64 {
            let ia = ia_base + page * PAGE_SIZE;
            let hw = hw_walk::walk(&mem, Stage::Stage2, root, ia)
                .ok()
                .map(|t| t.oa.bits());
            let abstract_oa = expected.lookup(ia).map(|t| match t {
                MapletTarget::Mapped { oa, .. } => oa,
                MapletTarget::Annotated { .. } => unreachable!(),
            });
            assert_eq!(hw, abstract_oa, "seed {seed}, ia {ia:#x}");
        }
    }
}

/// Unmapping (annotating) arbitrary sub-ranges of a block-mapped
/// region preserves the complement exactly.
#[test]
fn block_split_preserves_complement() {
    for seed in 0..16u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nr = rng.gen_range(1..20usize);
        let mut holes = BTreeSet::new();
        for _ in 0..nr {
            holes.insert(rng.gen_range(0..512u64));
        }
        let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x800_0000)]);
        let mut pool = HypPool::new(PhysAddr::new(0x4400_0000), 2048);
        let root = pool.alloc_page().unwrap();
        mem.zero_page(root).unwrap();
        let pgt = KvmPgtable {
            root,
            stage: Stage::Stage2,
        };
        let base = 0x4020_0000u64; // one 2 MiB block
        let attrs = Attrs::normal(Perms::RWX).with_sw(PageState::Owned.to_sw());
        {
            let mut mm = PoolOps(&mut pool);
            let mut ws = WalkState::new(&mem, &mut mm);
            let mut w = MapWalker {
                stage: Stage::Stage2,
                phys_base: PhysAddr::new(base),
                ia_base: base,
                attrs,
                force_pages: false,
                corrupt_block_oa: false,
            };
            kvm_pgtable_walk(&pgt, &mut ws, base, 512 * PAGE_SIZE, &mut w).unwrap();
        }
        for &h in &holes {
            let mut mm = PoolOps(&mut pool);
            let mut ws = WalkState::new(&mem, &mut mm);
            let mut v = SetOwnerWalker {
                stage: Stage::Stage2,
                annotation: pkvm_repro::hyp::owner::annotation_pte(OwnerId::HYP),
            };
            kvm_pgtable_walk(&pgt, &mut ws, base + h * PAGE_SIZE, PAGE_SIZE, &mut v).unwrap();
        }
        for page in 0..512u64 {
            let ia = base + page * PAGE_SIZE;
            let tr = hw_walk::walk(&mem, Stage::Stage2, root, ia);
            if holes.contains(&page) {
                assert!(tr.is_err(), "seed {seed}: hole {ia:#x} still mapped");
            } else {
                assert_eq!(
                    tr.unwrap().oa,
                    PhysAddr::new(ia),
                    "seed {seed}: page {ia:#x} damaged"
                );
            }
        }
    }
}

// ------------------------------------------------------- allocator --

/// The buddy allocator conserves pages and never hands out
/// overlapping blocks.
#[test]
fn buddy_allocator_invariants() {
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nr_ops = rng.gen_range(1..100usize);
        let mut pool = HypPool::new(PhysAddr::new(0x4400_0000), 512);
        let mut live: Vec<(PhysAddr, u8)> = Vec::new();
        for _ in 0..nr_ops {
            let order = rng.gen_range(0..4u64) as u8;
            let free_instead = rng.gen_bool(0.5);
            if free_instead && !live.is_empty() {
                let (pa, _) = live.swap_remove(0);
                pool.put_page(pa);
            } else if let Ok(pa) = pool.alloc_pages(order) {
                // No overlap with any live block.
                for &(other, oorder) in &live {
                    let a = (pa.pfn(), pa.pfn() + (1 << order));
                    let b = (other.pfn(), other.pfn() + (1 << oorder));
                    assert!(a.1 <= b.0 || b.1 <= a.0, "seed {seed}: overlap {a:?} {b:?}");
                }
                // Natural alignment.
                assert_eq!(pa.pfn() % (1 << order), 0, "seed {seed}");
                live.push((pa, order));
            }
            let live_pages: u64 = live.iter().map(|&(_, o)| 1u64 << o).sum();
            assert_eq!(pool.free_pages() + live_pages, 512, "seed {seed}");
        }
        for (pa, _) in live {
            pool.put_page(pa);
        }
        assert_eq!(pool.free_pages(), 512, "seed {seed}");
    }
}

// --------------------------------------------- oracle under randomness --

/// Abstract VM-lifecycle operations for the property below.
#[derive(Clone, Debug)]
enum VmOp {
    Load(usize),
    Put(usize),
    Topup(usize),
    MapGuest(usize),
    GuestWrite(usize),
}

fn vm_op(rng: &mut Rng) -> VmOp {
    let cpu = rng.gen_range(0..2usize);
    match rng.gen_range(0..5u32) {
        0 => VmOp::Load(cpu),
        1 => VmOp::Put(cpu),
        2 => VmOp::Topup(cpu),
        3 => VmOp::MapGuest(cpu),
        _ => VmOp::GuestWrite(cpu),
    }
}

/// Arbitrary VM-lifecycle interleavings over two CPUs: every call
/// either succeeds or fails with the model-predicted error, and the
/// oracle stays clean throughout.
#[test]
fn vm_lifecycle_sequences_stay_clean() {
    use pkvm_repro::harness::proxy::Proxy;
    use pkvm_repro::hyp::vm::GuestOp;
    for seed in 0..12u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nr_ops = rng.gen_range(1..30usize);
        let p = Proxy::builder().boot();
        let h = p.init_vm(0, 1, true).unwrap();
        p.init_vcpu(0, h, 0).unwrap();
        // Model: which cpu (if any) holds the single vCPU, its memcache
        // estimate, and the next fresh gfn.
        let mut held: Option<usize> = None;
        let mut memcache = 0u64;
        let mut gfn = 0x10u64;
        for _ in 0..nr_ops {
            match vm_op(&mut rng) {
                VmOp::Load(cpu) => {
                    let r = p.vcpu_load(cpu, h, 0);
                    assert_eq!(r.is_ok(), held.is_none(), "seed {seed}: load on cpu{cpu}");
                    if r.is_ok() {
                        held = Some(cpu);
                    }
                }
                VmOp::Put(cpu) => {
                    let r = p.vcpu_put(cpu);
                    assert_eq!(r.is_ok(), held == Some(cpu), "seed {seed}");
                    if r.is_ok() {
                        held = None;
                    }
                }
                VmOp::Topup(cpu) => {
                    let r = p.topup(cpu, 4);
                    assert_eq!(r.is_ok(), held == Some(cpu), "seed {seed}");
                    if r.is_ok() {
                        memcache += 4;
                    }
                }
                VmOp::MapGuest(cpu) => {
                    let r = p.map_guest(cpu, gfn);
                    if held == Some(cpu) && memcache >= 3 {
                        assert!(r.is_ok(), "seed {seed}: map_guest: {r:?}");
                        gfn += 1;
                        memcache = memcache.saturating_sub(3);
                    } else if held != Some(cpu) {
                        assert!(r.is_err(), "seed {seed}");
                    } else if r.is_ok() {
                        // Fewer tables were needed than the conservative
                        // estimate; account for the page.
                        gfn += 1;
                    }
                }
                VmOp::GuestWrite(cpu) => {
                    if held == Some(cpu) && gfn > 0x10 {
                        p.push_guest_op(h, 0, GuestOp::Write(0x10 * PAGE_SIZE, 1))
                            .unwrap();
                        let exit = p.vcpu_run(cpu).unwrap();
                        assert_eq!(
                            exit,
                            pkvm_repro::hyp::hypercalls::exit::CONTINUE,
                            "seed {seed}"
                        );
                    }
                }
            }
        }
        assert!(p.all_clear(), "seed {seed}: {:?}", p.violations());
    }
}

/// The incremental abstraction is extensionally equal to the full walk:
/// randomized hypercall sequences run with shadow validation on, so every
/// lock event computes both and any divergence is reported as a
/// [`ShadowDivergence`](pkvm_repro::prelude::Violation::ShadowDivergence)
/// violation — of which there must be none, while the cache must actually
/// serve (otherwise the property is vacuous).
#[test]
fn incremental_abstraction_matches_full_walk() {
    use pkvm_repro::harness::proxy::Proxy;
    use pkvm_repro::harness::random::{RandomCfg, RandomTester};
    use pkvm_repro::prelude::*;
    for seed in [5u64, 11, 23] {
        let proxy = Proxy::builder()
            .oracle_opts(OracleOpts::builder().shadow_validation(true).build())
            .boot();
        let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(seed).build());
        t.run(800);
        let oracle = t.proxy.oracle.as_ref().expect("oracle installed");
        let divergences: Vec<_> = oracle
            .violations()
            .into_iter()
            .filter(|v| matches!(v, Violation::ShadowDivergence { .. }))
            .collect();
        assert!(divergences.is_empty(), "seed {seed}:\n{divergences:#?}");
        assert!(
            t.proxy.all_clear(),
            "seed {seed}: {:?}",
            t.proxy.violations()
        );
        let stats = oracle.cache_stats();
        assert!(
            stats.clean_hits + stats.incremental > 0,
            "seed {seed}: cache never served a request: {stats:?}"
        );
    }
}

/// Arbitrary well-formed share/unshare interleavings stay clean under
/// the oracle (a property-based slice of the random tester).
#[test]
fn share_sequences_stay_clean() {
    use pkvm_repro::harness::proxy::Proxy;
    for seed in 0..16u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let nr_ops = rng.gen_range(1..40usize);
        let p = Proxy::builder().boot();
        let base = p.alloc_pages(24);
        let mut shared = [false; 24];
        for _ in 0..nr_ops {
            let page = rng.gen_range(0..24u64);
            let do_share = rng.gen_bool(0.5);
            let pfn = base + page;
            if do_share {
                let r = p.share(0, pfn);
                assert_eq!(r.is_ok(), !shared[page as usize], "seed {seed}");
                shared[page as usize] = true;
            } else {
                let r = p.unshare(0, pfn);
                assert_eq!(r.is_ok(), shared[page as usize], "seed {seed}");
                shared[page as usize] = false;
            }
        }
        assert!(p.all_clear(), "seed {seed}: {:?}", p.violations());
    }
}
