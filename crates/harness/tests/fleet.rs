//! Fleet failure-mode tests: every scenario here is a way the fleet is
//! supposed to *break* — a worker killed mid-write, a wedged process, a
//! deterministic crasher, a corrupt peer seed — and the assertion is
//! always the same: the rest of the fleet neither dies nor loses
//! admitted coverage. The worker and merge machinery is driven
//! in-process (the coordinator/worker split is a directory protocol, so
//! the processes are interchangeable with function calls); full
//! multi-process supervision is exercised by the `fleet gate` in ci.sh.

use std::path::{Path, PathBuf};

use pkvm_harness::fleet::{
    inject_torn_seed, redistribute_shards, Action, Assignment, FleetDirs, FleetStats, Heartbeat,
    MergeState, SupervisionCfg, Supervisor, Worker, WorkerCfg,
};
use pkvm_harness::fuzz;

/// A fresh fleet root under the system temp dir, with config and
/// per-worker assignments in place.
fn fresh_fleet(tag: &str, workers: usize, seed: u64) -> (PathBuf, FleetDirs) {
    let root = std::env::temp_dir().join(format!("pkvm-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dirs = FleetDirs::new(&root);
    dirs.create_all(workers).expect("fleet tree");
    WorkerCfg {
        seed,
        round_steps: 200,
        bootstrap_inputs: 2,
        bootstrap_len: 40,
        ..WorkerCfg::default()
    }
    .write(&dirs.config_file())
    .expect("fleet config");
    for w in 0..workers {
        Assignment {
            shards: vec![w as u64],
        }
        .write(&dirs.assign_file(w))
        .expect("assignment");
    }
    (root, dirs)
}

fn seed_files(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|e| e.filter_map(|e| e.ok()).count())
        .unwrap_or(0)
}

/// A worker killed between `write` and `rename` leaves a torn seed file
/// (simulated by the chaos injector, which writes exactly that shape).
/// The merge must skip-and-count it, merge everything decodable, and
/// produce a merged corpus whose replay digest is bit-identical no
/// matter which merge incarnation built it.
#[test]
fn kill_during_sync_merges_bit_identically() {
    let (root, dirs) = fresh_fleet("torn-merge", 2, 0x51ee1);

    // Worker 0 fuzzes two rounds and then "dies mid-write".
    let mut w0 = Worker::attach(&root, 0).expect("attach");
    w0.round();
    w0.round();
    let admitted = seed_files(&dirs.corpus_dir(0));
    assert!(admitted > 0, "rounds admitted nothing");
    inject_torn_seed(&dirs.corpus_dir(0), "seed-000099.pkvmtrace").unwrap();

    // First coordinator incarnation merges; the torn file is a counted
    // skip, never an error.
    let mut m1 = MergeState::new(&dirs.merged_dir());
    let added = m1.merge_once(&dirs, &[0, 1]);
    assert_eq!(added, admitted as u64, "decodable seeds all merged");
    assert_eq!(m1.merge_skips, 1, "torn seed skip-counted once");
    let (n1, d1) = fuzz::replay_digest(&dirs.merged_dir());
    assert_eq!(n1 as u64, added);

    // A second, fresh merge incarnation (the restarted-coordinator
    // case) re-merges nothing and replays the identical digest.
    let mut m2 = MergeState::new(&dirs.merged_dir());
    assert_eq!(m2.merge_once(&dirs, &[0, 1]), 0, "content-hash dedup");
    assert_eq!(fuzz::replay_digest(&dirs.merged_dir()), (n1, d1));

    let _ = std::fs::remove_dir_all(&root);
}

/// Pull-sync must validate before copying: a corrupt file in the merged
/// corpus (a bad peer seed) is skipped and counted by the importer, and
/// everything decodable still arrives.
#[test]
fn corrupt_peer_seed_is_skipped_not_fatal() {
    let (root, dirs) = fresh_fleet("bad-peer", 2, 0xbad5eed);

    let mut w0 = Worker::attach(&root, 0).expect("attach");
    w0.round();
    let mut merge = MergeState::new(&dirs.merged_dir());
    let merged = merge.merge_once(&dirs, &[0]);
    assert!(merged > 0);
    inject_torn_seed(&dirs.merged_dir(), "seed-999999.pkvmtrace").unwrap();

    let mut w1 = Worker::attach(&root, 1).expect("attach");
    w1.pull_sync();
    assert_eq!(w1.heartbeat().import_skips, 1, "bad peer seed counted");
    let imported = std::fs::read_dir(dirs.corpus_dir(1))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("seed-m"))
        })
        .count();
    assert_eq!(imported as u64, merged, "good peer seeds all imported");
    // Re-syncing neither re-imports nor re-counts.
    w1.pull_sync();
    assert_eq!(w1.heartbeat().import_skips, 1);

    // The worker still fuzzes a full round on top of the imports.
    w1.round();
    assert!(w1.heartbeat().execs > 0);

    let _ = std::fs::remove_dir_all(&root);
}

/// Worker restart continuity: a respawned worker restores its
/// predecessor's cumulative heartbeat, so fleet totals never move
/// backwards across a crash.
#[test]
fn heartbeat_counters_survive_worker_restarts() {
    let (root, dirs) = fresh_fleet("restart", 1, 0x4eb007);

    let mut w = Worker::attach(&root, 0).expect("attach");
    w.round();
    let (rounds1, execs1) = (w.heartbeat().rounds, w.heartbeat().execs);
    assert!(rounds1 == 1 && execs1 > 0);
    drop(w); // the process dies

    let mut w = Worker::attach(&root, 0).expect("re-attach");
    assert_eq!(w.heartbeat().rounds, rounds1, "counters restored");
    w.round();
    assert_eq!(w.heartbeat().rounds, rounds1 + 1);
    assert!(w.heartbeat().execs > execs1, "totals only grow");
    let on_disk = Heartbeat::read(&dirs.heartbeat_file(0)).expect("heartbeat file");
    assert_eq!(&on_disk, w.heartbeat());

    let _ = std::fs::remove_dir_all(&root);
}

/// The full supervision path for a deterministic crasher, on a mocked
/// clock: exits with no progress burn the restart budget through
/// deterministic jittered backoffs, the worker is quarantined, and its
/// shards land on the survivor's assignment.
#[test]
fn deterministic_crasher_quarantines_and_its_shards_move() {
    let (root, dirs) = fresh_fleet("quarantine", 2, 0x0dd);
    let cfg = SupervisionCfg {
        wedge_deadline_ms: 5_000,
        backoff_base_ms: 100,
        backoff_cap_ms: 1_000,
        restart_budget: 2,
        jitter_seed: 7,
    };

    // Two identical supervisors fed the same schedule take identical
    // trajectories (the backoff jitter is seeded, not wall-clock).
    let run = || {
        let mut sup = Supervisor::new(2, cfg.clone(), 0);
        let mut now = 0;
        let mut trail = Vec::new();
        loop {
            match sup.process_exited(0, now) {
                Some(a) => {
                    trail.push((now, a));
                    break;
                }
                None => trail.push((now, Action::Respawn(0))),
            }
            let until = sup.backoff_until(0);
            assert!(sup.tick(until - 1).is_empty(), "respawned early");
            assert_eq!(sup.tick(until), vec![Action::Respawn(0)]);
            now = until;
            // Worker 1 keeps heartbeating: it must never be dragged
            // into worker 0's punishment.
            sup.heartbeat(1, now, now);
        }
        (trail, sup.active())
    };
    let (trail, active) = run();
    assert_eq!(run().0, trail, "supervision is deterministic");
    assert_eq!(trail.last().unwrap().1, Action::Quarantine(0));
    assert_eq!(trail.len() as u32, cfg.restart_budget + 1);
    assert_eq!(active, vec![1]);

    // The coordinator's follow-up: worker 0's shards move to worker 1.
    let before = Assignment::read(&dirs.assign_file(0)).unwrap().shards;
    assert_eq!(before, vec![0]);
    redistribute_shards(&dirs, 0, &[1]);
    assert!(Assignment::read(&dirs.assign_file(0))
        .unwrap()
        .shards
        .is_empty());
    let survivor = Assignment::read(&dirs.assign_file(1)).unwrap().shards;
    assert!(
        survivor.contains(&0) && survivor.contains(&1),
        "{survivor:?}"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// A wedged worker — heartbeats present but the rounds counter frozen —
/// is detected on the coordinator's clock, killed exactly once, and the
/// respawn restarts the deadline.
#[test]
fn wedged_worker_is_killed_on_the_coordinator_clock() {
    let cfg = SupervisionCfg {
        wedge_deadline_ms: 1_000,
        backoff_base_ms: 100,
        backoff_cap_ms: 500,
        restart_budget: 3,
        jitter_seed: 1,
    };
    let mut sup = Supervisor::new(1, cfg, 0);
    // The worker's own clock is frozen: its heartbeat file never
    // changes. Re-reads feed the same rounds value forever.
    for t in [100u64, 500, 900] {
        sup.heartbeat(0, 4, t);
    }
    assert!(sup.tick(999).is_empty());
    assert_eq!(sup.tick(1_100), vec![Action::Kill(0)]);
    // The kill is not repeated while the exit is pending.
    assert!(sup.tick(5_000).is_empty());
    // After the exit, backoff then respawn — and a fresh deadline.
    assert_eq!(sup.process_exited(0, 5_000), None);
    let until = sup.backoff_until(0);
    assert_eq!(sup.tick(until), vec![Action::Respawn(0)]);
    assert!(sup.tick(until + 999).is_empty(), "deadline restarted");
    assert_eq!(sup.tick(until + 1_000), vec![Action::Kill(0)]);
}

/// The stats snapshot round-trips through its file and tolerates
/// truncation: a torn snapshot reads as absent, never as zeroed
/// history.
#[test]
fn stats_snapshot_is_resumable_and_tear_tolerant() {
    let (root, dirs) = fresh_fleet("stats", 1, 0x57a7);
    let stats = FleetStats {
        rounds: 9,
        execs: 1234,
        steps: 56_789,
        merged_seeds: 7,
        kills: 1,
        respawns: 2,
        elapsed_ms: 4_000,
        ..FleetStats::default()
    };
    stats.save(&dirs.stats_file()).unwrap();
    assert_eq!(FleetStats::load(&dirs.stats_file()), Some(stats.clone()));

    // Truncate mid-line (a torn non-atomic write): load yields None.
    let text = std::fs::read_to_string(dirs.stats_file()).unwrap();
    std::fs::write(dirs.stats_file(), &text.as_bytes()[..text.len() / 2]).unwrap();
    assert_eq!(FleetStats::load(&dirs.stats_file()), None);

    let _ = std::fs::remove_dir_all(&root);
}
