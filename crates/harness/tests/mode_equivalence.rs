//! The mode-equivalence property suite: `CheckMode::Inline` and
//! `CheckMode::Pipelined` are *the same oracle* — only the thread the
//! back half runs on differs. Over a 32-seed sweep of clean, fault-heavy,
//! chaotic and fuzz-session workloads, both modes must settle into
//! identical verdicts: the same violations (kind and event seq), the same
//! canonical event-stream signature, the same step counts and the same
//! coverage summaries.
//!
//! The whole sweep is one `#[test]` on purpose: the coverage registry is
//! process-global, and a lone test per binary keeps the per-run coverage
//! deltas clean.
//!
//! Quarantine is disabled (threshold `u32::MAX`) for these runs: it is
//! the one front-half decision fed by back-half state (contained-panic
//! counts), so under a lagging checker it can legitimately gate a later
//! trap than inline mode would — the documented accepted divergence.
//! Everything else must be bit-identical.

use pkvm_ghost::event::canonical_signature;
use pkvm_ghost::oracle::OracleOpts;
use pkvm_ghost::CheckMode;
use pkvm_harness::campaign::CampaignCfg;
use pkvm_harness::chaos::ChaosCfg;
use pkvm_harness::coverage::{snapshot, CoverageSummary};
use pkvm_harness::fuzz::{FuzzCfg, Fuzzer};
use pkvm_harness::proxy::Proxy;
use pkvm_hyp::faults::{Fault, FaultSet};

/// Everything a checked run settles into once the checker drains.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    violations: Vec<(&'static str, Option<u64>)>,
    hyp_panic: Option<String>,
    signature: u64,
    steps: u64,
    hyp_cov: Vec<(&'static str, u64)>,
    spec_cov: Vec<(&'static str, u64)>,
}

/// Oracle switches shared by every run: quarantine off (see module doc),
/// everything else at defaults.
fn opts(mode: CheckMode) -> OracleOpts {
    OracleOpts::builder()
        .quarantine_threshold(u32::MAX)
        .check_mode(mode)
        .build()
}

/// One single-worker campaign at `seed`, fingerprinted. The profile
/// varies what the workload stresses: clean drives valid ops only,
/// faulty drives a heavy invalid fraction, chaotic additionally injects
/// hook-plane chaos (bit flips, torn reads, dropped/duplicated lock
/// events) so real violations flow through the pipeline.
fn campaign_fingerprint(seed: u64, profile: u64, mode: CheckMode) -> Fingerprint {
    let before = snapshot();
    let mut b = CampaignCfg::builder()
        .workers(1)
        .steps_per_worker(120)
        .base_seed(seed)
        .stop_on_violation(false)
        .record_trace(true)
        .oracle_opts(opts(mode));
    b = match profile {
        0 => b.invalid_fraction(0.0),
        1 => b.invalid_fraction(0.6),
        _ => b.chaos(
            ChaosCfg::builder()
                .seed(seed)
                .bit_flip(0.02)
                .torn_read_once(0.05)
                .drop_lock_event(0.02)
                .dup_lock_event(0.02)
                .build(),
        ),
    };
    let report = b.run();
    let cov = CoverageSummary::since(&before);
    let trace = report.trace.as_ref().expect("trace recorded");
    Fingerprint {
        violations: report
            .violations
            .iter()
            .map(|v| (v.kind(), v.event_seq()))
            .collect(),
        hyp_panic: report.hyp_panic.clone(),
        signature: canonical_signature(&trace.events),
        steps: report.workers[0].steps,
        hyp_cov: cov.hyp.points,
        spec_cov: cov.spec.points,
    }
}

/// One small in-memory fuzz session at `seed`, fingerprinted. Exercises
/// the corpus/scheduler/triage loop on top of the checker: bootstrap
/// inputs, coverage-guided admission and crash triage must all be blind
/// to the check mode.
fn fuzz_fingerprint(seed: u64, mode: CheckMode) -> Fingerprint {
    let before = snapshot();
    let cfg = FuzzCfg::builder()
        .seed(seed)
        .step_budget(200)
        .workers(1)
        .bootstrap_inputs(3)
        .bootstrap_len(20)
        .stop_on_violation(false)
        .oracle_opts(opts(mode))
        .build();
    let report = Fuzzer::new(cfg).run();
    let cov = CoverageSummary::since(&before);
    Fingerprint {
        violations: report
            .crashes
            .iter()
            .map(|c| (c.sig.kind, Some(c.count)))
            .collect(),
        hyp_panic: None,
        signature: (report.execs << 32)
            ^ (report.corpus_size as u64)
            ^ ((report.points_covered as u64) << 16)
            ^ report.escaped_panics,
        steps: report.steps,
        hyp_cov: cov.hyp.points,
        spec_cov: cov.spec.points,
    }
}

#[test]
fn inline_and_pipelined_agree_across_32_seeds() {
    let mut runs_with_violations = 0;
    for seed in 0..32u64 {
        let profile = seed % 4;
        let (inline, piped) = if profile == 3 {
            (
                fuzz_fingerprint(seed, CheckMode::Inline),
                fuzz_fingerprint(seed, CheckMode::pipelined()),
            )
        } else {
            (
                campaign_fingerprint(seed, profile, CheckMode::Inline),
                campaign_fingerprint(seed, profile, CheckMode::pipelined()),
            )
        };
        assert_eq!(
            inline, piped,
            "seed {seed} (profile {profile}): inline and pipelined verdicts diverge"
        );
        if !inline.violations.is_empty() {
            runs_with_violations += 1;
        }
    }
    // The agreement must not be vacuous: the chaotic profile exists to
    // push real violations through both pipelines.
    assert!(
        runs_with_violations > 0,
        "no seed produced a violation — the sweep never exercised the violation path"
    );

    // The break-before-make spec check is pure back-half state, so the
    // missing-TLBI bug must surface as the *same* violations — kind and
    // anchoring event seq — whichever thread runs the back half. (Kept
    // inside the lone test: see the module doc on the coverage registry.)
    let inline = bbm_fingerprint(CheckMode::Inline);
    let piped = bbm_fingerprint(CheckMode::pipelined());
    assert_eq!(inline, piped, "break-before-make verdicts diverge by mode");
    assert!(
        inline
            .iter()
            .any(|(kind, seq)| *kind == "break-before-make" && seq.is_some()),
        "missing-TLBI bug not spec-detected: {inline:?}"
    );

    // The Android mix — firmware donation, share/unshare ping-pong,
    // VM churn — flows through the same front half, so a clean
    // Android-weighted campaign must fingerprint identically by mode.
    let inline = android_fingerprint(CheckMode::Inline);
    let piped = android_fingerprint(CheckMode::pipelined());
    assert_eq!(inline, piped, "android campaign verdicts diverge by mode");
    assert!(
        inline.violations.is_empty(),
        "clean android campaign produced violations: {:?}",
        inline.violations
    );

    // And the firmware-protection check, like break-before-make, lives
    // entirely in the back half: the firmware-reclaiming teardown bug
    // must anchor the same violations whichever thread applies it.
    let inline = firmware_fingerprint(CheckMode::Inline);
    let piped = firmware_fingerprint(CheckMode::pipelined());
    assert_eq!(
        inline, piped,
        "firmware-protection verdicts diverge by mode"
    );
    assert!(
        inline
            .iter()
            .any(|(kind, seq)| *kind == "firmware-protection" && seq.is_some()),
        "firmware reclaim not spec-detected: {inline:?}"
    );
}

/// One single-worker campaign under the Android op mix (pvmfw firmware
/// donation, heavy share/unshare, VM churn), fingerprinted.
fn android_fingerprint(mode: CheckMode) -> Fingerprint {
    let before = snapshot();
    let report = CampaignCfg::builder()
        .workers(1)
        .steps_per_worker(250)
        .base_seed(0xa11d)
        .invalid_fraction(0.0)
        .stop_on_violation(false)
        .record_trace(true)
        .android()
        .oracle_opts(opts(mode))
        .run();
    let cov = CoverageSummary::since(&before);
    let trace = report.trace.as_ref().expect("trace recorded");
    Fingerprint {
        violations: report
            .violations
            .iter()
            .map(|v| (v.kind(), v.event_seq()))
            .collect(),
        hyp_panic: report.hyp_panic.clone(),
        signature: canonical_signature(&trace.events),
        steps: report.workers[0].steps,
        hyp_cov: cov.hyp.points,
        spec_cov: cov.spec.points,
    }
}

/// Violations from a firmware-reclaiming teardown: the host taking back
/// a donated pvmfw page, spec-detected as `firmware-protection` anchored
/// at the regain's event seq.
fn firmware_fingerprint(mode: CheckMode) -> Vec<(&'static str, Option<u64>)> {
    let faults = FaultSet::none();
    faults.inject(Fault::SynFirmwareReclaim);
    let p = Proxy::builder()
        .faults(faults)
        .oracle_opts(opts(mode))
        .boot();
    let handle = p.init_vm(0, 1, true).expect("init_vm");
    let fw = p.alloc_page();
    p.load_firmware(0, handle, fw, 0xa0, 1).expect("firmware");
    p.teardown(0, handle).expect("teardown");
    let _ = p.reclaim(0, fw);
    p.violations()
        .iter()
        .map(|v| (v.kind(), v.event_seq()))
        .collect()
}

/// Violations from a missing-TLBI run: a share/unshare pair whose
/// downgrades exit the trap unflushed, spec-detected as
/// `break-before-make` anchored at the downgrade's event seq.
fn bbm_fingerprint(mode: CheckMode) -> Vec<(&'static str, Option<u64>)> {
    let faults = FaultSet::none();
    faults.inject(Fault::SynMissingTlbi);
    let p = Proxy::builder()
        .faults(faults)
        .oracle_opts(opts(mode))
        .boot();
    let pfn = p.alloc_page();
    p.share(0, pfn).unwrap();
    p.unshare(0, pfn).unwrap();
    p.violations()
        .iter()
        .map(|v| (v.kind(), v.event_seq()))
        .collect()
}
