//! Coverage reporting for implementation and specification.
//!
//! The kernel's GCOV tooling is unusable at EL2, so the paper built its
//! own coverage plumbing (§5). Here both the hypervisor (`pkvm-hyp`) and
//! the specification (`pkvm-ghost`) record named coverage points into the
//! shared registry in `pkvm_hyp::cov`; this module assembles the reports
//! the paper gives — coverage of the implementation and of the
//! specification functions — after running a test campaign.

use pkvm_hyp::cov::{self, Report, Snapshot};

pub use pkvm_hyp::cov::snapshot;

/// Coverage points declared by the specification functions, kept in sync
/// with `pkvm-ghost`'s `spec` module (the equivalent of the paper's "459
/// of 497 lines" spec-coverage accounting).
pub fn spec_points() -> &'static [&'static str] {
    pkvm_ghost::spec::SPEC_COV_POINTS
}

/// Coverage points declared by the hypervisor implementation.
pub fn hyp_points() -> &'static [&'static str] {
    cov::HYP_COV_POINTS
}

/// Specification points that are *unreachable on a clean hypervisor* —
/// manually identified, exactly as the paper does for its coverage
/// accounting ("absolute coverage numbers do not account for unreachable
/// code paths"). They are: the loose `Unchecked` acceptances of `-ENOMEM`
/// in paths whose allocations cannot fail under the test configurations;
/// the `Impossible` detections (only a buggy hypervisor produces them);
/// the missing-call-data fallbacks (the instrumented implementation always
/// records them); and the VM-vanished-while-loaded cases (teardown's
/// `EBUSY` rule excludes them).
pub const SPEC_UNREACHABLE_ON_CLEAN: &[&str] = &[
    "spec/host_map_guest/param",
    "spec/host_map_guest/unchecked2",
    "spec/host_reclaim_page/impossible",
    "spec/host_reclaim_page/unchecked",
    "spec/host_reclaim_page/unchecked2",
    "spec/host_share_hyp/impossible",
    "spec/host_unshare_hyp/unchecked",
    "spec/init_vcpu/unchecked2",
    "spec/init_vm/unchecked2",
    "spec/teardown_vm/unchecked",
    "spec/teardown_vm/unchecked2",
    "spec/topup_memcache/impossible",
    "spec/vcpu_load/unchecked",
    "spec/vcpu_run/unchecked2",
    "spec/vcpu_run/unchecked3",
    "spec/vcpu_run/unchecked4",
    "spec/vcpu_run/unchecked5",
    // `vm_load_firmware`'s ENOMEM acceptance (`unchecked`) is *not* here:
    // the Android pool-exhaustion scenario genuinely reaches it on a
    // clean hypervisor. Only the VM-vanished fallback stays unreachable.
    "spec/vm_load_firmware/unchecked2",
];

/// A two-sided coverage summary.
#[derive(Clone, Debug)]
pub struct CoverageSummary {
    /// Implementation coverage.
    pub hyp: Report,
    /// Specification coverage.
    pub spec: Report,
}

impl CoverageSummary {
    /// Snapshot of the current counters.
    pub fn collect() -> CoverageSummary {
        CoverageSummary {
            hyp: Report::over(hyp_points()),
            spec: Report::over(spec_points()),
        }
    }

    /// The coverage accumulated *since* `before` (see
    /// [`pkvm_hyp::cov::snapshot`]) — the delta primitive parallel
    /// campaign and fuzz workers use instead of the racy global
    /// [`reset`].
    pub fn since(before: &Snapshot) -> CoverageSummary {
        CoverageSummary {
            hyp: Report::over(hyp_points()).diff(before),
            spec: Report::over(spec_points()).diff(before),
        }
    }

    /// The spec points that remain after discounting the manually
    /// identified unreachable list. Both [`spec_percent_reachable`]
    /// (CoverageSummary::spec_percent_reachable) and [`render`]
    /// (CoverageSummary::render) derive from this one filtered set, so
    /// the reported denominator cannot drift from the percentage when
    /// the unreachable list and the registry diverge (e.g. a stale entry
    /// naming a point that no longer exists).
    pub fn spec_reachable_points(&self) -> Vec<(&'static str, u64)> {
        self.spec
            .points
            .iter()
            .filter(|(p, _)| !SPEC_UNREACHABLE_ON_CLEAN.contains(p))
            .map(|&(p, n)| (p, n))
            .collect()
    }

    /// Spec coverage computed over the *reachable* points only (the
    /// paper's methodology of discounting manually-identified unreachable
    /// code before reporting the remainder).
    pub fn spec_percent_reachable(&self) -> f64 {
        let reachable = self.spec_reachable_points();
        if reachable.is_empty() {
            return 100.0;
        }
        100.0 * reachable.iter().filter(|(_, n)| *n > 0).count() as f64 / reachable.len() as f64
    }

    /// Renders the paper-style table rows.
    pub fn render(&self) -> String {
        format!(
            "implementation: {:>5.1}% ({} of {} points)\n\
             specification:  {:>5.1}% ({} of {} points); \
             {:.1}% of the {} reachable points\n",
            self.hyp.percent(),
            self.hyp.hit_count(),
            self.hyp.total(),
            self.spec.percent(),
            self.spec.hit_count(),
            self.spec.total(),
            self.spec_percent_reachable(),
            self.spec_reachable_points().len(),
        )
    }
}

/// Resets all counters (call before a campaign).
pub fn reset() {
    cov::reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn point_lists_are_disjoint_and_nonempty() {
        assert!(!hyp_points().is_empty());
        assert!(!spec_points().is_empty());
        for p in spec_points() {
            assert!(p.starts_with("spec/"), "spec point {p} must be namespaced");
            assert!(!hyp_points().contains(p));
        }
    }

    #[test]
    fn unreachable_list_matches_the_registry() {
        // Every entry of the manual unreachable list must name a live
        // registry point; a stale entry would silently skew the reachable
        // accounting it is subtracted from.
        for p in SPEC_UNREACHABLE_ON_CLEAN {
            assert!(
                spec_points().contains(p),
                "unreachable list entry {p} is not a registered spec point"
            );
        }
    }

    #[test]
    fn render_reachable_count_derives_from_the_filtered_set() {
        let c = CoverageSummary::collect();
        let reachable = c.spec_reachable_points().len();
        assert!(c.render().contains(&format!("{reachable} reachable")));
        // The filtered set is what the percentage divides by, so the two
        // figures in the rendered row agree by construction.
        assert_eq!(
            reachable,
            c.spec
                .points
                .iter()
                .filter(|(p, _)| !SPEC_UNREACHABLE_ON_CLEAN.contains(p))
                .count()
        );
    }

    #[test]
    fn handwritten_suite_reaches_high_coverage() {
        // Note: the registry is process-global; other tests in this binary
        // also contribute hits, which only helps the threshold.
        scenarios::run_all(true);
        // The Android family is part of the handwritten surface now: it
        // is what reaches the firmware and transfer spec points.
        for s in crate::android::all() {
            let p = crate::proxy::Proxy::builder().boot();
            (s.run)(&p);
            assert!(p.all_clear(), "android scenario {} not clean", s.name);
        }
        let c = CoverageSummary::collect();
        assert!(
            c.hyp.percent() >= 85.0,
            "implementation coverage too low:\n{}\nmissed: {:?}",
            c.render(),
            c.hyp.missed()
        );
        // The spec's point list deliberately includes its loose/`Unchecked`
        // paths, most of which are unreachable on a clean hypervisor (the
        // paper likewise reports unreachable spec lines among its misses).
        assert!(
            c.spec.percent() >= 60.0,
            "spec coverage too low:\n{}\nmissed: {:?}",
            c.render(),
            c.spec.missed()
        );
    }
}
