//! Violation triage: deduplication and automatic minimization.
//!
//! Every violating execution is folded into a table keyed by a crash
//! signature — the violation kind, the component it names, and the
//! diverging spec coverage point (the deepest `spec/<trap>/…` point the
//! execution's coverage delta reached for the violating trap). The first
//! execution of each signature is greedily minimized with the shared
//! [`crate::minimize`] helper and written to the crashes directory as a
//! minimal reproducer trace; repeats only bump a counter.

use std::collections::HashMap;
use std::path::PathBuf;

use pkvm_ghost::Violation;
use pkvm_hyp::cov::Report;

use crate::campaign::CampaignTrace;
use crate::fuzz::corpus::CorpusError;
use crate::minimize::minimize_with_stats;
use crate::tracefile::save_trace;

/// The deduplication key of a violating execution.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CrashSig {
    /// Stable violation kind tag (`"spec-mismatch"`, `"hyp-panic"`, …).
    pub kind: &'static str,
    /// The component the violation names, if any.
    pub component: Option<String>,
    /// The diverging spec coverage point, if the violating trap reached
    /// one in this execution's coverage delta.
    pub spec_point: Option<&'static str>,
}

impl std::fmt::Display for CrashSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(c) = &self.component {
            write!(f, " @ {c}")?;
        }
        if let Some(p) = self.spec_point {
            write!(f, " [{p}]")?;
        }
        Ok(())
    }
}

/// One deduplicated crash family.
#[derive(Clone, Debug)]
pub struct CrashEntry {
    /// The family's signature.
    pub sig: CrashSig,
    /// Violating executions folded into this family.
    pub count: u64,
    /// The minimized reproducer.
    pub trace: CampaignTrace,
    /// Driver events in the first violating input, before minimization.
    pub original_events: usize,
    /// Driver events left after minimization.
    pub minimized_events: usize,
    /// Total fuzzer driver steps spent when the family was first found
    /// (the time-to-detection figure the experiments report).
    pub steps_to_find: u64,
    /// Where the reproducer persists, when a crashes directory is set.
    pub file: Option<PathBuf>,
}

/// The triage table.
#[derive(Debug)]
pub struct Triage {
    /// Crash families, in discovery order.
    pub entries: Vec<CrashEntry>,
    /// Reproducer persistence failures absorbed so far (the family stays
    /// triaged in memory; only its on-disk reproducer is missing).
    pub persist_errors: u64,
    index: HashMap<CrashSig, usize>,
    dir: Option<PathBuf>,
    minimize_budget: usize,
    last_error: Option<CorpusError>,
}

impl Triage {
    /// An empty table; creates the crashes directory when one is given.
    /// `minimize_budget` caps fresh-machine replays spent minimizing each
    /// new crash family. Never fails: an uncreatable directory degrades
    /// the table to in-memory only, recorded as a persistence error.
    pub fn new(dir: Option<PathBuf>, minimize_budget: usize) -> Triage {
        let mut persist_errors = 0;
        let mut last_error = None;
        let dir = dir.and_then(|d| match std::fs::create_dir_all(&d) {
            Ok(()) => Some(d),
            Err(e) => {
                persist_errors += 1;
                last_error = Some(CorpusError::Io { path: d, err: e });
                None
            }
        });
        Triage {
            entries: Vec::new(),
            persist_errors,
            index: HashMap::new(),
            dir,
            minimize_budget,
            last_error,
        }
    }

    /// The most recent persistence failure, if any.
    pub fn last_error(&self) -> Option<&CorpusError> {
        self.last_error.as_ref()
    }

    /// Computes the signature of one violation given the execution's
    /// *spec* coverage delta: of the `spec/<trap>/…` points the delta
    /// reached for the violating trap, the last (deepest) one becomes the
    /// diverging point.
    pub fn signature(v: &Violation, spec_delta: &Report) -> CrashSig {
        let spec_point = v.trap().and_then(|t| {
            let prefix = format!("spec/{t}/");
            spec_delta
                .points
                .iter()
                .filter(|(p, n)| *n > 0 && p.starts_with(&prefix))
                .map(|&(p, _)| p)
                .next_back()
        });
        CrashSig {
            kind: v.kind(),
            component: v.component().map(str::to_string),
            spec_point,
        }
    }

    /// Folds one violating execution into the table. Returns how many
    /// *new* crash families it opened (minimizing and persisting each);
    /// known signatures only bump their counters. A reproducer that
    /// fails to persist stays triaged in memory, counted in
    /// [`Triage::persist_errors`].
    pub fn record(
        &mut self,
        trace: &CampaignTrace,
        violations: &[Violation],
        hyp_panic: Option<&str>,
        spec_delta: &Report,
        steps_to_find: u64,
    ) -> usize {
        let mut sigs: Vec<CrashSig> = violations
            .iter()
            .map(|v| Self::signature(v, spec_delta))
            .collect();
        if sigs.is_empty() && hyp_panic.is_some() {
            // The hypervisor died before the oracle could phrase a
            // violation; still a crash family.
            sigs.push(CrashSig {
                kind: "hyp-panic",
                component: None,
                spec_point: None,
            });
        }
        let mut uniq: Vec<CrashSig> = Vec::new();
        for s in sigs {
            if !uniq.contains(&s) {
                uniq.push(s);
            }
        }
        let sigs = uniq;
        let mut opened = 0;
        // Minimize at most once per execution, shared by every new
        // signature it opened (they reproduce from the same input).
        let mut minimized: Option<CampaignTrace> = None;
        for sig in sigs {
            if let Some(&i) = self.index.get(&sig) {
                self.entries[i].count += 1;
                continue;
            }
            let min = minimized
                .get_or_insert_with(|| minimize_with_stats(trace, self.minimize_budget).trace)
                .clone();
            let i = self.entries.len();
            let file = self.dir.as_ref().and_then(|d| {
                let path = d.join(format!("crash-{i:03}-{}.pkvmtrace", sig.kind));
                match save_trace(&path, &min) {
                    Ok(()) => Some(path),
                    Err(err) => {
                        self.persist_errors += 1;
                        self.last_error = Some(CorpusError::Trace { path, err });
                        None
                    }
                }
            });
            self.index.insert(sig.clone(), i);
            self.entries.push(CrashEntry {
                sig,
                count: 1,
                original_events: trace.events.iter().filter(|r| r.event.is_driver()).count(),
                minimized_events: min.events.len(),
                trace: min,
                steps_to_find,
                file,
            });
            opened += 1;
        }
        opened
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{replay, CampaignCfg};
    use pkvm_hyp::faults::{Fault, FaultSet};

    fn violating_trace() -> (CampaignTrace, Vec<Violation>) {
        let faults = FaultSet::none();
        faults.inject(Fault::SynShareWrongState);
        let report = CampaignCfg::builder()
            .workers(1)
            .steps_per_worker(300)
            .base_seed(0x7a1)
            .faults(&faults)
            .run();
        assert!(!report.is_clean());
        (report.trace.unwrap(), report.violations)
    }

    #[test]
    fn duplicate_signatures_fold_into_one_family() {
        let (trace, violations) = violating_trace();
        let delta = Report { points: vec![] };
        let mut t = Triage::new(None, 40);
        let opened = t.record(&trace, &violations, None, &delta, 100);
        assert!(opened >= 1);
        let families = t.entries.len();
        // The same execution again: zero new families, counters bump.
        let opened2 = t.record(&trace, &violations, None, &delta, 200);
        assert_eq!(opened2, 0);
        assert_eq!(t.entries.len(), families);
        assert!(t.entries[0].count >= 2);
        assert_eq!(t.entries[0].steps_to_find, 100, "first sighting wins");
        // The minimized reproducer still reproduces.
        assert!(t.entries[0].minimized_events <= t.entries[0].original_events);
        assert!(replay(&t.entries[0].trace).violated());
    }

    #[test]
    fn signature_names_the_diverging_spec_point() {
        let (_, violations) = violating_trace();
        let v = &violations[0];
        let trap = v.trap().expect("share violation names its trap");
        let point: &'static str = "spec/host_share_hyp/check";
        let delta = Report {
            points: vec![(point, 3)],
        };
        let sig = Triage::signature(v, &delta);
        assert_eq!(sig.kind, v.kind());
        if trap == "host_share_hyp" {
            assert_eq!(sig.spec_point, Some(point));
        }
        // A delta that never reached the trap's spec leaves the point
        // empty rather than inventing one.
        let empty = Report { points: vec![] };
        assert_eq!(Triage::signature(v, &empty).spec_point, None);
        let rendered = sig.to_string();
        assert!(rendered.contains(sig.kind), "{rendered}");
    }
}
