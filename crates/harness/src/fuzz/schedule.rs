//! The power schedule: which corpus seed to mutate next.
//!
//! Energy is rarity-weighted: a seed's energy is the sum of `1/frequency`
//! over the coverage points its execution reached, plus `1/frequency` of
//! its novelty signature — so seeds that reach points (or ghost-state
//! shapes) few executions reach are mutated more often, and a point
//! every input hits contributes almost nothing. Frequencies count *every*
//! execution, not just corpus admissions, so energy decays naturally as
//! the fuzzer re-visits the same territory.

use std::collections::HashMap;

use crate::rng::Rng;

use super::corpus::CorpusSeed;

/// Rarity bookkeeping shared by all fuzz workers (behind the fuzzer's
/// mutex — the scheduler itself is plain data).
#[derive(Debug, Default)]
pub struct Scheduler {
    point_freq: HashMap<&'static str, u64>,
    sig_freq: HashMap<u64, u64>,
}

impl Scheduler {
    /// A fresh scheduler with no observations.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Folds one execution's footprint into the frequency tables.
    pub fn observe(&mut self, points: &[&'static str], sig: u64) {
        for p in points {
            *self.point_freq.entry(p).or_insert(0) += 1;
        }
        *self.sig_freq.entry(sig).or_insert(0) += 1;
    }

    /// How often `point` has been reached across all executions.
    pub fn point_frequency(&self, point: &str) -> u64 {
        self.point_freq.get(point).copied().unwrap_or(0)
    }

    /// The rarity-weighted energy of a seed's footprint. Never zero, so
    /// even a seed whose coverage has become common keeps a minimal
    /// chance of selection.
    pub fn energy(&self, points: &[&'static str], sig: u64) -> f64 {
        let from_points: f64 = points
            .iter()
            .map(|p| 1.0 / self.point_frequency(p).max(1) as f64)
            .sum();
        let from_sig = 1.0 / self.sig_freq.get(&sig).copied().unwrap_or(1).max(1) as f64;
        (from_points + from_sig).max(1e-6)
    }

    /// Picks a seed with probability proportional to its energy.
    pub fn choose<'a>(&self, seeds: &'a [CorpusSeed], rng: &mut Rng) -> Option<&'a CorpusSeed> {
        if seeds.is_empty() {
            return None;
        }
        let energies: Vec<f64> = seeds
            .iter()
            .map(|s| self.energy(&s.points, s.sig))
            .collect();
        let total: f64 = energies.iter().sum();
        let mut pick = rng.gen_f64() * total;
        for (s, e) in seeds.iter().zip(&energies) {
            pick -= e;
            if pick < 0.0 {
                return Some(s);
            }
        }
        seeds.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignTrace;
    use pkvm_ghost::oracle::OracleOpts;
    use pkvm_hyp::machine::MachineConfig;

    fn seed(id: u64, points: Vec<&'static str>, sig: u64) -> CorpusSeed {
        CorpusSeed {
            id,
            trace: CampaignTrace {
                config: MachineConfig::default(),
                oracle_opts: OracleOpts::default(),
                fault_bits: 0,
                chaos: None,
                seeds: Vec::new(),
                events: Vec::new(),
            },
            points,
            sig,
            file: None,
        }
    }

    #[test]
    fn rare_coverage_earns_more_energy() {
        let mut s = Scheduler::new();
        // "common" seen 100 times, "rare" once.
        for _ in 0..100 {
            s.observe(&["common"], 1);
        }
        s.observe(&["rare"], 2);
        assert!(s.energy(&["rare"], 2) > 10.0 * s.energy(&["common"], 1));
    }

    #[test]
    fn choose_prefers_high_energy_seeds() {
        let mut s = Scheduler::new();
        for _ in 0..200 {
            s.observe(&["common"], 1);
        }
        s.observe(&["rare"], 2);
        let seeds = [seed(0, vec!["common"], 1), seed(1, vec!["rare"], 2)];
        let mut rng = Rng::seed_from_u64(9);
        let picks = (0..300)
            .filter(|_| s.choose(&seeds, &mut rng).unwrap().id == 1)
            .count();
        assert!(picks > 200, "rare seed picked only {picks}/300 times");
    }

    #[test]
    fn choose_handles_empty_and_unseen() {
        let s = Scheduler::new();
        let mut rng = Rng::seed_from_u64(1);
        assert!(s.choose(&[], &mut rng).is_none());
        // A seed whose points were never observed still has energy.
        let seeds = [seed(0, vec![], 7)];
        assert_eq!(s.choose(&seeds, &mut rng).unwrap().id, 0);
    }
}
