//! Coverage-guided fuzzing over typed driver-op sequences.
//!
//! The random tester is feedback-free: it never learns which inputs
//! reach new territory. This subsystem closes the loop. Each input — a
//! sequence of concrete driver events, the same shape campaign replay
//! executes — runs on a fresh machine under the oracle, and two feedback
//! signals are measured per input, race-free, as deltas against a
//! [`pkvm_hyp::cov::snapshot`]:
//!
//! - the named implementation/spec coverage points the execution hit
//!   (`pkvm_hyp::cov` + `pkvm_ghost::spec`), and
//! - a ghost-state novelty signature: the hash of the post-trap
//!   component shapes in the recorded event stream
//!   ([`pkvm_ghost::event::canonical_signature`] — the mode-independent
//!   ordering, so a corpus fuzzed inline and pipelined stays comparable).
//!
//! Inputs that add either kind of coverage enter the [`corpus`], each
//! persisted as an ordinary `.pkvmtrace` file so the corpus survives the
//! process and replays bit-identically. A rarity-weighted power
//! [`schedule`] picks which seed to [`mutate`] next (structure-aware:
//! truncate/splice at trap boundaries, insert model-plausible ops,
//! perturb parameters), and violating executions are deduplicated and
//! auto-minimized into a `crashes/` directory by [`triage`].
//!
//! `workers > 1` fuzzes in parallel, campaign-style: each worker owns a
//! derived RNG stream and executes on its own machine, sharing the
//! corpus, scheduler and triage table behind one mutex. A configurable
//! fraction of executions runs under the chaos engine's fault injection.

pub mod corpus;
pub mod mutate;
pub mod schedule;
pub mod triage;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pkvm_aarch64::addr::PhysAddr;
use pkvm_aarch64::sync::Mutex;
use pkvm_ghost::event::{canonical_signature, Event, EventRecord};
use pkvm_ghost::oracle::OracleOpts;
use pkvm_ghost::{CheckMode, Violation};
use pkvm_hyp::cov;
use pkvm_hyp::faults::FaultSet;
use pkvm_hyp::machine::{Machine, MachineConfig};

use crate::campaign::{worker_seed, CampaignTrace};
use crate::chaos::ChaosCfg;
use crate::coverage::CoverageSummary;
use crate::proxy::Proxy;
use crate::random::{RandomCfg, RandomTester};
use crate::rng::Rng;

pub use corpus::{replay_digest, scan_dir, Corpus, CorpusError, CorpusSeed, DirScan};
pub use mutate::MutationKind;
pub use schedule::Scheduler;
pub use triage::{CrashEntry, CrashSig, Triage};

/// Fuzzer configuration. Construct with [`FuzzCfg::builder`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct FuzzCfg {
    /// Base seed; workers and mutations derive their streams from it.
    pub seed: u64,
    /// Total driver steps to execute across all inputs (bootstrap
    /// included), so fuzzer-vs-random comparisons run at equal budgets.
    pub step_budget: u64,
    /// Parallel fuzz workers. One worker is fully deterministic per
    /// seed; more share the corpus behind the mutex.
    pub workers: usize,
    /// Random inputs generated to found an empty corpus.
    pub bootstrap_inputs: usize,
    /// Base tester-step length of bootstrap inputs; input `i` runs
    /// `bootstrap_len * (i + 1)` steps, so the bootstrap set spans
    /// shallow-and-cheap to deep-and-stateful.
    pub bootstrap_len: u64,
    /// Cap on driver events per input (mutations cut back to a group
    /// boundary under this).
    pub max_input_len: usize,
    /// Arbitrary-call fraction used when generating fresh ops.
    pub invalid_fraction: f64,
    /// Directory the corpus persists into (`None` = in-memory only).
    pub corpus_dir: Option<PathBuf>,
    /// Directory minimized crash reproducers are written to.
    pub crashes_dir: Option<PathBuf>,
    /// Chaos configuration for the chaotic fraction of executions.
    pub chaos: Option<ChaosCfg>,
    /// Fraction of executions run under `chaos` (ignored without one).
    pub chaos_fraction: f64,
    /// Machine shape every execution boots.
    pub config: MachineConfig,
    /// Oracle switches.
    pub oracle_opts: OracleOpts,
    /// Faults injected into every execution, as raw [`FaultSet`] bits.
    pub fault_bits: u32,
    /// Fresh-machine replays spent minimizing each new crash family.
    pub minimize_budget: usize,
    /// Stop all workers once the first crash family is found (for
    /// time-to-detection measurements).
    pub stop_on_violation: bool,
}

impl Default for FuzzCfg {
    fn default() -> Self {
        Self {
            seed: 0xf022,
            step_budget: 2000,
            workers: 1,
            bootstrap_inputs: 4,
            bootstrap_len: 120,
            max_input_len: 640,
            invalid_fraction: 0.15,
            corpus_dir: None,
            crashes_dir: None,
            chaos: None,
            chaos_fraction: 0.0,
            config: MachineConfig::default(),
            oracle_opts: OracleOpts::default(),
            fault_bits: 0,
            minimize_budget: 64,
            stop_on_violation: false,
        }
    }
}

impl FuzzCfg {
    /// Starts a builder from the defaults.
    pub fn builder() -> FuzzCfgBuilder {
        FuzzCfgBuilder(FuzzCfg::default())
    }
}

/// Builder for [`FuzzCfg`].
#[derive(Clone, Debug, Default)]
pub struct FuzzCfgBuilder(FuzzCfg);

impl FuzzCfgBuilder {
    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.0.seed = seed;
        self
    }

    /// Sets the total driver-step budget.
    pub fn step_budget(mut self, n: u64) -> Self {
        self.0.step_budget = n;
        self
    }

    /// Sets the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.0.workers = n.max(1);
        self
    }

    /// Sets how many random inputs found an empty corpus.
    pub fn bootstrap_inputs(mut self, n: usize) -> Self {
        self.0.bootstrap_inputs = n.max(1);
        self
    }

    /// Sets the tester steps per bootstrap input.
    pub fn bootstrap_len(mut self, n: u64) -> Self {
        self.0.bootstrap_len = n;
        self
    }

    /// Caps driver events per input.
    pub fn max_input_len(mut self, n: usize) -> Self {
        self.0.max_input_len = n.max(1);
        self
    }

    /// Sets the arbitrary-call fraction for generated ops.
    pub fn invalid_fraction(mut self, f: f64) -> Self {
        self.0.invalid_fraction = f;
        self
    }

    /// Persists the corpus in `dir`.
    pub fn corpus_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.0.corpus_dir = Some(dir.into());
        self
    }

    /// Writes minimized crash reproducers into `dir`.
    pub fn crashes_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.0.crashes_dir = Some(dir.into());
        self
    }

    /// Runs `fraction` of executions under `chaos`.
    pub fn chaos(mut self, chaos: ChaosCfg, fraction: f64) -> Self {
        self.0.chaos = Some(chaos);
        self.0.chaos_fraction = fraction;
        self
    }

    /// Sets the machine shape.
    pub fn config(mut self, config: MachineConfig) -> Self {
        self.0.config = config;
        self
    }

    /// Sets the oracle switches.
    pub fn oracle_opts(mut self, opts: OracleOpts) -> Self {
        self.0.oracle_opts = opts;
        self
    }

    /// Sets the oracle's [`CheckMode`] for every execution (sugar over
    /// [`oracle_opts`](Self::oracle_opts)). Feedback signals are read
    /// after a checker sync, so coverage and novelty are mode-independent.
    pub fn check_mode(mut self, mode: CheckMode) -> Self {
        self.0.oracle_opts.check_mode = mode;
        self
    }

    /// Injects `faults` into every execution.
    pub fn faults(mut self, faults: &FaultSet) -> Self {
        self.0.fault_bits = faults.bits();
        self
    }

    /// Caps minimization replays per crash family.
    pub fn minimize_budget(mut self, n: usize) -> Self {
        self.0.minimize_budget = n;
        self
    }

    /// Stops on the first crash family.
    pub fn stop_on_violation(mut self, on: bool) -> Self {
        self.0.stop_on_violation = on;
        self
    }

    /// Finishes the builder, sanitising the fractions the same way
    /// [`crate::random::RandomCfgBuilder::build`] does (NaN falls back to
    /// the default, the rest clamps into [0, 1]).
    pub fn build(mut self) -> FuzzCfg {
        let sane = |f: f64, default: f64| {
            if f.is_nan() {
                default
            } else {
                f.clamp(0.0, 1.0)
            }
        };
        let d = FuzzCfg::default();
        self.0.invalid_fraction = sane(self.0.invalid_fraction, d.invalid_fraction);
        self.0.chaos_fraction = sane(self.0.chaos_fraction, d.chaos_fraction);
        self.0
    }
}

/// The aggregated outcome of a fuzzing session.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Inputs executed (bootstrap included).
    pub execs: u64,
    /// Driver steps executed across all inputs.
    pub steps: u64,
    /// Corpus size at the end of the session.
    pub corpus_size: usize,
    /// Distinct coverage points the corpus reaches.
    pub points_covered: usize,
    /// Deduplicated crash families, in discovery order.
    pub crashes: Vec<CrashEntry>,
    /// Panics that escaped an execution (the oracle's containment
    /// failing); always expected to be zero.
    pub escaped_panics: u64,
    /// Seed/crash persistence failures (disk full, unwritable dir).
    pub persist_errors: u64,
    /// Coverage accumulated over the whole session, as a delta against
    /// the session-start snapshot.
    pub coverage: CoverageSummary,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// `true` when no crash families and no escaped panics were seen.
    pub fn is_clean(&self) -> bool {
        self.crashes.is_empty() && self.escaped_panics == 0
    }

    /// One-paragraph human summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: {} execs, {} driver steps in {:.2?}; corpus {} seeds / {} points",
            self.execs, self.steps, self.elapsed, self.corpus_size, self.points_covered,
        );
        let _ = writeln!(
            out,
            "  crash families: {} ({} escaped panics, {} persist errors)",
            self.crashes.len(),
            self.escaped_panics,
            self.persist_errors,
        );
        for c in &self.crashes {
            let _ = writeln!(
                out,
                "    {} — seen {}x, minimized {} -> {} events, found at step {}",
                c.sig, c.count, c.original_events, c.minimized_events, c.steps_to_find,
            );
        }
        out.push_str(&self.coverage.render());
        out
    }
}

/// What one execution measured.
struct ExecOutcome {
    summary: CoverageSummary,
    points: Vec<&'static str>,
    sig: u64,
    violations: Vec<Violation>,
    hyp_panic: Option<String>,
    steps: u64,
    escaped_panic: bool,
}

/// Mutable state all workers share behind the fuzzer's mutex.
struct Shared {
    corpus: Corpus,
    sched: Scheduler,
    triage: Triage,
    execs: u64,
    steps: u64,
    escaped_panics: u64,
}

/// The coverage-guided fuzzer.
pub struct Fuzzer {
    cfg: FuzzCfg,
    shared: Mutex<Shared>,
}

impl Fuzzer {
    /// Builds a fuzzer, creating the corpus and crashes directories when
    /// configured. Never fails: an uncreatable directory degrades the
    /// corresponding store to in-memory only, counted in the report's
    /// `persist_errors` — a full disk shrinks persistence, not the
    /// session.
    pub fn new(cfg: FuzzCfg) -> Fuzzer {
        let corpus = Corpus::new(cfg.corpus_dir.clone());
        let triage = Triage::new(cfg.crashes_dir.clone(), cfg.minimize_budget);
        Fuzzer {
            cfg,
            shared: Mutex::new(Shared {
                corpus,
                sched: Scheduler::new(),
                triage,
                execs: 0,
                steps: 0,
                escaped_panics: 0,
            }),
        }
    }

    /// Runs the session: reloads any persisted corpus, bootstraps if the
    /// corpus is empty, then fuzzes until the step budget is spent.
    pub fn run(&mut self) -> FuzzReport {
        let start = Instant::now();
        let base = cov::snapshot();
        self.seed_corpus();
        if self.cfg.workers <= 1 {
            self.worker_loop(0);
        } else {
            std::thread::scope(|s| {
                for w in 0..self.cfg.workers {
                    let this = &*self;
                    s.spawn(move || this.worker_loop(w));
                }
            });
        }
        let sh = self.shared.lock();
        FuzzReport {
            execs: sh.execs,
            steps: sh.steps,
            corpus_size: sh.corpus.seeds.len(),
            points_covered: sh.corpus.points_covered(),
            crashes: sh.triage.entries.clone(),
            escaped_panics: sh.escaped_panics,
            persist_errors: sh.corpus.persist_errors + sh.triage.persist_errors,
            coverage: CoverageSummary::since(&base),
            elapsed: start.elapsed(),
        }
    }

    /// Reloads persisted seeds (re-executing each to refresh its
    /// footprint), then generates bootstrap inputs while the corpus is
    /// empty. Single-threaded and deterministic per seed.
    fn seed_corpus(&self) {
        let mut rng = Rng::seed_from_u64(self.cfg.seed ^ 0xb007_57a9);
        if let Some(dir) = self.cfg.corpus_dir.clone() {
            for (path, trace) in corpus::load_dir(&dir) {
                let input: Vec<EventRecord> = trace
                    .events
                    .iter()
                    .filter(|r| r.event.is_driver())
                    .cloned()
                    .collect();
                let out = execute(&self.cfg, &input, trace.chaos);
                self.absorb(&self.make_trace(input, trace.chaos), out, Some(path));
            }
        }
        for i in 0..self.cfg.bootstrap_inputs {
            if self.shared.lock().steps >= self.cfg.step_budget {
                break;
            }
            // Escalating lengths: early seeds are cheap to mutate, later
            // ones reach the deep stateful territory (guest runs, reclaim
            // chains) that only long model-guided sequences visit.
            let len = self.cfg.bootstrap_len * (i as u64 + 1);
            let input = generate_input(&self.cfg, rng.gen_u64(), len);
            let out = execute(&self.cfg, &input, None);
            self.absorb(&self.make_trace(input, None), out, None);
        }
    }

    /// One worker's fuzz loop: pick a seed by energy, mutate, execute,
    /// feed the result back.
    fn worker_loop(&self, w: usize) {
        let mut rng = Rng::seed_from_u64(worker_seed(self.cfg.seed, w));
        loop {
            // Pick parent(s) under the lock; mutate and execute outside
            // it so workers overlap on the expensive part.
            let kind;
            let parent;
            let mut second: Option<Vec<EventRecord>> = None;
            {
                let sh = self.shared.lock();
                if sh.steps >= self.cfg.step_budget {
                    break;
                }
                if self.cfg.stop_on_violation && !sh.triage.entries.is_empty() {
                    break;
                }
                kind = *{
                    use MutationKind::*;
                    [
                        Truncate,
                        Splice,
                        Splice,
                        InsertOps,
                        InsertOps,
                        MutateParams,
                        MutateParams,
                    ]
                }
                .get(rng.gen_range(0..7u64) as usize)
                .expect("in range");
                let Some(p) = sh.sched.choose(&sh.corpus.seeds, &mut rng) else {
                    break; // every bootstrap failed to execute: nothing to mutate
                };
                parent = p.trace.events.clone();
                if kind == MutationKind::Splice {
                    second = sh
                        .sched
                        .choose(&sh.corpus.seeds, &mut rng)
                        .map(|s| s.trace.events.clone());
                }
            }
            let mutated = match kind {
                MutationKind::Truncate => mutate::truncate(&parent, &mut rng),
                MutationKind::Splice => match &second {
                    Some(b) => mutate::splice(&parent, b, &mut rng),
                    None => mutate::mutate_params(&parent, &mut rng),
                },
                MutationKind::InsertOps => mutate::insert_ops(&self.cfg, &parent, &mut rng),
                MutationKind::MutateParams => mutate::mutate_params(&parent, &mut rng),
            };
            let input = mutate::cap_len(mutated, self.cfg.max_input_len);
            let chaos = self
                .cfg
                .chaos
                .filter(|_| rng.gen_bool(self.cfg.chaos_fraction))
                .map(|c| c.reseeded(rng.gen_u64()));
            let out = execute(&self.cfg, &input, chaos);
            self.absorb(&self.make_trace(input, chaos), out, None);
        }
    }

    /// Folds one execution into the shared state: frequency tables,
    /// corpus admission, triage.
    fn absorb(&self, trace: &CampaignTrace, out: ExecOutcome, existing: Option<PathBuf>) {
        let mut sh = self.shared.lock();
        sh.execs += 1;
        // Even a zero-step input costs budget, or an empty corpus seed
        // could stall the loop forever.
        sh.steps += out.steps.max(1);
        if out.escaped_panic {
            sh.escaped_panics += 1;
            return;
        }
        sh.sched.observe(&out.points, out.sig);
        sh.corpus
            .consider(trace.clone(), out.points, out.sig, existing);
        if !out.violations.is_empty() || out.hyp_panic.is_some() {
            let steps_now = sh.steps;
            sh.triage.record(
                trace,
                &out.violations,
                out.hyp_panic.as_deref(),
                &out.summary.spec,
                steps_now,
            );
        }
    }

    /// Wraps an input in the session's execution configuration.
    fn make_trace(&self, events: Vec<EventRecord>, chaos: Option<ChaosCfg>) -> CampaignTrace {
        CampaignTrace {
            config: self.cfg.config.clone(),
            oracle_opts: self.cfg.oracle_opts,
            fault_bits: self.cfg.fault_bits,
            chaos,
            seeds: Vec::new(),
            events,
        }
    }
}

/// Executes the driver events on `m` in order (the same interpretation
/// campaign replay uses), stopping at a hypervisor panic. Returns the
/// steps executed.
pub(crate) fn apply_driver(m: &Machine, events: &[EventRecord]) -> u64 {
    let mut steps = 0;
    for ev in events {
        if m.panicked().is_some() {
            break;
        }
        match &ev.event {
            Event::Hvc { cpu, func, args } => {
                let _ = m.hvc(*cpu, *func, args);
            }
            Event::WriteMem { pa, value } => {
                // Host privilege: through the host's stage 2, like the
                // recording side (Proxy::write_mem).
                let _ = m.host_write(0, *pa, *value);
            }
            Event::CorruptMem { pa, value } => {
                let _ = m.mem.write_u64(PhysAddr::new(*pa), *value);
            }
            Event::HostAccess { cpu, addr, access } => {
                let _ = m.host_access(*cpu, *addr, *access);
            }
            Event::PushGuestOp { handle, idx, op } => {
                let _ = m.push_guest_op(*handle, *idx, *op);
            }
            _ => continue,
        }
        steps += 1;
    }
    steps
}

/// Runs `steps` fresh model-guided tester steps on `proxy` and returns
/// the driver events they recorded (the insert mutator's generator).
pub(crate) fn extend_with_random_steps(
    proxy: Proxy,
    rcfg: RandomCfg,
    steps: u64,
) -> Vec<EventRecord> {
    let mut t = RandomTester::new(proxy, rcfg);
    t.run(steps);
    t.proxy
        .events()
        .take_events()
        .into_iter()
        .filter(|r| r.event.is_driver())
        .collect()
}

/// Generates one bootstrap input: a fresh oracle-free machine driven by
/// a model-guided tester for `steps` steps, its recorded driver events
/// renumbered into an input sequence.
fn generate_input(cfg: &FuzzCfg, seed: u64, steps: u64) -> Vec<EventRecord> {
    let proxy = Proxy::builder()
        .config(cfg.config.clone())
        .with_oracle(false)
        .record(true)
        .boot();
    let rcfg = RandomCfg::builder()
        .seed(seed)
        .invalid_fraction(cfg.invalid_fraction)
        .build();
    mutate::cap_len(
        mutate::renumber(extend_with_random_steps(proxy, rcfg, steps)),
        cfg.max_input_len,
    )
}

/// Executes a recorded input under `cfg` on a fresh machine and returns
/// the coverage footprint — (points hit, novelty signature) — its
/// execution measured, or `None` when the execution escaped containment.
/// The fleet coordinator re-measures merged seeds through this before
/// distilling a corpus down to a frontier-preserving subset.
pub fn footprint(cfg: &FuzzCfg, trace: &CampaignTrace) -> Option<(Vec<&'static str>, u64)> {
    let input: Vec<EventRecord> = trace
        .events
        .iter()
        .filter(|r| r.event.is_driver())
        .cloned()
        .collect();
    let out = execute(cfg, &input, trace.chaos);
    if out.escaped_panic {
        None
    } else {
        Some((out.points, out.sig))
    }
}

/// Executes one input on a fresh machine under the oracle and measures
/// both feedback signals. The whole execution runs under `catch_unwind`:
/// the oracle contains its own panics by design, so an escaped panic is
/// itself a reportable failure, never a fuzzer crash.
fn execute(cfg: &FuzzCfg, input: &[EventRecord], chaos: Option<ChaosCfg>) -> ExecOutcome {
    let before = cov::snapshot();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let proxy = Proxy::builder()
            .config(cfg.config.clone())
            .oracle_opts(cfg.oracle_opts)
            .faults(FaultSet::from_bits(cfg.fault_bits))
            .chaos(chaos)
            .record(true)
            .boot();
        let steps = apply_driver(&proxy.machine, input);
        // Sync with the checker (no-op inline) before taking the
        // timeline: the derived Check/Violation records must all have
        // landed for the signature and verdict to be complete.
        if let Some(o) = &proxy.oracle {
            o.barrier();
        }
        let events = proxy.events().take_events();
        (
            canonical_signature(&events),
            proxy.violations(),
            proxy.machine.panicked(),
            steps,
        )
    }));
    let summary = CoverageSummary::since(&before);
    let points: Vec<&'static str> = summary
        .hyp
        .points
        .iter()
        .chain(summary.spec.points.iter())
        .filter(|(_, n)| *n > 0)
        .map(|&(p, _)| p)
        .collect();
    match result {
        Ok((sig, violations, hyp_panic, steps)) => ExecOutcome {
            summary,
            points,
            sig,
            violations,
            hyp_panic,
            steps,
            escaped_panic: false,
        },
        Err(_) => ExecOutcome {
            summary,
            points,
            sig: 0,
            violations: Vec::new(),
            hyp_panic: None,
            steps: 0,
            escaped_panic: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::replay;
    use pkvm_hyp::faults::Fault;

    #[test]
    fn clean_session_builds_a_corpus_and_stays_clean() {
        let mut f = Fuzzer::new(
            FuzzCfg::builder()
                .seed(0xabc)
                .step_budget(600)
                .bootstrap_inputs(3)
                .bootstrap_len(40)
                .build(),
        );
        let r = f.run();
        assert!(r.is_clean(), "{}", r.render());
        assert!(r.steps >= 600, "budget not spent: {}", r.render());
        assert!(
            r.corpus_size >= 3,
            "bootstrap never admitted: {}",
            r.render()
        );
        assert!(r.points_covered > 10, "{}", r.render());
        assert_eq!(r.escaped_panics, 0);
    }

    #[test]
    fn sessions_are_reproducible_per_seed() {
        let run = |seed| {
            let mut f = Fuzzer::new(
                FuzzCfg::builder()
                    .seed(seed)
                    .step_budget(400)
                    .bootstrap_inputs(2)
                    .bootstrap_len(30)
                    .build(),
            );
            let r = f.run();
            (r.execs, r.steps, r.corpus_size, r.points_covered)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fuzzer_finds_and_triages_an_injected_bug() {
        let faults = FaultSet::none();
        faults.inject(Fault::SynShareWrongState);
        let mut f = Fuzzer::new(
            FuzzCfg::builder()
                .seed(0xb06)
                .step_budget(1500)
                .faults(&faults)
                .stop_on_violation(true)
                .build(),
        );
        let r = f.run();
        assert!(
            !r.crashes.is_empty(),
            "injected bug never found:\n{}",
            r.render()
        );
        let c = &r.crashes[0];
        assert!(c.steps_to_find <= r.steps);
        assert!(c.minimized_events <= c.original_events);
        // The minimized reproducer replays to a violation on its own.
        assert!(replay(&c.trace).violated(), "{}", r.render());
        assert_eq!(r.escaped_panics, 0);
    }

    #[test]
    fn parallel_workers_share_the_corpus_without_escapes() {
        let mut f = Fuzzer::new(
            FuzzCfg::builder()
                .seed(0x9a9)
                .step_budget(800)
                .workers(3)
                .build(),
        );
        let r = f.run();
        assert!(r.is_clean(), "{}", r.render());
        assert!(r.corpus_size >= 1);
    }

    #[test]
    fn chaotic_fraction_runs_without_escaped_panics() {
        let chaos = ChaosCfg::builder()
            .seed(0xc4a)
            .torn_read_once(0.02)
            .drop_lock_event(0.02)
            .build();
        let mut f = Fuzzer::new(
            FuzzCfg::builder()
                .seed(0xc4a05)
                .step_budget(500)
                .chaos(chaos, 0.5)
                .build(),
        );
        let r = f.run();
        // Chaos may surface (deliberate) violations; the invariant is
        // containment, not cleanliness.
        assert_eq!(r.escaped_panics, 0, "{}", r.render());
    }
}
