//! The persistent seed corpus.
//!
//! A seed is an input (a driver-event sequence wrapped in a
//! [`CampaignTrace`]) whose execution added coverage: a named
//! implementation/spec coverage point nobody in the corpus had reached,
//! or a novel ghost-state signature. Admitted seeds persist as
//! `seed-NNNNNN.pkvmtrace` files in the corpus directory through the
//! ordinary trace codec, so a corpus survives the process and reloads —
//! and replays bit-identically — in the next session.
//!
//! The corpus is built crash-first: every persistence failure (an
//! unwritable directory, a full disk, a torn peer file) degrades into a
//! counted, reported condition instead of a panic. Seeds that cannot be
//! written stay admitted in memory; directories that cannot be created
//! turn the corpus in-memory-only; unreadable files are skipped on load.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::campaign::{replay_stream, CampaignTrace};
use crate::tracefile::{save_trace, TraceFileError, TraceReader};

/// Why a corpus I/O operation failed. Corpus errors are conditions to
/// count and report — a fuzzing worker never dies on one.
#[derive(Debug)]
pub enum CorpusError {
    /// A file-system operation failed (full disk, permissions, …).
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// A seed file failed to encode or decode.
    Trace {
        /// The offending file.
        path: PathBuf,
        /// The codec's diagnosis.
        err: TraceFileError,
    },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io { path, err } => write!(f, "corpus i/o at {}: {err}", path.display()),
            CorpusError::Trace { path, err } => {
                write!(f, "corpus seed {}: {err}", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// One admitted input and the footprint that earned it admission.
#[derive(Clone, Debug)]
pub struct CorpusSeed {
    /// Corpus-local id (also the persisted file number).
    pub id: u64,
    /// The input: driver events plus the execution configuration.
    pub trace: CampaignTrace,
    /// Coverage points the admitting execution reached (its delta, not
    /// the process totals) — the scheduler weighs energy over these.
    pub points: Vec<&'static str>,
    /// Ghost-state novelty signature of the admitting execution.
    pub sig: u64,
    /// Where the seed persists, when a corpus directory is configured.
    pub file: Option<PathBuf>,
}

/// The in-memory corpus with its on-disk mirror.
#[derive(Debug)]
pub struct Corpus {
    /// Admitted seeds, in admission order.
    pub seeds: Vec<CorpusSeed>,
    /// Persistence failures absorbed so far (each seed stayed admitted
    /// in memory; only its on-disk mirror is missing).
    pub persist_errors: u64,
    seen_points: HashSet<&'static str>,
    seen_sigs: HashSet<u64>,
    dir: Option<PathBuf>,
    next_id: u64,
    last_error: Option<CorpusError>,
}

impl Corpus {
    /// An empty corpus; creates the directory when one is given. Never
    /// fails: an uncreatable directory degrades the corpus to in-memory
    /// only, recorded as a persistence error ([`Corpus::last_error`]).
    pub fn new(dir: Option<PathBuf>) -> Corpus {
        let mut persist_errors = 0;
        let mut last_error = None;
        let mut next_id = 0;
        let dir = dir.and_then(|d| match std::fs::create_dir_all(&d) {
            Ok(()) => {
                // Resume numbering past any seed file already on disk, so
                // a corpus that re-admits only part of its files (or that
                // imported peer seeds) never overwrites a live one.
                next_id = next_free_id(&d);
                Some(d)
            }
            Err(e) => {
                persist_errors += 1;
                last_error = Some(CorpusError::Io { path: d, err: e });
                None
            }
        });
        Corpus {
            seeds: Vec::new(),
            persist_errors,
            seen_points: HashSet::new(),
            seen_sigs: HashSet::new(),
            dir,
            next_id,
            last_error,
        }
    }

    /// The most recent persistence failure, if any.
    pub fn last_error(&self) -> Option<&CorpusError> {
        self.last_error.as_ref()
    }

    /// Offers an executed input for admission. Admits when it reached a
    /// coverage point or novelty signature the corpus has not seen;
    /// returns the new seed's id, or `None` when the input added
    /// nothing. `existing` names the file a reloaded seed already lives
    /// in, so re-admission on reload does not duplicate it on disk.
    ///
    /// A failure to persist the seed file is absorbed: the seed stays
    /// admitted in memory (its coverage is never lost to a full disk)
    /// and [`Corpus::persist_errors`] counts the degradation.
    pub fn consider(
        &mut self,
        trace: CampaignTrace,
        points: Vec<&'static str>,
        sig: u64,
        existing: Option<PathBuf>,
    ) -> Option<u64> {
        let novel_point = points.iter().any(|p| !self.seen_points.contains(p));
        let novel_sig = !self.seen_sigs.contains(&sig);
        if !novel_point && !novel_sig {
            return None;
        }
        self.seen_points.extend(points.iter().copied());
        self.seen_sigs.insert(sig);
        let id = self.next_id;
        self.next_id += 1;
        let file = match existing {
            Some(f) => Some(f),
            None => self.dir.as_ref().and_then(|d| {
                let path = d.join(format!("seed-{id:06}.pkvmtrace"));
                match save_trace(&path, &trace) {
                    Ok(()) => Some(path),
                    Err(err) => {
                        self.persist_errors += 1;
                        self.last_error = Some(CorpusError::Trace { path, err });
                        None
                    }
                }
            }),
        };
        self.seeds.push(CorpusSeed {
            id,
            trace,
            points,
            sig,
            file,
        });
        Some(id)
    }

    /// Number of distinct coverage points the corpus reaches.
    pub fn points_covered(&self) -> usize {
        self.seen_points.len()
    }

    /// Number of distinct novelty signatures the corpus reaches.
    pub fn sigs_covered(&self) -> usize {
        self.seen_sigs.len()
    }

    /// Computes a minimal-ish seed subset that preserves the corpus's
    /// whole coverage frontier (every seen point and every seen novelty
    /// signature), by greedy set cover: repeatedly keep the seed whose
    /// footprint covers the most still-uncovered items, earliest seed
    /// winning ties. Returns the kept ids, in admission order. The
    /// coordinator runs this before redistributing shards, so a
    /// long-soak corpus stays bounded without losing admitted coverage.
    pub fn distill(&self) -> Vec<u64> {
        let mut need_points: HashSet<&'static str> = self.seen_points.clone();
        let mut need_sigs: HashSet<u64> = self.seen_sigs.clone();
        let mut kept: Vec<u64> = Vec::new();
        let mut available: Vec<&CorpusSeed> = self.seeds.iter().collect();
        while !need_points.is_empty() || !need_sigs.is_empty() {
            let gain = |s: &CorpusSeed| {
                s.points.iter().filter(|p| need_points.contains(*p)).count()
                    + usize::from(need_sigs.contains(&s.sig))
            };
            let Some((best_idx, best_gain)) = available
                .iter()
                .enumerate()
                .map(|(i, s)| (i, gain(s)))
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            else {
                break;
            };
            if best_gain == 0 {
                // Unreachable unless the frontier sets drifted from the
                // seeds (they are only extended at admission); stop
                // rather than loop.
                break;
            }
            let s = available.remove(best_idx);
            for p in &s.points {
                need_points.remove(p);
            }
            need_sigs.remove(&s.sig);
            kept.push(s.id);
        }
        kept.sort_unstable();
        kept
    }
}

/// The first seed id not used by a `seed-NNNNNN.pkvmtrace` file in `dir`
/// (imported peer seeds like `seed-mNNNNNN` carry a non-numeric infix
/// and do not advance the counter).
fn next_free_id(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            name.strip_prefix("seed-")?
                .strip_suffix(".pkvmtrace")?
                .parse::<u64>()
                .ok()
        })
        .map(|n| n + 1)
        .max()
        .unwrap_or(0)
}

/// What a directory scan found: the decodable seeds, and the files that
/// failed to decode (torn writes from a killed peer, bit rot) — skipped,
/// counted, never fatal.
#[derive(Debug, Default)]
pub struct DirScan {
    /// Decodable seeds, in filename order.
    pub loaded: Vec<(PathBuf, CampaignTrace)>,
    /// Files that failed to load, with the codec's diagnosis.
    pub skipped: Vec<CorpusError>,
}

/// The `seed-*.pkvmtrace` files in `dir`, in filename order. A missing
/// or unreadable directory yields an empty list.
fn seed_paths(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seed-") && n.ends_with(".pkvmtrace"))
        })
        .collect();
    paths.sort();
    paths
}

/// Scans every `seed-*.pkvmtrace` in `dir`, in filename order,
/// partitioning decodable seeds from corrupt ones (each streamed
/// through a [`TraceReader`], then materialized — the corpus mutates
/// seeds in memory, so it needs the events). A missing or unreadable
/// directory yields an empty scan.
pub fn scan_dir(dir: &Path) -> DirScan {
    let mut scan = DirScan::default();
    for p in seed_paths(dir) {
        match TraceReader::open(&p).and_then(TraceReader::into_trace) {
            Ok(t) => scan.loaded.push((p, t)),
            Err(err) => scan.skipped.push(CorpusError::Trace { path: p, err }),
        }
    }
    scan
}

/// Loads every `seed-*.pkvmtrace` in `dir`, in filename order. Unreadable
/// or malformed files are skipped, not fatal — a half-written seed from a
/// killed session must not poison the next one.
pub fn load_dir(dir: &Path) -> Vec<(PathBuf, CampaignTrace)> {
    scan_dir(dir).loaded
}

/// Replays every persisted seed in `dir` (in filename order) and folds
/// the per-seed verdicts — file name, steps executed, violation count,
/// panic — into one FNV digest. Each seed streams straight from its
/// [`TraceReader`] into [`replay_stream`], so the digest runs in O(1)
/// memory per seed; a seed that fails to decode anywhere (header or
/// tail) is skipped entirely, exactly the files the old materializing
/// load skipped. Any process replaying the same corpus computes the
/// identical `(seed count, digest)` pair: the cross-process
/// bit-identical-replay check used by both the fuzz and fleet gates.
pub fn replay_digest(dir: &Path) -> (usize, u64) {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |s: &str| {
        for b in s.bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut count = 0usize;
    for path in seed_paths(dir) {
        let Ok(reader) = TraceReader::open(&path) else {
            continue;
        };
        let header = reader.header().clone();
        let Ok(out) = replay_stream(&header, reader) else {
            continue;
        };
        count += 1;
        fold(&format!(
            "{}:{}:{}:{}\n",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            out.steps,
            out.violations.len(),
            out.hyp_panic.as_deref().unwrap_or("-"),
        ));
    }
    (count, digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkvm_ghost::event::{Event, EventRecord};
    use pkvm_ghost::oracle::OracleOpts;
    use pkvm_hyp::machine::MachineConfig;

    fn trace(n_events: usize) -> CampaignTrace {
        CampaignTrace {
            config: MachineConfig::default(),
            oracle_opts: OracleOpts::default(),
            fault_bits: 0,
            chaos: None,
            seeds: Vec::new(),
            events: (0..n_events)
                .map(|i| EventRecord {
                    seq: i as u64,
                    lane: 0,
                    trap: None,
                    t_ns: 0,
                    event: Event::Hvc {
                        cpu: 0,
                        func: 0xc600_0000,
                        args: vec![i as u64],
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn admission_requires_novelty() {
        let mut c = Corpus::new(None);
        assert_eq!(c.consider(trace(1), vec!["a"], 1, None), Some(0));
        // Same points, same sig: rejected.
        assert_eq!(c.consider(trace(2), vec!["a"], 1, None), None);
        // New point admits.
        assert_eq!(c.consider(trace(3), vec!["a", "b"], 1, None), Some(1));
        // Known points but new signature admits.
        assert_eq!(c.consider(trace(4), vec!["b"], 2, None), Some(2));
        assert_eq!(c.seeds.len(), 3);
        assert_eq!(c.points_covered(), 2);
        assert_eq!(c.sigs_covered(), 2);
        assert_eq!(c.persist_errors, 0);
    }

    #[test]
    fn seeds_persist_and_reload_bit_identically() {
        let dir = std::env::temp_dir().join(format!("pkvm-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Corpus::new(Some(dir.clone()));
        c.consider(trace(5), vec!["a"], 1, None);
        c.consider(trace(9), vec!["b"], 2, None);
        let loaded = load_dir(&dir);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].1, trace(5));
        assert_eq!(loaded[1].1, trace(9));
        // A garbage file is skipped — counted, never fatal.
        std::fs::write(dir.join("seed-999999.pkvmtrace"), b"not a trace").unwrap();
        assert_eq!(load_dir(&dir).len(), 2);
        let scan = scan_dir(&dir);
        assert_eq!((scan.loaded.len(), scan.skipped.len()), (2, 1));
        // Re-admitting a loaded seed with its existing path does not
        // write a duplicate file.
        let mut c2 = Corpus::new(Some(dir.clone()));
        for (path, t) in load_dir(&dir) {
            c2.consider(t, vec!["x"], 3, Some(path));
        }
        let n_files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(n_files, 3, "reload duplicated seed files");
        // New admissions resume numbering past every on-disk seed file
        // (even ones this corpus did not re-admit), never overwriting.
        let id = c2.consider(trace(11), vec!["y"], 4, None).unwrap();
        assert!(id >= 1_000_000, "id {id} could collide with seed-999999");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_directory_degrades_instead_of_panicking() {
        // A path that cannot be a directory (its parent is a file).
        let file = std::env::temp_dir().join(format!("pkvm-not-a-dir-{}", std::process::id()));
        std::fs::write(&file, b"occupied").unwrap();
        let mut c = Corpus::new(Some(file.join("corpus")));
        assert_eq!(c.persist_errors, 1);
        assert!(c.last_error().is_some());
        // Admission still works, in memory.
        assert_eq!(c.consider(trace(2), vec!["a"], 1, None), Some(0));
        assert!(c.seeds[0].file.is_none());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn distill_preserves_the_whole_frontier() {
        let mut c = Corpus::new(None);
        // Seed 0 covers {a}, seed 1 covers {a, b}, seed 2 covers {b} with
        // a new sig, seed 3 covers {c}.
        c.consider(trace(1), vec!["a"], 1, None);
        c.consider(trace(2), vec!["b"], 1, None); // novel point b (sig seen)
        c.consider(trace(3), vec!["a", "b"], 2, None); // novel sig only
        c.consider(trace(4), vec!["c"], 2, None);
        let kept = c.distill();
        assert!(kept.len() <= c.seeds.len());
        // The kept subset covers every seen point and sig.
        let mut points = HashSet::new();
        let mut sigs = HashSet::new();
        for s in c.seeds.iter().filter(|s| kept.contains(&s.id)) {
            points.extend(s.points.iter().copied());
            sigs.insert(s.sig);
        }
        assert_eq!(points.len(), c.points_covered());
        assert_eq!(sigs.len(), c.sigs_covered());
        // Seed picking is deterministic.
        assert_eq!(kept, c.distill());
    }
}
