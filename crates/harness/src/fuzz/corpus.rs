//! The persistent seed corpus.
//!
//! A seed is an input (a driver-event sequence wrapped in a
//! [`CampaignTrace`]) whose execution added coverage: a named
//! implementation/spec coverage point nobody in the corpus had reached,
//! or a novel ghost-state signature. Admitted seeds persist as
//! `seed-NNNNNN.pkvmtrace` files in the corpus directory through the
//! ordinary trace codec, so a corpus survives the process and reloads —
//! and replays bit-identically — in the next session.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::campaign::CampaignTrace;
use crate::tracefile::{load_trace, save_trace, TraceFileError};

/// One admitted input and the footprint that earned it admission.
#[derive(Clone, Debug)]
pub struct CorpusSeed {
    /// Corpus-local id (also the persisted file number).
    pub id: u64,
    /// The input: driver events plus the execution configuration.
    pub trace: CampaignTrace,
    /// Coverage points the admitting execution reached (its delta, not
    /// the process totals) — the scheduler weighs energy over these.
    pub points: Vec<&'static str>,
    /// Ghost-state novelty signature of the admitting execution.
    pub sig: u64,
    /// Where the seed persists, when a corpus directory is configured.
    pub file: Option<PathBuf>,
}

/// The in-memory corpus with its on-disk mirror.
#[derive(Debug)]
pub struct Corpus {
    /// Admitted seeds, in admission order.
    pub seeds: Vec<CorpusSeed>,
    seen_points: HashSet<&'static str>,
    seen_sigs: HashSet<u64>,
    dir: Option<PathBuf>,
    next_id: u64,
}

impl Corpus {
    /// An empty corpus; creates the directory when one is given.
    pub fn new(dir: Option<PathBuf>) -> std::io::Result<Corpus> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)?;
        }
        Ok(Corpus {
            seeds: Vec::new(),
            seen_points: HashSet::new(),
            seen_sigs: HashSet::new(),
            dir,
            next_id: 0,
        })
    }

    /// Offers an executed input for admission. Admits when it reached a
    /// coverage point or novelty signature the corpus has not seen;
    /// returns the new seed's id, or `None` when the input added
    /// nothing. `existing` names the file a reloaded seed already lives
    /// in, so re-admission on reload does not duplicate it on disk.
    pub fn consider(
        &mut self,
        trace: CampaignTrace,
        points: Vec<&'static str>,
        sig: u64,
        existing: Option<PathBuf>,
    ) -> Result<Option<u64>, TraceFileError> {
        let novel_point = points.iter().any(|p| !self.seen_points.contains(p));
        let novel_sig = !self.seen_sigs.contains(&sig);
        if !novel_point && !novel_sig {
            return Ok(None);
        }
        self.seen_points.extend(points.iter().copied());
        self.seen_sigs.insert(sig);
        let id = self.next_id;
        self.next_id += 1;
        let file = match existing {
            Some(f) => Some(f),
            None => match &self.dir {
                Some(d) => {
                    let path = d.join(format!("seed-{id:06}.pkvmtrace"));
                    save_trace(&path, &trace)?;
                    Some(path)
                }
                None => None,
            },
        };
        self.seeds.push(CorpusSeed {
            id,
            trace,
            points,
            sig,
            file,
        });
        Ok(Some(id))
    }

    /// Number of distinct coverage points the corpus reaches.
    pub fn points_covered(&self) -> usize {
        self.seen_points.len()
    }

    /// Number of distinct novelty signatures the corpus reaches.
    pub fn sigs_covered(&self) -> usize {
        self.seen_sigs.len()
    }
}

/// Loads every `seed-*.pkvmtrace` in `dir`, in filename order. Unreadable
/// or malformed files are skipped, not fatal — a half-written seed from a
/// killed session must not poison the next one.
pub fn load_dir(dir: &Path) -> Vec<(PathBuf, CampaignTrace)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seed-") && n.ends_with(".pkvmtrace"))
        })
        .collect();
    paths.sort();
    paths
        .into_iter()
        .filter_map(|p| load_trace(&p).ok().map(|t| (p, t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkvm_ghost::event::{Event, EventRecord};
    use pkvm_ghost::oracle::OracleOpts;
    use pkvm_hyp::machine::MachineConfig;

    fn trace(n_events: usize) -> CampaignTrace {
        CampaignTrace {
            config: MachineConfig::default(),
            oracle_opts: OracleOpts::default(),
            fault_bits: 0,
            chaos: None,
            seeds: Vec::new(),
            events: (0..n_events)
                .map(|i| EventRecord {
                    seq: i as u64,
                    lane: 0,
                    trap: None,
                    t_ns: 0,
                    event: Event::Hvc {
                        cpu: 0,
                        func: 0xc600_0000,
                        args: vec![i as u64],
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn admission_requires_novelty() {
        let mut c = Corpus::new(None).unwrap();
        assert_eq!(c.consider(trace(1), vec!["a"], 1, None).unwrap(), Some(0));
        // Same points, same sig: rejected.
        assert_eq!(c.consider(trace(2), vec!["a"], 1, None).unwrap(), None);
        // New point admits.
        assert_eq!(
            c.consider(trace(3), vec!["a", "b"], 1, None).unwrap(),
            Some(1)
        );
        // Known points but new signature admits.
        assert_eq!(c.consider(trace(4), vec!["b"], 2, None).unwrap(), Some(2));
        assert_eq!(c.seeds.len(), 3);
        assert_eq!(c.points_covered(), 2);
        assert_eq!(c.sigs_covered(), 2);
    }

    #[test]
    fn seeds_persist_and_reload_bit_identically() {
        let dir = std::env::temp_dir().join(format!("pkvm-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Corpus::new(Some(dir.clone())).unwrap();
        c.consider(trace(5), vec!["a"], 1, None).unwrap();
        c.consider(trace(9), vec!["b"], 2, None).unwrap();
        let loaded = load_dir(&dir);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].1, trace(5));
        assert_eq!(loaded[1].1, trace(9));
        // A garbage file is skipped, never fatal.
        std::fs::write(dir.join("seed-999999.pkvmtrace"), b"not a trace").unwrap();
        assert_eq!(load_dir(&dir).len(), 2);
        // Re-admitting a loaded seed with its existing path does not
        // write a duplicate file.
        let mut c2 = Corpus::new(Some(dir.clone())).unwrap();
        for (path, t) in load_dir(&dir) {
            c2.consider(t, vec!["x"], 3, Some(path)).unwrap();
        }
        let n_files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(n_files, 3, "reload duplicated seed files");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
