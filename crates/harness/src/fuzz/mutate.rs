//! Structure-aware mutation of driver-event sequences.
//!
//! An input is a flat list of driver events, but it has structure: runs
//! of setup events (parameter-page writes, queued guest ops) terminated
//! by a trap-taking op (a hypercall or a host stage-2 access) form *op
//! groups*, each corresponding to one trap. Every mutator cuts only at
//! group boundaries, so a mutated sequence never orphans setup events
//! mid-group — truncation and splicing preserve trap-boundary
//! well-formedness by construction. The `insert` mutator grows inputs
//! with model-plausible ops: it replays the prefix on a throwaway
//! machine, then lets a fresh [`RandomTester`] (optionally with a biased
//! per-op weight mix) drive a handful of steps whose recorded driver
//! events are spliced in. Parameter mutation perturbs hypercall
//! arguments with values harvested from the sequence itself, biased
//! toward handle- and pfn-shaped constants.

use std::ops::Range;

use pkvm_ghost::event::{Event, EventRecord};
use pkvm_hyp::hypercalls::ALL_HOST_CALLS;

use crate::proxy::Proxy;
use crate::random::{RandomCfg, OP_NAMES};
use crate::rng::{Rng, SliceChoose};

use super::{apply_driver, extend_with_random_steps, FuzzCfg};

/// The mutation families the fuzzer draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// Keep a group-aligned prefix.
    Truncate,
    /// Prefix of one seed + suffix of another, cut at group boundaries.
    Splice,
    /// Insert freshly generated model-plausible ops at a boundary.
    InsertOps,
    /// Perturb one op's parameters in place.
    MutateParams,
}

impl MutationKind {
    /// Every family.
    pub const ALL: [MutationKind; 4] = [
        MutationKind::Truncate,
        MutationKind::Splice,
        MutationKind::InsertOps,
        MutationKind::MutateParams,
    ];

    /// Stable lowercase tag.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::Truncate => "truncate",
            MutationKind::Splice => "splice",
            MutationKind::InsertOps => "insert-ops",
            MutationKind::MutateParams => "mutate-params",
        }
    }
}

/// `true` for the driver events that take a trap (and hence terminate an
/// op group): hypercalls and host stage-2 accesses.
pub fn is_trap_boundary(event: &Event) -> bool {
    matches!(event, Event::Hvc { .. } | Event::HostAccess { .. })
}

/// Splits a driver-event sequence into op groups: each range covers a
/// (possibly empty) run of setup events plus its terminating trap op. A
/// trailing run with no terminator — possible only in hand-built inputs —
/// forms a final, unterminated group.
pub fn op_groups(events: &[EventRecord]) -> Vec<Range<usize>> {
    let mut groups = Vec::new();
    let mut start = 0;
    for (i, r) in events.iter().enumerate() {
        if is_trap_boundary(&r.event) {
            groups.push(start..i + 1);
            start = i + 1;
        }
    }
    if start < events.len() {
        groups.push(start..events.len());
    }
    groups
}

/// A sequence is well-formed when it contains only driver events and
/// every op group ends in a trap boundary (no orphaned setup run).
pub fn is_well_formed(events: &[EventRecord]) -> bool {
    events.iter().all(|r| r.event.is_driver())
        && op_groups(events)
            .iter()
            .all(|g| is_trap_boundary(&events[g.end - 1].event))
}

/// Reassigns contiguous sequence numbers (mutation splices records from
/// different recordings; replay only cares about order, but tooling
/// reads `seq` as a step index).
pub fn renumber(mut events: Vec<EventRecord>) -> Vec<EventRecord> {
    for (i, r) in events.iter_mut().enumerate() {
        r.seq = i as u64;
    }
    events
}

/// Keeps a strict group-aligned prefix (identity on 0- and 1-group
/// inputs).
pub fn truncate(events: &[EventRecord], rng: &mut Rng) -> Vec<EventRecord> {
    let groups = op_groups(events);
    if groups.len() <= 1 {
        return renumber(events.to_vec());
    }
    let keep = rng.gen_range(1..groups.len() as u64) as usize;
    renumber(events[..groups[keep - 1].end].to_vec())
}

/// A group-aligned prefix of `a` followed by a group-aligned suffix of
/// `b`. Either side may contribute zero groups.
pub fn splice(a: &[EventRecord], b: &[EventRecord], rng: &mut Rng) -> Vec<EventRecord> {
    let ga = op_groups(a);
    let gb = op_groups(b);
    if gb.is_empty() {
        return renumber(a.to_vec());
    }
    let cut_a = rng.gen_range(0..=ga.len() as u64) as usize;
    let cut_b = rng.gen_range(0..gb.len() as u64) as usize;
    let prefix_end = if cut_a == 0 { 0 } else { ga[cut_a - 1].end };
    let mut out = a[..prefix_end].to_vec();
    out.extend_from_slice(&b[gb[cut_b].start..]);
    renumber(out)
}

/// Inserts freshly generated model-plausible ops at a group boundary:
/// the prefix replays on a throwaway oracle-free machine so the
/// generator starts from the state the prefix actually produces, then a
/// fresh model-guided tester drives 1–48 steps — half the time with one
/// op's weight boosted to skew the mix (the per-op `op_weights` knob) —
/// and its recorded driver events are spliced in before the suffix.
pub fn insert_ops(cfg: &FuzzCfg, events: &[EventRecord], rng: &mut Rng) -> Vec<EventRecord> {
    let groups = op_groups(events);
    let cut = rng.gen_range(0..=groups.len() as u64) as usize;
    let boundary = if cut == 0 { 0 } else { groups[cut - 1].end };
    let proxy = Proxy::builder()
        .config(cfg.config.clone())
        .with_oracle(false)
        .record(true)
        .boot();
    apply_driver(&proxy.machine, &events[..boundary]);
    // Anything the prefix replay emitted is context, not new input.
    let _ = proxy.events().take_events();
    let mut rcfg = RandomCfg::builder()
        .seed(rng.gen_u64())
        .invalid_fraction(cfg.invalid_fraction);
    if rng.gen_bool(0.5) {
        let op = OP_NAMES.choose(rng).expect("nonempty");
        rcfg = rcfg.op_weight(op, 60.0);
    }
    let steps = rng.gen_range(1..=48u64);
    let fresh = extend_with_random_steps(proxy, rcfg.build(), steps);
    let mut out = events[..boundary].to_vec();
    out.extend(fresh);
    out.extend_from_slice(&events[boundary..]);
    renumber(out)
}

/// Perturbs one op's parameters in place: a hypercall argument (or
/// function id), a host-access address, a parameter-page value, or a
/// guest-op target. Replacement values come from the sequence itself
/// (arguments other ops used — handles, pfns), from bit flips and small
/// deltas, or from handle-/pfn-shaped constants.
pub fn mutate_params(events: &[EventRecord], rng: &mut Rng) -> Vec<EventRecord> {
    let mut out = events.to_vec();
    let candidates: Vec<usize> = out
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            matches!(
                r.event,
                Event::Hvc { .. } | Event::HostAccess { .. } | Event::WriteMem { .. }
            )
        })
        .map(|(i, _)| i)
        .collect();
    let Some(&i) = candidates.choose(rng) else {
        return renumber(out);
    };
    let harvest: Vec<u64> = events
        .iter()
        .flat_map(|r| match &r.event {
            Event::Hvc { args, .. } => args.clone(),
            Event::WriteMem { value, .. } => vec![*value],
            Event::HostAccess { addr, .. } => vec![*addr],
            _ => Vec::new(),
        })
        .collect();
    match &mut out[i].event {
        Event::Hvc { func, args, .. } => {
            if args.is_empty() || rng.gen_bool(0.15) {
                // Retarget the call instead: another ABI function keeps
                // the arguments, exercising its argument checks.
                *func = *ALL_HOST_CALLS.choose(rng).expect("nonempty");
            } else {
                let j = rng.gen_range(0..args.len());
                args[j] = twiddle(args[j], &harvest, rng);
            }
        }
        Event::HostAccess { addr, .. } => *addr = twiddle(*addr, &harvest, rng),
        Event::WriteMem { value, .. } => *value = twiddle(*value, &harvest, rng),
        _ => unreachable!("candidates filter"),
    }
    renumber(out)
}

/// One mutated value: bit flip, small delta, harvested neighbour, or an
/// interesting constant.
fn twiddle(v: u64, harvest: &[u64], rng: &mut Rng) -> u64 {
    const INTERESTING: [u64; 8] = [
        0,
        1,
        u64::MAX,
        0x1000,           // handle-shaped
        0x1001,           // the next handle over
        0x40000,          // DRAM pfn
        0x9000,           // MMIO pfn
        0x0040_0000_0000, // beyond any mapped range
    ];
    match rng.gen_range(0..4u32) {
        0 => v ^ (1 << rng.gen_range(0..64u64)),
        1 => v.wrapping_add(rng.gen_range(0..9u64)).wrapping_sub(4),
        2 => harvest
            .choose(rng)
            .copied()
            .unwrap_or_else(|| rng.gen_u64()),
        _ => *INTERESTING.choose(rng).expect("nonempty"),
    }
}

/// Caps an input to at most `max` events, cutting at a group boundary.
pub fn cap_len(events: Vec<EventRecord>, max: usize) -> Vec<EventRecord> {
    if events.len() <= max {
        return events;
    }
    let mut end = 0;
    for g in op_groups(&events) {
        if g.end > max {
            break;
        }
        end = g.end;
    }
    renumber(events[..end].to_vec())
}
