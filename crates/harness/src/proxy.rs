//! The "hyp-proxy": driving the hypercall API from test code.
//!
//! The paper's security model treats the kernel as untrusted after
//! initialisation, so tests must exercise *arbitrary* hypercalls — but
//! one wants to write them in user space. Their hyp-proxy kernel patch
//! exposes pKVM API calls and kernel memory management to user space;
//! [`Proxy`] plays the same role here: it bundles a booted machine with
//! an optional oracle, a simple host page allocator (the "allocate kernel
//! memory" half), and both well-behaved and raw invocation helpers (the
//! OCaml-library half of §5).

use std::sync::Arc;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::sync::Mutex;
use pkvm_aarch64::walk::Access;
use pkvm_ghost::event::{ChaosKind, Event, EventSink, EventStream};
use pkvm_ghost::oracle::{Oracle, OracleOpts};
use pkvm_ghost::{CheckMode, Verdict, Violation};
use pkvm_hyp::error::Errno;
use pkvm_hyp::faults::FaultSet;
use pkvm_hyp::hypercalls::*;
use pkvm_hyp::machine::{HostAccessFault, Machine, MachineConfig};
use pkvm_hyp::vm::{GuestOp, Handle};

use crate::chaos::{ChaosCfg, ChaosCounters, ChaosHooks, ChaosInjected, StaleTlbPolicy};
use crate::rng::Rng;

/// Proxy construction options.
///
/// Construct with [`Proxy::builder`] (or [`Default`]): the builder keeps
/// call sites valid as options are added.
#[non_exhaustive]
pub struct ProxyOpts {
    /// Machine shape.
    pub config: MachineConfig,
    /// Install the ghost oracle (the `CONFIG_NVHE_GHOST_SPEC=y` build).
    pub with_oracle: bool,
    /// Switches for the installed oracle (ignored without one).
    pub oracle_opts: OracleOpts,
    /// Faults to inject before boot.
    pub faults: FaultSet,
    /// Chaos injection (hook-plane corruption and allocator chaos),
    /// when testing the oracle's own resilience.
    pub chaos: Option<ChaosCfg>,
    /// Retain the full event timeline for replay/persistence (sequence
    /// numbers are assigned either way, so violation ids are stable).
    pub record: bool,
}

impl Default for ProxyOpts {
    fn default() -> Self {
        Self {
            config: MachineConfig::default(),
            with_oracle: true,
            oracle_opts: OracleOpts::default(),
            faults: FaultSet::none(),
            chaos: None,
            record: false,
        }
    }
}

/// Fluent construction of a [`Proxy`]; see [`Proxy::builder`].
#[derive(Default)]
pub struct ProxyBuilder(ProxyOpts);

impl ProxyBuilder {
    /// Sets the machine shape.
    pub fn config(mut self, config: MachineConfig) -> Self {
        self.0.config = config;
        self
    }

    /// Install (or omit) the ghost oracle (default installed).
    pub fn with_oracle(mut self, on: bool) -> Self {
        self.0.with_oracle = on;
        self
    }

    /// Sets the oracle's switches (implies the oracle stays installed).
    pub fn oracle_opts(mut self, opts: OracleOpts) -> Self {
        self.0.oracle_opts = opts;
        self
    }

    /// Sets the oracle's [`CheckMode`] (sugar over
    /// [`oracle_opts`](Self::oracle_opts)): `Inline` checks synchronously
    /// inside each hook, `Pipelined` hands checking to an off-thread
    /// checker behind the execution frontier.
    pub fn check_mode(mut self, mode: CheckMode) -> Self {
        self.0.oracle_opts.check_mode = mode;
        self
    }

    /// Adds faults to inject before boot.
    pub fn faults(mut self, faults: FaultSet) -> Self {
        self.0.faults = faults;
        self
    }

    /// Installs chaos injection (decorating whatever hooks are booted —
    /// the oracle's, or `NoHooks` when the oracle is off).
    pub fn chaos(mut self, chaos: Option<ChaosCfg>) -> Self {
        self.0.chaos = chaos;
        self
    }

    /// Retain the full event timeline (default off: only the bounded
    /// violation/check indexes are kept).
    pub fn record(mut self, on: bool) -> Self {
        self.0.record = on;
        self
    }

    /// Boots the machine and wraps it.
    pub fn boot(self) -> Proxy {
        Proxy::boot(self.0)
    }
}

/// The host page-allocator range a proxy hands pages out of.
#[derive(Debug)]
struct AllocRange {
    next: u64,
    end: u64,
}

/// Allocator misbehaviour state (the [`crate::chaos`] `AllocChaos`
/// family): with probability `p`, an allocation returns a duplicate of a
/// recently granted page instead of a fresh one — pages the caller still
/// owns, so the hypervisor's ownership checks (not the harness) must
/// cope. Per-handle, seeded, so each worker's misbehaviour stream is
/// deterministic.
struct AllocChaos {
    p: f64,
    rng: Rng,
    recent: Vec<u64>,
    counters: Arc<ChaosCounters>,
}

impl AllocChaos {
    /// Perturbs (or passes through) one granted allocation; the flag
    /// reports whether a duplicate was injected.
    fn perturb(&mut self, pfn: u64) -> (u64, bool) {
        if !self.recent.is_empty() && self.rng.gen_bool(self.p) {
            let i = self.rng.gen_range(0..self.recent.len());
            self.counters
                .alloc_faults
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return (self.recent[i], true);
        }
        self.recent.push(pfn);
        if self.recent.len() > 32 {
            self.recent.remove(0);
        }
        (pfn, false)
    }
}

/// A user-space-like handle on the hypervisor under test.
///
/// Cloning is cheap (two `Arc` bumps) and clones share the machine, the
/// oracle *and* the allocator — use [`Proxy::partition`] to split the
/// allocator into disjoint per-worker ranges instead when several
/// threads drive the same machine, so each worker's page stream stays
/// deterministic regardless of the interleaving.
#[derive(Clone)]
pub struct Proxy {
    /// The simulated machine.
    pub machine: Arc<Machine>,
    /// The oracle, when installed.
    pub oracle: Option<Arc<Oracle>>,
    alloc: Arc<Mutex<AllocRange>>,
    worker: usize,
    /// The unified event stream every producer (driver ops, oracle
    /// hooks, chaos injections) records into.
    events: Arc<EventStream>,
    /// The chaos decorator, when chaos was configured at boot.
    chaos: Option<Arc<ChaosHooks>>,
    /// The chaos config, kept so [`Proxy::partition`] can reseed
    /// per-worker allocator chaos.
    chaos_cfg: Option<ChaosCfg>,
    alloc_chaos: Option<Arc<Mutex<AllocChaos>>>,
}

impl Proxy {
    /// Starts a builder; configure the options fluently, then
    /// [`boot`](ProxyBuilder::boot).
    pub fn builder() -> ProxyBuilder {
        ProxyBuilder::default()
    }

    /// Boots a machine per `opts` and wraps it.
    pub fn boot(opts: ProxyOpts) -> Proxy {
        let events = Arc::new(EventStream::new(
            opts.record,
            opts.oracle_opts.violation_cap,
        ));
        let oracle = opts
            .with_oracle
            .then(|| Oracle::with_stream(&opts.config, opts.oracle_opts, events.clone()));
        let faults = Arc::new(opts.faults);
        let inner: Arc<dyn pkvm_hyp::hooks::GhostHooks> = match &oracle {
            Some(o) => o.clone(),
            None => Arc::new(pkvm_hyp::hooks::NoHooks),
        };
        // Chaos decorates whatever hooks boot — the corruption sits
        // between the hypervisor's instrumentation and the oracle.
        let chaos = opts
            .chaos
            .map(|cfg| ChaosHooks::wrap_recorded(inner.clone(), &cfg, events.clone()));
        let hooks: Arc<dyn pkvm_hyp::hooks::GhostHooks> = match &chaos {
            Some(c) => c.clone(),
            None => inner,
        };
        let machine = Machine::boot(opts.config.clone(), hooks, faults);
        // TLB-plane chaos: the stale-translation policy sits inside the
        // machine's TLB, below the hook stream, suppressing broadcast
        // invalidation deliveries to remote CPUs.
        if let (Some(cfg), Some(c)) = (&opts.chaos, &chaos) {
            if cfg.p_stale_tlb > 0.0 {
                machine.tlb.set_policy(Some(Arc::new(StaleTlbPolicy::new(
                    cfg,
                    c.counters(),
                    Some(events.clone()),
                ))));
            }
        }
        // The allocator hands out pages from the middle of the last DRAM
        // region, clear of the carveout at its top.
        let (base, size) = *opts.config.dram.last().expect("config has DRAM");
        let carveout = opts.config.hyp_pool_pages * PAGE_SIZE;
        let start = (base + size / 2) >> 12;
        let end = (base + size - carveout) >> 12;
        assert!(start < end, "DRAM too small for the test allocator");
        let alloc_chaos = opts.chaos.and_then(|cfg| {
            let counters = chaos.as_ref()?.counters();
            (cfg.p_alloc_chaos > 0.0).then(|| {
                Arc::new(Mutex::new(AllocChaos {
                    p: cfg.p_alloc_chaos,
                    rng: Rng::seed_from_u64(cfg.seed ^ 0xa110_cca0),
                    recent: Vec::new(),
                    counters,
                }))
            })
        });
        Proxy {
            machine,
            oracle,
            alloc: Arc::new(Mutex::new(AllocRange { next: start, end })),
            worker: 0,
            events,
            chaos,
            chaos_cfg: opts.chaos,
            alloc_chaos,
        }
    }

    /// Boots with default options (oracle on, no faults).
    pub fn boot_default() -> Proxy {
        Self::boot(ProxyOpts::default())
    }

    /// Splits this proxy's *remaining* allocator range into `n` disjoint
    /// sub-ranges and returns one clone per range, numbered `0..n` (the
    /// worker id, reported in recorded traces). The parent's own range is
    /// consumed: after partitioning, allocations must go through the
    /// returned handles.
    ///
    /// # Panics
    ///
    /// Panics if the remaining range is too small to give every worker a
    /// useful slice.
    pub fn partition(&self, n: usize) -> Vec<Proxy> {
        assert!(n > 0, "cannot partition into zero workers");
        let mut alloc = self.alloc.lock();
        let (start, end) = (alloc.next, alloc.end);
        alloc.next = end;
        drop(alloc);
        let span = (end - start) / n as u64;
        assert!(span > 0, "allocator range too small to partition {n} ways");
        (0..n as u64)
            .map(|i| {
                let lo = start + i * span;
                let hi = if i + 1 == n as u64 { end } else { lo + span };
                // Each worker gets its own seeded allocator-chaos stream
                // so per-worker page streams stay deterministic under
                // any thread interleaving (same property as the range
                // split itself).
                let alloc_chaos = self.chaos_cfg.as_ref().and_then(|cfg| {
                    let counters = self.chaos.as_ref()?.counters();
                    (cfg.p_alloc_chaos > 0.0).then(|| {
                        Arc::new(Mutex::new(AllocChaos {
                            p: cfg.p_alloc_chaos,
                            rng: Rng::seed_from_u64(crate::campaign::worker_seed(
                                cfg.seed ^ 0xa110_cca0,
                                i as usize,
                            )),
                            recent: Vec::new(),
                            counters,
                        }))
                    })
                });
                Proxy {
                    machine: self.machine.clone(),
                    oracle: self.oracle.clone(),
                    alloc: Arc::new(Mutex::new(AllocRange { next: lo, end: hi })),
                    worker: i as usize,
                    events: self.events.clone(),
                    chaos: self.chaos.clone(),
                    chaos_cfg: self.chaos_cfg,
                    alloc_chaos,
                }
            })
            .collect()
    }

    /// This handle's worker id (0 unless produced by [`Proxy::partition`]).
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The unified event stream: every hypercall, parameter-page write,
    /// host access and guest-op injection made through this handle is
    /// emitted (immediately before it executes) for deterministic
    /// replay, interleaved with the oracle's and chaos engine's events.
    pub fn events(&self) -> &Arc<EventStream> {
        &self.events
    }

    fn emit(&self, event: Event) {
        self.events.emit(self.worker as u32, None, event);
    }

    /// Allocates `n` contiguous host pages, returning the first pfn, or
    /// `None` when this handle's range is exhausted. Long campaigns hit
    /// exhaustion as a matter of course; it must degrade into `-ENOMEM`
    /// behaviour, not a panic.
    pub fn try_alloc_pages(&self, n: u64) -> Option<u64> {
        let pfn = {
            let mut alloc = self.alloc.lock();
            if alloc.next + n > alloc.end {
                return None;
            }
            let pfn = alloc.next;
            alloc.next += n;
            pfn
        };
        // Allocator chaos: occasionally hand back a page the caller was
        // already granted. The fresh range is still consumed, so
        // exhaustion (and termination) behave exactly as without chaos.
        if let Some(chaos) = &self.alloc_chaos {
            let (pfn, duped) = chaos.lock().perturb(pfn);
            if duped {
                self.emit(Event::Chaos {
                    cpu: self.worker,
                    kind: ChaosKind::AllocChaos,
                });
            }
            return Some(pfn);
        }
        Some(pfn)
    }

    /// Allocates `n` contiguous host pages, returning the first pfn.
    ///
    /// # Panics
    ///
    /// Panics when the allocator range is exhausted (use
    /// [`Proxy::try_alloc_pages`] where exhaustion is expected).
    pub fn alloc_pages(&self, n: u64) -> u64 {
        self.try_alloc_pages(n)
            .expect("host test allocator exhausted")
    }

    /// Allocates one host page.
    pub fn alloc_page(&self) -> u64 {
        self.alloc_pages(1)
    }

    /// Raw hypercall with arbitrary function id and arguments.
    pub fn hvc(&self, cpu: usize, func: u64, args: &[u64]) -> u64 {
        self.emit(Event::Hvc {
            cpu,
            func,
            args: args.to_vec(),
        });
        self.machine.hvc(cpu, func, args)
    }

    /// Writes host memory (parameter-page setup), recorded for replay.
    ///
    /// The write carries *host* privilege: it goes through the host's
    /// stage 2 (on CPU 0), so writing a page the host no longer owns
    /// faults into the hypervisor like hardware instead of silently
    /// corrupting hypervisor state. Mutated or re-spliced traces
    /// routinely move a once-legitimate write into a context where the
    /// page has been donated away; this keeps such inputs physical.
    pub fn write_mem(&self, pa: PhysAddr, value: u64) {
        self.emit(Event::WriteMem {
            pa: pa.bits(),
            value,
        });
        let _ = self.machine.host_write(0, pa.bits(), value);
    }

    /// Writes physical memory raw, bypassing all translation — the chaos
    /// engine's corruption primitive, recorded for bit-exact replay. Not
    /// a host action: nothing the host driver models may use this.
    pub fn corrupt_mem(&self, pa: PhysAddr, value: u64) {
        self.emit(Event::CorruptMem {
            pa: pa.bits(),
            value,
        });
        self.machine.mem.write_u64(pa, value).expect("RAM");
    }

    /// A host load/store through the host's stage 2, recorded for replay.
    ///
    /// # Errors
    ///
    /// Returns [`HostAccessFault`] if the access faults.
    pub fn host_access(
        &self,
        cpu: usize,
        addr: u64,
        access: Access,
    ) -> Result<u64, HostAccessFault> {
        self.emit(Event::HostAccess { cpu, addr, access });
        self.machine.host_access(cpu, addr, access)
    }

    /// `host_share_hyp` as a result.
    pub fn share(&self, cpu: usize, pfn: u64) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_HOST_SHARE_HYP, &[pfn]))
    }

    /// `host_unshare_hyp` as a result.
    pub fn unshare(&self, cpu: usize, pfn: u64) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_HOST_UNSHARE_HYP, &[pfn]))
    }

    /// `host_reclaim_page` as a result.
    pub fn reclaim(&self, cpu: usize, pfn: u64) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_HOST_RECLAIM_PAGE, &[pfn]))
    }

    /// Well-behaved `init_vm`: writes a parameter page, donates fresh
    /// pages, returns the handle. `-ENOMEM` when the test allocator is
    /// exhausted.
    pub fn init_vm(&self, cpu: usize, nr_vcpus: u64, protected: bool) -> Result<Handle, Errno> {
        let params_pfn = self.try_alloc_pages(1).ok_or(Errno::ENOMEM)?;
        let pa = PhysAddr::from_pfn(params_pfn);
        self.write_mem(pa, nr_vcpus);
        self.write_mem(pa.wrapping_add(8), protected as u64);
        let donate = self.try_alloc_pages(2).ok_or(Errno::ENOMEM)?;
        let ret = self.hvc(cpu, HVC_INIT_VM, &[params_pfn, donate, 2]);
        match Errno::from_ret(ret) {
            Some(e) => Err(e),
            None => Ok(ret as Handle),
        }
    }

    /// Well-behaved `init_vcpu` with a fresh donation. `-ENOMEM` when the
    /// test allocator is exhausted.
    pub fn init_vcpu(&self, cpu: usize, handle: Handle, idx: u64) -> Result<(), Errno> {
        let donate = self.try_alloc_pages(1).ok_or(Errno::ENOMEM)?;
        as_result(self.hvc(cpu, HVC_INIT_VCPU, &[handle as u64, idx, donate]))
    }

    /// `teardown_vm` as a result.
    pub fn teardown(&self, cpu: usize, handle: Handle) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_TEARDOWN_VM, &[handle as u64]))
    }

    /// `vcpu_load` as a result.
    pub fn vcpu_load(&self, cpu: usize, handle: Handle, idx: u64) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_VCPU_LOAD, &[handle as u64, idx]))
    }

    /// `vcpu_put` as a result.
    pub fn vcpu_put(&self, cpu: usize) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_VCPU_PUT, &[]))
    }

    /// `vcpu_run`, returning the exit code.
    pub fn vcpu_run(&self, cpu: usize) -> Result<u64, Errno> {
        let ret = self.hvc(cpu, HVC_VCPU_RUN, &[]);
        match Errno::from_ret(ret) {
            Some(e) => Err(e),
            None => Ok(ret),
        }
    }

    /// Well-behaved memcache top-up with freshly allocated pages.
    /// `-ENOMEM` when the test allocator is exhausted.
    pub fn topup(&self, cpu: usize, nr: u64) -> Result<(), Errno> {
        let pfn = self.try_alloc_pages(nr).ok_or(Errno::ENOMEM)?;
        as_result(self.hvc(cpu, HVC_TOPUP_MEMCACHE, &[pfn << 12, nr]))
    }

    /// Raw memcache top-up with an arbitrary address.
    pub fn topup_raw(&self, cpu: usize, addr: u64, nr: u64) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_TOPUP_MEMCACHE, &[addr, nr]))
    }

    /// `host_map_guest` with a freshly allocated host page; returns the
    /// pfn. `-ENOMEM` when the test allocator is exhausted.
    pub fn map_guest(&self, cpu: usize, gfn: u64) -> Result<u64, Errno> {
        let pfn = self.try_alloc_pages(1).ok_or(Errno::ENOMEM)?;
        as_result(self.hvc(cpu, HVC_HOST_MAP_GUEST, &[pfn, gfn])).map(|()| pfn)
    }

    /// `host_map_guest` with a caller-chosen pfn.
    pub fn map_guest_pfn(&self, cpu: usize, pfn: u64, gfn: u64) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_HOST_MAP_GUEST, &[pfn, gfn]))
    }

    /// `vm_load_firmware`: donates `nr` host pages at `pfn` as the VM's
    /// pvmfw-style firmware region, mapped at `gfn` before any vCPU runs.
    pub fn load_firmware(
        &self,
        cpu: usize,
        handle: Handle,
        pfn: u64,
        gfn: u64,
        nr: u64,
    ) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_VM_LOAD_FIRMWARE, &[handle as u64, pfn, gfn, nr]))
    }

    /// `vcpu_get_reg(n)`: reads a saved register of the loaded vCPU.
    pub fn vcpu_get_reg(&self, cpu: usize, n: u64) -> Result<u64, Errno> {
        let ret = self.hvc(cpu, HVC_VCPU_GET_REG, &[n]);
        match Errno::from_ret(ret) {
            Some(e) => Err(e),
            None => Ok(self.machine.cpus[cpu].lock().regs.get(2)),
        }
    }

    /// `vcpu_set_reg(n, value)`: writes a saved register of the loaded vCPU.
    pub fn vcpu_set_reg(&self, cpu: usize, n: u64, value: u64) -> Result<(), Errno> {
        as_result(self.hvc(cpu, HVC_VCPU_SET_REG, &[n, value]))
    }

    /// Enqueues a guest action, recorded for replay.
    pub fn push_guest_op(&self, handle: Handle, idx: usize, op: GuestOp) -> Result<(), Errno> {
        self.emit(Event::PushGuestOp { handle, idx, op });
        self.machine.push_guest_op(handle, idx, op)
    }

    /// Everything chaos injected so far (`None` without chaos).
    pub fn chaos_injected(&self) -> Option<ChaosInjected> {
        self.chaos.as_ref().map(|c| c.injected())
    }

    /// The shared chaos counters, when chaos is installed (the driver
    /// plane reports its bit flips through them).
    pub fn chaos_counters(&self) -> Option<Arc<ChaosCounters>> {
        self.chaos.as_ref().map(|c| c.counters())
    }

    /// A [`Verdict`] handle over the installed oracle (`None` without
    /// one): `wait()` for the checker to drain, then read the violations
    /// and stats through the handle.
    pub fn verdict(&self) -> Option<Verdict> {
        self.oracle.as_ref().map(|o| o.verdict())
    }

    /// Violations the oracle has recorded (empty without an oracle).
    ///
    /// Synchronises with the checker first (a no-op inline), so the
    /// answer covers everything driven through this handle so far even
    /// in [`CheckMode::Pipelined`].
    pub fn violations(&self) -> Vec<Violation> {
        self.oracle
            .as_ref()
            .map(|o| {
                o.barrier();
                o.violations()
            })
            .unwrap_or_default()
    }

    /// Returns `true` when no violations are recorded and the hypervisor
    /// has not panicked. Synchronises like [`Proxy::violations`].
    pub fn all_clear(&self) -> bool {
        self.violations().is_empty() && self.machine.panicked().is_none()
    }
}

fn as_result(ret: u64) -> Result<(), Errno> {
    match Errno::from_ret(ret) {
        Some(e) => Err(e),
        None if ret == 0 => Ok(()),
        None => Ok(()), // positive results (handles, exit codes) handled by callers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_boot_and_basic_flow() {
        let p = Proxy::boot_default();
        assert!(p.oracle.as_ref().unwrap().check_boot());
        let pfn = p.alloc_page();
        p.share(0, pfn).unwrap();
        p.unshare(0, pfn).unwrap();
        assert!(p.all_clear(), "{:?}", p.violations());
    }

    #[test]
    fn proxy_vm_helpers() {
        let p = Proxy::boot_default();
        let h = p.init_vm(0, 1, true).unwrap();
        p.init_vcpu(0, h, 0).unwrap();
        p.vcpu_load(0, h, 0).unwrap();
        p.topup(0, 8).unwrap();
        let pfn = p.map_guest(0, 0x10).unwrap();
        p.vcpu_put(0).unwrap();
        p.teardown(0, h).unwrap();
        p.reclaim(0, pfn).unwrap();
        assert!(p.all_clear(), "{:?}", p.violations());
    }

    #[test]
    fn allocator_hands_out_distinct_pages() {
        let p = Proxy::boot_default();
        let a = p.alloc_pages(3);
        let b = p.alloc_page();
        assert_eq!(b, a + 3);
    }

    #[test]
    fn partitioned_allocators_are_disjoint_and_consume_the_parent() {
        let p = Proxy::boot_default();
        let parts = p.partition(4);
        assert_eq!(parts.len(), 4);
        // Parent range is consumed.
        assert_eq!(p.try_alloc_pages(1), None);
        // Each worker's allocations stay inside its own slice, disjoint
        // from every other worker's, independent of allocation order.
        let mut seen = std::collections::HashSet::new();
        for part in &parts {
            for _ in 0..8 {
                let pfn = part.try_alloc_pages(1).expect("slice not exhausted");
                assert!(seen.insert(pfn), "pfn {pfn:#x} handed out twice");
            }
        }
        for (i, part) in parts.iter().enumerate() {
            assert_eq!(part.worker(), i);
        }
    }

    #[test]
    fn allocator_exhaustion_degrades_into_enomem() {
        let p = Proxy::boot_default();
        // Drain the allocator, then every helper that needs fresh pages
        // must report -ENOMEM instead of panicking.
        while p.try_alloc_pages(64).is_some() {}
        while p.try_alloc_pages(1).is_some() {}
        assert_eq!(p.init_vm(0, 1, true), Err(Errno::ENOMEM));
        assert_eq!(p.init_vcpu(0, 0x1000, 0), Err(Errno::ENOMEM));
        assert_eq!(p.topup(0, 4), Err(Errno::ENOMEM));
        assert_eq!(p.map_guest(0, 0x10), Err(Errno::ENOMEM));
    }

    #[test]
    fn recorded_handles_capture_the_op_stream() {
        let p = Proxy::builder().record(true).boot();
        let mut cur = p.events().cursor();
        let mut recs = Vec::new();
        p.events().poll_into(&mut cur, &mut recs); // skip boot-time events
        let pfn = p.alloc_page();
        p.share(0, pfn).unwrap();
        // Drain into the same buffer — the long-lived-cursor pattern that
        // avoids a fresh Vec per poll.
        p.events().poll_into(&mut cur, &mut recs);
        let drivers: Vec<_> = recs.iter().filter(|r| r.event.is_driver()).collect();
        assert_eq!(drivers.len(), 1);
        assert_eq!(drivers[0].lane, 0);
        assert!(matches!(
            &drivers[0].event,
            Event::Hvc { cpu: 0, func, args } if *func == HVC_HOST_SHARE_HYP && args == &[pfn]
        ));
        // Polling again appends only what arrived since — no recopying.
        assert_eq!(p.events().poll_into(&mut cur, &mut recs), 0);
    }

    #[test]
    fn proxy_without_oracle_runs_bare() {
        let p = Proxy::builder().with_oracle(false).boot();
        assert!(p.oracle.is_none());
        let pfn = p.alloc_page();
        p.share(0, pfn).unwrap();
        assert!(p.violations().is_empty());
    }
}
