//! Chaos fault-injection engine: does the oracle *fail safe*?
//!
//! The campaigns in [`crate::campaign`] test the hypervisor; this module
//! tests the *oracle*. A production test-oracle deployment (the paper
//! runs on CI hardware for months, §5–6) must survive the world
//! misbehaving around it — corrupted table memory, torn `READ_ONCE`
//! values, instrumentation callbacks that arrive late, twice or not at
//! all, and allocators that hand out garbage. The engine injects exactly
//! those faults, parameterised by family and probability, from a seeded
//! [`ChaosCfg`] so every chaotic run replays deterministically through
//! the existing campaign schedule/replay machinery.
//!
//! Two injection planes:
//!
//! - **Hook plane** ([`ChaosHooks`]): a [`GhostHooks`] decorator wrapped
//!   around the real oracle, perturbing the instrumentation stream —
//!   dropped/duplicated/delayed lock events, torn or stale `READ_ONCE`
//!   calldata. The hypervisor itself is untouched; only what the oracle
//!   *sees* is corrupted.
//! - **Driver plane** ([`ChaosDriver`] + allocator chaos in
//!   [`Proxy`]): bit flips in live page-table memory (the hypervisor's
//!   own pool pages) and misbehaving host allocations (duplicate pages
//!   handed out while still owned). These perturb the machine itself;
//!   flips go through [`Proxy::corrupt_mem`] so they land in the recorded
//!   trace and replay exactly.
//!
//! The [`detection_matrix`] sweep turns this into a mutation-score-style
//! report: per family, how many runs the oracle *detected* (violations),
//! how many it *degraded safely* through (containment/quarantine/budget
//! counters moved, no violation, no crash), and — the hard invariant —
//! that the oracle itself never panics or aborts. Implementation crashes
//! under memory corruption are reported honestly in their own column:
//! with every oracle entry point contained, a worker-thread panic is
//! attributable to the hypervisor or harness, not the oracle.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::sync::Mutex;
use pkvm_aarch64::tlb::{RemoteDelivery, TlbInvalidationPolicy, TlbiScope};
use pkvm_aarch64::{Esr, GprFile};
use pkvm_ghost::event::{ChaosKind, Event, EventSink, EventStream};
use pkvm_hyp::faults::{Fault, FaultSet};
use pkvm_hyp::hooks::{Component, ComponentView, GhostHooks, HookCtx, TransferEdge, VcpuView};
use pkvm_hyp::vm::Handle;

use crate::campaign::{worker_seed, CampaignCfg, CampaignReport};
use crate::proxy::Proxy;
use crate::rng::Rng;

/// The chaos fault families (the mutation operators of the sweep).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChaosFamily {
    /// Single-bit flips in live hypervisor pool memory (page-table
    /// backing store), injected through the recorded-trace write path.
    BitFlip,
    /// Torn or stale `READ_ONCE` values reported to the oracle's
    /// calldata recording.
    TornReadOnce,
    /// Dropped and duplicated lock acquire/release hook events.
    LockEvents,
    /// Host allocator misbehaviour beyond plain exhaustion: duplicate
    /// pages handed out while an earlier allocation still owns them.
    AllocChaos,
    /// Lock hook events delivered late, after intervening hooks.
    DelayedHooks,
    /// Broadcast TLB invalidations whose delivery to a remote CPU is
    /// delayed or dropped, so that CPU keeps serving the retained
    /// translation — cross-CPU staleness.
    StaleTlb,
}

impl ChaosFamily {
    /// Every family, in sweep order.
    pub const ALL: [ChaosFamily; 6] = [
        ChaosFamily::BitFlip,
        ChaosFamily::TornReadOnce,
        ChaosFamily::LockEvents,
        ChaosFamily::AllocChaos,
        ChaosFamily::DelayedHooks,
        ChaosFamily::StaleTlb,
    ];

    /// Stable kebab-case name (report rows, CLI arguments).
    pub fn name(self) -> &'static str {
        match self {
            ChaosFamily::BitFlip => "bit-flip",
            ChaosFamily::TornReadOnce => "torn-read-once",
            ChaosFamily::LockEvents => "lock-events",
            ChaosFamily::AllocChaos => "alloc-chaos",
            ChaosFamily::DelayedHooks => "delayed-hooks",
            ChaosFamily::StaleTlb => "stale-tlb",
        }
    }

    /// Parses a [`ChaosFamily::name`] back.
    pub fn from_name(name: &str) -> Option<ChaosFamily> {
        ChaosFamily::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// Seeded chaos configuration: per-family injection probabilities.
///
/// `Copy` on purpose — the config travels into [`CampaignTrace`]
/// (see [`crate::campaign::CampaignTrace::chaos`]) so a violating
/// chaotic campaign replays with the same chaos stream re-seeded.
/// Construct with [`ChaosCfg::builder`] or [`ChaosCfg::only`]; the
/// default is inert (all probabilities zero).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosCfg {
    /// Seed for every chaos RNG stream (hook plane, driver plane and
    /// per-worker allocator chaos each derive their own sub-stream).
    pub seed: u64,
    /// Per driver step: probability of one bit flip in pool memory.
    pub p_bit_flip: f64,
    /// Per `READ_ONCE`: probability the reported value is torn (one bit
    /// flipped) or stale (a previously observed value for the same tag).
    pub p_torn_read_once: f64,
    /// Per lock event: probability the event is silently dropped.
    pub p_drop_lock_event: f64,
    /// Per lock event: probability the event is delivered twice.
    pub p_dup_lock_event: f64,
    /// Per lock event: probability delivery is delayed past one or two
    /// subsequent hook deliveries (reordering it in the oracle's view).
    pub p_delay_hook: f64,
    /// Per successful host allocation: probability a duplicate of a
    /// recently granted page is returned instead of a fresh one.
    pub p_alloc_chaos: f64,
    /// Per remote CPU per broadcast TLB invalidation: probability the
    /// delivery is delayed (applies at a later settle) or dropped, so
    /// the remote CPU keeps serving the retained entry.
    pub p_stale_tlb: f64,
}

impl Default for ChaosCfg {
    fn default() -> Self {
        ChaosCfg {
            seed: 0xc4a0_5eed,
            p_bit_flip: 0.0,
            p_torn_read_once: 0.0,
            p_drop_lock_event: 0.0,
            p_dup_lock_event: 0.0,
            p_delay_hook: 0.0,
            p_alloc_chaos: 0.0,
            p_stale_tlb: 0.0,
        }
    }
}

impl ChaosCfg {
    /// Starts a builder from the inert defaults.
    pub fn builder() -> ChaosCfgBuilder {
        ChaosCfgBuilder(ChaosCfg::default())
    }

    /// A config exercising exactly one family at its default sweep
    /// intensity, everything else off.
    pub fn only(family: ChaosFamily) -> ChaosCfg {
        let mut cfg = ChaosCfg::default();
        match family {
            ChaosFamily::BitFlip => cfg.p_bit_flip = 0.05,
            ChaosFamily::TornReadOnce => cfg.p_torn_read_once = 0.2,
            ChaosFamily::LockEvents => {
                cfg.p_drop_lock_event = 0.02;
                cfg.p_dup_lock_event = 0.02;
            }
            ChaosFamily::AllocChaos => cfg.p_alloc_chaos = 0.15,
            ChaosFamily::DelayedHooks => cfg.p_delay_hook = 0.05,
            ChaosFamily::StaleTlb => cfg.p_stale_tlb = 0.25,
        }
        cfg
    }

    /// `true` when every injection probability is zero — the config
    /// perturbs nothing and a campaign under it must behave exactly like
    /// one with no chaos at all.
    pub fn is_inert(&self) -> bool {
        self.p_bit_flip == 0.0
            && self.p_torn_read_once == 0.0
            && self.p_drop_lock_event == 0.0
            && self.p_dup_lock_event == 0.0
            && self.p_delay_hook == 0.0
            && self.p_alloc_chaos == 0.0
            && self.p_stale_tlb == 0.0
    }

    /// Returns the config with a different seed (same intensities).
    pub fn reseeded(mut self, seed: u64) -> ChaosCfg {
        self.seed = seed;
        self
    }
}

/// Builder for [`ChaosCfg`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosCfgBuilder(ChaosCfg);

impl ChaosCfgBuilder {
    /// Sets the chaos seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.0.seed = seed;
        self
    }

    /// Sets the per-step bit-flip probability.
    pub fn bit_flip(mut self, p: f64) -> Self {
        self.0.p_bit_flip = p;
        self
    }

    /// Sets the torn/stale `READ_ONCE` probability.
    pub fn torn_read_once(mut self, p: f64) -> Self {
        self.0.p_torn_read_once = p;
        self
    }

    /// Sets the dropped-lock-event probability.
    pub fn drop_lock_event(mut self, p: f64) -> Self {
        self.0.p_drop_lock_event = p;
        self
    }

    /// Sets the duplicated-lock-event probability.
    pub fn dup_lock_event(mut self, p: f64) -> Self {
        self.0.p_dup_lock_event = p;
        self
    }

    /// Sets the delayed-hook probability.
    pub fn delay_hook(mut self, p: f64) -> Self {
        self.0.p_delay_hook = p;
        self
    }

    /// Sets the allocator-chaos probability.
    pub fn alloc_chaos(mut self, p: f64) -> Self {
        self.0.p_alloc_chaos = p;
        self
    }

    /// Sets the stale-TLB (suppressed remote invalidation) probability.
    pub fn stale_tlb(mut self, p: f64) -> Self {
        self.0.p_stale_tlb = p;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ChaosCfg {
        self.0
    }
}

/// Shared injection counters, one per chaos plane/family. The sweep
/// report uses them to confirm chaos actually fired (a family whose
/// counter stayed zero tested nothing).
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Bits flipped in pool memory (driver plane).
    pub bit_flips: AtomicU64,
    /// `READ_ONCE` values torn or staled.
    pub torn_reads: AtomicU64,
    /// Lock events dropped.
    pub dropped_events: AtomicU64,
    /// Lock events duplicated.
    pub duped_events: AtomicU64,
    /// Lock events delayed.
    pub delayed_events: AtomicU64,
    /// Chaotic (duplicate) host allocations.
    pub alloc_faults: AtomicU64,
    /// Remote TLB-invalidation deliveries delayed or dropped.
    pub stale_tlbs: AtomicU64,
}

impl ChaosCounters {
    /// Plain-value snapshot.
    pub fn snapshot(&self) -> ChaosInjected {
        ChaosInjected {
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            torn_reads: self.torn_reads.load(Ordering::Relaxed),
            dropped_events: self.dropped_events.load(Ordering::Relaxed),
            duped_events: self.duped_events.load(Ordering::Relaxed),
            delayed_events: self.delayed_events.load(Ordering::Relaxed),
            alloc_faults: self.alloc_faults.load(Ordering::Relaxed),
            stale_tlbs: self.stale_tlbs.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`ChaosCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosInjected {
    /// See [`ChaosCounters::bit_flips`].
    pub bit_flips: u64,
    /// See [`ChaosCounters::torn_reads`].
    pub torn_reads: u64,
    /// See [`ChaosCounters::dropped_events`].
    pub dropped_events: u64,
    /// See [`ChaosCounters::duped_events`].
    pub duped_events: u64,
    /// See [`ChaosCounters::delayed_events`].
    pub delayed_events: u64,
    /// See [`ChaosCounters::alloc_faults`].
    pub alloc_faults: u64,
    /// See [`ChaosCounters::stale_tlbs`].
    pub stale_tlbs: u64,
}

impl ChaosInjected {
    /// Total injections across all families.
    pub fn total(&self) -> u64 {
        self.bit_flips
            + self.torn_reads
            + self.dropped_events
            + self.duped_events
            + self.delayed_events
            + self.alloc_faults
            + self.stale_tlbs
    }
}

/// A lock event held back for late delivery.
struct DelayedEvent {
    cpu: usize,
    comp: Component,
    view: ComponentView,
    release: bool,
    /// Flush opportunities to skip before delivery; >0 lets other hook
    /// events overtake this one, genuinely reordering the stream.
    hold: u8,
}

/// Mutable hook-plane state, all under one lock so decisions consume a
/// single seeded stream in hook-delivery order.
struct HookChaos {
    rng: Rng,
    /// Last observed `READ_ONCE` value per tag, for stale replays.
    last_read: HashMap<&'static str, u64>,
    delayed: VecDeque<DelayedEvent>,
}

/// A [`GhostHooks`] decorator corrupting the instrumentation stream on
/// its way to the real oracle. Trap boundaries, vCPU transfers and page
/// accounting pass through unmodified — they define the check windows;
/// the chaos targets what the paper identifies as the fragile inputs:
/// lock-event ordering and host-controlled `READ_ONCE` data.
pub struct ChaosHooks {
    inner: Arc<dyn GhostHooks>,
    cfg: ChaosCfg,
    state: Mutex<HookChaos>,
    counters: Arc<ChaosCounters>,
    /// The unified event stream injections are announced on, when wired
    /// through a [`Proxy`] (see [`ChaosHooks::wrap_recorded`]).
    events: Option<Arc<EventStream>>,
}

impl ChaosHooks {
    /// Wraps `inner` with the hook-plane chaos of `cfg`.
    pub fn wrap(inner: Arc<dyn GhostHooks>, cfg: &ChaosCfg) -> Arc<ChaosHooks> {
        Self::build(inner, cfg, None)
    }

    /// Like [`ChaosHooks::wrap`], but every injection is also emitted as
    /// an [`Event::Chaos`] on the unified stream.
    pub fn wrap_recorded(
        inner: Arc<dyn GhostHooks>,
        cfg: &ChaosCfg,
        events: Arc<EventStream>,
    ) -> Arc<ChaosHooks> {
        Self::build(inner, cfg, Some(events))
    }

    fn build(
        inner: Arc<dyn GhostHooks>,
        cfg: &ChaosCfg,
        events: Option<Arc<EventStream>>,
    ) -> Arc<ChaosHooks> {
        Arc::new(ChaosHooks {
            inner,
            cfg: *cfg,
            state: Mutex::new(HookChaos {
                rng: Rng::seed_from_u64(cfg.seed ^ 0x6861_6f73_686f_6f6b),
                last_read: HashMap::new(),
                delayed: VecDeque::new(),
            }),
            counters: Arc::new(ChaosCounters::default()),
            events,
        })
    }

    /// Announces one injection on the unified stream, when wired.
    fn note(&self, cpu: usize, kind: ChaosKind) {
        if let Some(ev) = &self.events {
            ev.emit(cpu as u32, None, Event::Chaos { cpu, kind });
        }
    }

    /// The shared injection counters (also incremented by the driver
    /// plane when wired through a [`Proxy`]).
    pub fn counters(&self) -> Arc<ChaosCounters> {
        self.counters.clone()
    }

    /// Snapshot of everything injected so far.
    pub fn injected(&self) -> ChaosInjected {
        self.counters.snapshot()
    }

    /// Delivers delayed events whose hold expired. Called at the head of
    /// every hook so a held event is overtaken by at least one later
    /// event before it lands.
    fn flush(&self, ctx: &HookCtx<'_>) {
        let due: Vec<DelayedEvent> = {
            let mut st = self.state.lock();
            if st.delayed.is_empty() {
                return;
            }
            let mut due = Vec::new();
            let mut keep = VecDeque::new();
            while let Some(mut ev) = st.delayed.pop_front() {
                if ev.hold == 0 {
                    due.push(ev);
                } else {
                    ev.hold -= 1;
                    keep.push_back(ev);
                }
            }
            st.delayed = keep;
            due
        };
        for ev in due {
            let late = HookCtx {
                mem: ctx.mem,
                cpu: ev.cpu,
            };
            if ev.release {
                self.inner.lock_releasing(&late, ev.comp, &ev.view);
            } else {
                self.inner.lock_acquired(&late, ev.comp, &ev.view);
            }
        }
    }

    /// One drop/dup/delay decision for a lock event; delivers (or not)
    /// to the inner hooks.
    fn lock_event(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView, release: bool) {
        self.flush(ctx);
        let (drop_it, dup_it, delay) = {
            let mut st = self.state.lock();
            let drop_it =
                self.cfg.p_drop_lock_event > 0.0 && st.rng.gen_bool(self.cfg.p_drop_lock_event);
            let dup_it =
                self.cfg.p_dup_lock_event > 0.0 && st.rng.gen_bool(self.cfg.p_dup_lock_event);
            let delay = self.cfg.p_delay_hook > 0.0 && st.rng.gen_bool(self.cfg.p_delay_hook);
            if !drop_it && delay {
                let hold = st.rng.gen_range(1..=2u32) as u8;
                st.delayed.push_back(DelayedEvent {
                    cpu: ctx.cpu,
                    comp,
                    view: view.clone(),
                    release,
                    hold,
                });
            }
            (drop_it, dup_it, delay)
        };
        if drop_it {
            self.counters.dropped_events.fetch_add(1, Ordering::Relaxed);
            self.note(ctx.cpu, ChaosKind::DroppedLock);
            return;
        }
        if delay {
            self.counters.delayed_events.fetch_add(1, Ordering::Relaxed);
            self.note(ctx.cpu, ChaosKind::DelayedHook);
            return;
        }
        if release {
            self.inner.lock_releasing(ctx, comp, view);
        } else {
            self.inner.lock_acquired(ctx, comp, view);
        }
        if dup_it {
            self.counters.duped_events.fetch_add(1, Ordering::Relaxed);
            self.note(ctx.cpu, ChaosKind::DupedLock);
            if release {
                self.inner.lock_releasing(ctx, comp, view);
            } else {
                self.inner.lock_acquired(ctx, comp, view);
            }
        }
    }
}

impl GhostHooks for ChaosHooks {
    fn trap_enter(
        &self,
        ctx: &HookCtx<'_>,
        esr: Esr,
        fault_ipa: Option<u64>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
        self.flush(ctx);
        self.inner.trap_enter(ctx, esr, fault_ipa, regs, loaded);
    }

    fn trap_exit(
        &self,
        ctx: &HookCtx<'_>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
        self.flush(ctx);
        self.inner.trap_exit(ctx, regs, loaded);
    }

    fn lock_acquired(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {
        self.lock_event(ctx, comp, view, false);
    }

    fn lock_releasing(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {
        self.lock_event(ctx, comp, view, true);
    }

    fn vcpu_loaded(&self, ctx: &HookCtx<'_>, vm: Handle, vcpu_idx: usize, view: &VcpuView) {
        self.flush(ctx);
        self.inner.vcpu_loaded(ctx, vm, vcpu_idx, view);
    }

    fn vcpu_put(&self, ctx: &HookCtx<'_>, vm: Handle, vcpu_idx: usize, view: &VcpuView) {
        self.flush(ctx);
        self.inner.vcpu_put(ctx, vm, vcpu_idx, view);
    }

    fn read_once(&self, ctx: &HookCtx<'_>, tag: &'static str, value: u64) {
        self.flush(ctx);
        let (reported, corrupt) = {
            let mut st = self.state.lock();
            let corrupt =
                self.cfg.p_torn_read_once > 0.0 && st.rng.gen_bool(self.cfg.p_torn_read_once);
            let reported = if corrupt {
                // Half stale (replay the previous value for this tag,
                // when one exists), half torn (one bit flipped).
                let stale = st.last_read.get(tag).copied();
                if st.rng.gen_bool(0.5) {
                    stale.unwrap_or(value ^ (1 << st.rng.gen_range(0..64u64)))
                } else {
                    value ^ (1 << st.rng.gen_range(0..64u64))
                }
            } else {
                value
            };
            st.last_read.insert(tag, value);
            if corrupt {
                self.counters.torn_reads.fetch_add(1, Ordering::Relaxed);
            }
            (reported, corrupt)
        };
        if corrupt {
            self.note(ctx.cpu, ChaosKind::TornReadOnce);
        }
        self.inner.read_once(ctx, tag, reported);
    }

    fn table_page_alloc(&self, ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {
        self.flush(ctx);
        self.inner.table_page_alloc(ctx, comp, page);
    }

    fn table_page_free(&self, ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {
        self.flush(ctx);
        self.inner.table_page_free(ctx, comp, page);
    }

    // The break-before-make instrumentation (downgrade, TLBI, DSB)
    // passes through untouched, like trap boundaries: corrupting it
    // would blame the hypervisor for the harness's own noise. The
    // stale-TLB family injects below the hooks, inside the TLB itself
    // (see [`StaleTlbPolicy`]), so the spec check sees the true
    // invalidation sequence while the hardware model misbehaves.
    fn pte_downgrade(&self, ctx: &HookCtx<'_>, vmid: u16, ia: u64, nr_pages: u64) {
        self.flush(ctx);
        self.inner.pte_downgrade(ctx, vmid, ia, nr_pages);
    }

    fn tlbi(&self, ctx: &HookCtx<'_>, vmid: u16, ia: u64, nr_pages: u64, broadcast: bool) {
        self.flush(ctx);
        self.inner.tlbi(ctx, vmid, ia, nr_pages, broadcast);
    }

    fn dsb(&self, ctx: &HookCtx<'_>) {
        self.flush(ctx);
        self.inner.dsb(ctx);
    }

    // The transfer-protocol and firmware-protection instrumentation also
    // passes through untouched, for the same reason as the TLB hooks: it
    // reports what the hypervisor *committed*, and corrupting it would
    // manufacture protocol violations the hypervisor never performed.
    fn transfer(&self, ctx: &HookCtx<'_>, edge: TransferEdge, pfn: u64, nr: u64, dirty: bool) {
        self.flush(ctx);
        self.inner.transfer(ctx, edge, pfn, nr, dirty);
    }

    fn firmware_donated(&self, ctx: &HookCtx<'_>, handle: Handle, uniq: u64, pfn: u64, nr: u64) {
        self.flush(ctx);
        self.inner.firmware_donated(ctx, handle, uniq, pfn, nr);
    }

    fn host_regain(&self, ctx: &HookCtx<'_>, pfn: u64, nr: u64) {
        self.flush(ctx);
        self.inner.host_regain(ctx, pfn, nr);
    }

    fn hyp_panic(&self, ctx: &HookCtx<'_>, reason: &str) {
        self.flush(ctx);
        self.inner.hyp_panic(ctx, reason);
    }

    fn wants_write_log(&self) -> bool {
        self.inner.wants_write_log()
    }
}

/// The TLB-plane chaos ([`ChaosFamily::StaleTlb`]): installed as the
/// machine's [`TlbInvalidationPolicy`]. With probability `p_stale_tlb`
/// a broadcast invalidation's delivery to one remote CPU is delayed
/// (half the time — it lands at a later [`TlbSet::settle`], which the
/// campaign's [`ChaosDriver`] ticks) or dropped outright, so that CPU
/// keeps serving the retained translation.
///
/// Soundness: the TLB core never fabricates — a suppressed delivery
/// retains an entry a real walk filled and marks it stale, and every
/// stale serve is counted ([`TlbSet::stale_served`]) against a recorded
/// suppression ([`TlbSet::suppressed_remote`]). The oracle's
/// break-before-make check reads the hook stream, which this plane does
/// not touch, so chaos staleness alone can never produce a
/// `break-before-make` violation.
///
/// [`TlbSet::settle`]: pkvm_aarch64::tlb::TlbSet::settle
/// [`TlbSet::stale_served`]: pkvm_aarch64::tlb::TlbSet::stale_served
/// [`TlbSet::suppressed_remote`]: pkvm_aarch64::tlb::TlbSet::suppressed_remote
pub struct StaleTlbPolicy {
    rng: Mutex<Rng>,
    p: f64,
    counters: Arc<ChaosCounters>,
    /// The unified event stream injections are announced on, when wired.
    events: Option<Arc<EventStream>>,
}

impl StaleTlbPolicy {
    /// A policy drawing from `cfg`'s seed; install with
    /// [`TlbSet::set_policy`](pkvm_aarch64::tlb::TlbSet::set_policy).
    pub fn new(
        cfg: &ChaosCfg,
        counters: Arc<ChaosCounters>,
        events: Option<Arc<EventStream>>,
    ) -> StaleTlbPolicy {
        StaleTlbPolicy {
            rng: Mutex::new(Rng::seed_from_u64(cfg.seed ^ 0x57a1_e71b)),
            p: cfg.p_stale_tlb,
            counters,
            events,
        }
    }
}

impl TlbInvalidationPolicy for StaleTlbPolicy {
    fn remote(&self, _issuer: usize, target: usize, _scope: &TlbiScope) -> RemoteDelivery {
        let (suppress, delay) = {
            let mut rng = self.rng.lock();
            let suppress = self.p > 0.0 && rng.gen_bool(self.p);
            let delay = suppress && rng.gen_bool(0.5);
            (suppress, delay)
        };
        if !suppress {
            return RemoteDelivery::Deliver;
        }
        self.counters.stale_tlbs.fetch_add(1, Ordering::Relaxed);
        if let Some(ev) = &self.events {
            ev.emit(
                target as u32,
                None,
                Event::Chaos {
                    cpu: target,
                    kind: ChaosKind::StaleTlb,
                },
            );
        }
        if delay {
            RemoteDelivery::Delay
        } else {
            RemoteDelivery::Drop
        }
    }
}

/// Driver-plane chaos: seeded per worker, stepped by the campaign loop
/// between tester steps. Bit flips target the hypervisor's pool pages
/// (the memory backing every stage 1/stage 2 translation table) and go
/// through [`Proxy::corrupt_mem`] — the raw, translation-bypassing
/// corruption primitive — so each flip is a recorded `CorruptMem` trace
/// op and replays bit-exactly.
pub struct ChaosDriver {
    rng: Rng,
    p_bit_flip: f64,
    /// Non-zero when the stale-TLB family is active: each step also
    /// settles one random CPU's delayed invalidations, so
    /// [`RemoteDelivery::Delay`] means *late*, not *never*.
    stale_tlb: bool,
    flips: u64,
}

impl ChaosDriver {
    /// A driver for `worker`, deriving its stream from the chaos seed.
    pub fn new(cfg: &ChaosCfg, worker: usize) -> ChaosDriver {
        ChaosDriver {
            rng: Rng::seed_from_u64(worker_seed(cfg.seed ^ 0xb17f_11b5, worker)),
            p_bit_flip: cfg.p_bit_flip,
            stale_tlb: cfg.p_stale_tlb > 0.0,
            flips: 0,
        }
    }

    /// One chaos opportunity: with the configured probability, flip one
    /// bit of one word of a *live* translation table. The driver starts
    /// at a root the hypervisor is actively using (the host's stage 2 or
    /// pKVM's stage 1) and random-descends through table descriptors, so
    /// flips land in page-table memory that matters rather than in free
    /// pool pages. Returns `true` if a flip was injected.
    pub fn step(&mut self, proxy: &Proxy) -> bool {
        if self.stale_tlb {
            // Tick the delayed-invalidation clock: one random CPU's
            // pending deliveries land, bounding the staleness window to
            // a few tester steps instead of forever.
            let m = &proxy.machine;
            if self.rng.gen_bool(0.5) {
                let cpu = self.rng.gen_range(0..m.tlb.nr_cpus() as u64) as usize;
                m.tlb.settle(cpu);
            }
        }
        if self.p_bit_flip <= 0.0 || !self.rng.gen_bool(self.p_bit_flip) {
            return false;
        }
        let m = &proxy.machine;
        let (pool_pfn, pool_pages) = m.state.hyp_range;
        if pool_pages == 0 {
            return false;
        }
        let pool = pool_pfn..pool_pfn + pool_pages;
        let root = if self.rng.gen_bool(0.5) {
            m.state.host_pgt.lock().root
        } else {
            m.state.hyp_pgt.lock().root
        };
        let mut page = root;
        for _ in 0..4 {
            let word = self.rng.gen_range(0..PAGE_SIZE / 8);
            let pa = page.wrapping_add(word * 8);
            let Ok(val) = m.mem.read_u64(pa) else {
                return false;
            };
            // Arm descriptor: bits [1:0] == 0b11 marks a next-level
            // table (at non-leaf levels); follow it sometimes so deeper
            // tables get corrupted too, else flip right here.
            let next = (val >> 12) & 0xf_ffff_ffff;
            if val & 0b11 == 0b11 && pool.contains(&next) && self.rng.gen_bool(0.7) {
                page = PhysAddr::from_pfn(next);
                continue;
            }
            let bit = self.rng.gen_range(0..64u64);
            proxy.corrupt_mem(pa, val ^ (1 << bit));
            proxy.events().emit(
                proxy.worker() as u32,
                None,
                Event::Chaos {
                    cpu: proxy.worker(),
                    kind: ChaosKind::BitFlip,
                },
            );
            self.flips += 1;
            if let Some(c) = proxy.chaos_counters() {
                c.bit_flips.fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        false
    }

    /// Bits flipped so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }
}

/// How one chaotic campaign run ended, in detection-matrix terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunVerdict {
    /// The oracle reported at least one violation (or the hypervisor's
    /// own `BUG()` fired): the injected fault was *detected*.
    Detected,
    /// A worker thread panicked with no violation reported: the
    /// *implementation or harness* crashed under corruption. Not an
    /// oracle failure — every oracle entry point runs contained — but
    /// reported honestly in its own column.
    ImplPanic,
    /// No violation, but the oracle's resilience counters moved:
    /// containment, quarantine or budget machinery absorbed the fault
    /// and said so. *Degraded but safe.*
    DegradedSafe,
    /// The run finished clean with no degradation recorded: the fault
    /// was absorbed silently (or never reached anything that matters).
    Silent,
}

/// Classifies one campaign run for the detection matrix.
pub fn classify(report: &CampaignReport) -> RunVerdict {
    if !report.violations.is_empty() || report.hyp_panic.is_some() {
        RunVerdict::Detected
    } else if report.workers.iter().any(|w| w.panicked.is_some()) {
        RunVerdict::ImplPanic
    } else if report.resilience.degraded() {
        RunVerdict::DegradedSafe
    } else {
        RunVerdict::Silent
    }
}

/// One family's row of the detection matrix.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// The chaos family swept.
    pub family: ChaosFamily,
    /// Campaign runs performed.
    pub runs: u32,
    /// Total injections across the runs (from [`ChaosCounters`]).
    pub injected: u64,
    /// Runs ending [`RunVerdict::Detected`].
    pub detected: u32,
    /// Runs ending [`RunVerdict::DegradedSafe`].
    pub degraded_safe: u32,
    /// Runs ending [`RunVerdict::ImplPanic`].
    pub impl_panics: u32,
    /// Runs ending [`RunVerdict::Silent`].
    pub silent: u32,
    /// Oracle panics *contained* across the runs (each one reported as
    /// an `oracle-internal` violation, never propagated).
    pub contained: u64,
}

/// The chaos sweep report.
#[derive(Clone, Debug)]
pub struct ChaosMatrix {
    /// One row per swept family.
    pub rows: Vec<MatrixRow>,
    /// Total oracle panics contained across the whole sweep. Contained
    /// panics are *fine* (they are the containment layer working); what
    /// must be zero is oracle panics *escaping* — see
    /// [`ChaosMatrix::fail_safe`].
    pub contained_total: u64,
}

impl ChaosMatrix {
    /// The hard invariant of the sweep: every run either detected its
    /// fault, degraded safely, finished silent, or crashed in the
    /// *implementation* — the oracle never took the process down. With
    /// every oracle entry point contained, all runs classify into those
    /// four bins; `fail_safe` double-checks the books balance.
    pub fn fail_safe(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.detected + r.degraded_safe + r.impl_panics + r.silent == r.runs)
    }

    /// Renders the matrix as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>9} {:>9} {:>10} {:>11} {:>7} {:>10}",
            "family",
            "runs",
            "injected",
            "detected",
            "degraded",
            "impl-panic",
            "silent",
            "contained"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:>5} {:>9} {:>9} {:>10} {:>11} {:>7} {:>10}",
                r.family.name(),
                r.runs,
                r.injected,
                r.detected,
                r.degraded_safe,
                r.impl_panics,
                r.silent,
                r.contained,
            );
        }
        let _ = writeln!(
            out,
            "oracle panics contained (reported, never propagated): {}",
            self.contained_total
        );
        let _ = writeln!(
            out,
            "fail-safe invariant (no oracle panic escaped): {}",
            if self.fail_safe() { "HELD" } else { "BROKEN" }
        );
        out
    }
}

/// Detection-matrix sweep shape.
#[derive(Clone, Copy, Debug)]
pub struct MatrixCfg {
    /// Campaign runs per family.
    pub runs_per_family: u32,
    /// Base seed; each run derives its own campaign and chaos seeds.
    pub base_seed: u64,
    /// Steps per worker per run.
    pub steps: u64,
    /// Workers per run.
    pub workers: usize,
}

impl Default for MatrixCfg {
    fn default() -> Self {
        MatrixCfg {
            runs_per_family: 3,
            base_seed: 0xc405,
            steps: 250,
            workers: 2,
        }
    }
}

/// Runs the chaos detection matrix: for every family, several campaigns
/// on the *clean* hypervisor with only that family active, classified
/// per [`classify`]. A clean hypervisor means every detection is the
/// oracle noticing *injected* corruption — the mutation-score analogy.
pub fn detection_matrix(cfg: &MatrixCfg) -> ChaosMatrix {
    let mut rows = Vec::new();
    let mut contained_total = 0;
    for (fi, family) in ChaosFamily::ALL.into_iter().enumerate() {
        let mut row = MatrixRow {
            family,
            runs: cfg.runs_per_family,
            injected: 0,
            detected: 0,
            degraded_safe: 0,
            impl_panics: 0,
            silent: 0,
            contained: 0,
        };
        for run in 0..cfg.runs_per_family {
            let mix = worker_seed(cfg.base_seed, fi * 1000 + run as usize);
            let chaos = ChaosCfg::only(family).reseeded(mix ^ 0xc4a0);
            let report = CampaignCfg::builder()
                .workers(cfg.workers)
                .steps_per_worker(cfg.steps)
                .base_seed(mix)
                .stop_on_violation(false)
                .record_trace(false)
                .chaos(chaos)
                .run();
            row.injected += report.chaos_injected.map(|c| c.total()).unwrap_or(0);
            row.contained += report.resilience.contained_panics;
            contained_total += report.resilience.contained_panics;
            match classify(&report) {
                RunVerdict::Detected => row.detected += 1,
                RunVerdict::ImplPanic => row.impl_panics += 1,
                RunVerdict::DegradedSafe => row.degraded_safe += 1,
                RunVerdict::Silent => row.silent += 1,
            }
        }
        rows.push(row);
    }
    ChaosMatrix {
        rows,
        contained_total,
    }
}

/// One cell of the mutation mini-sweep: does the oracle still catch a
/// *known hypervisor bug* while a chaos family is actively corrupting
/// its inputs?
#[derive(Clone, Debug)]
pub struct MutationCell {
    /// The injected hypervisor fault.
    pub fault: Fault,
    /// The concurrently active chaos family.
    pub family: ChaosFamily,
    /// Whether the campaign still detected the fault.
    pub detected: bool,
    /// Oracle panics contained during the run.
    pub contained: u64,
    /// Whether any worker thread panicked (implementation crash).
    pub impl_panic: bool,
}

/// Runs the fault × chaos-family mutation sweep: each cell injects one
/// known bug *and* one chaos family, asking whether detection survives
/// the noise. Returns the cells in row-major (fault-major) order.
pub fn mutation_sweep(
    faults: &[Fault],
    families: &[ChaosFamily],
    base_seed: u64,
    steps: u64,
) -> Vec<MutationCell> {
    let mut cells = Vec::new();
    for (bi, &fault) in faults.iter().enumerate() {
        for (fi, &family) in families.iter().enumerate() {
            let mix = worker_seed(base_seed, bi * 100 + fi);
            let set = FaultSet::none();
            set.inject(fault);
            let report = CampaignCfg::builder()
                .workers(2)
                .steps_per_worker(steps)
                .base_seed(mix)
                .faults(&set)
                .record_trace(false)
                .chaos(ChaosCfg::only(family).reseeded(mix ^ 0xc4a0))
                .run();
            cells.push(MutationCell {
                fault,
                family,
                detected: !report.violations.is_empty() || report.hyp_panic.is_some(),
                contained: report.resilience.contained_panics,
                impl_panic: report.workers.iter().any(|w| w.panicked.is_some()),
            });
        }
    }
    cells
}

/// Renders mutation-sweep cells as an aligned table plus a score line.
pub fn render_mutation(cells: &[MutationCell]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:<16} {:>9} {:>10} {:>11}",
        "fault", "chaos", "detected", "contained", "impl-panic"
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{:<28} {:<16} {:>9} {:>10} {:>11}",
            format!("{:?}", c.fault),
            c.family.name(),
            if c.detected { "yes" } else { "NO" },
            c.contained,
            if c.impl_panic { "yes" } else { "-" },
        );
    }
    let caught = cells.iter().filter(|c| c.detected).count();
    let _ = writeln!(
        out,
        "mutation score under chaos: {caught}/{} cells detected",
        cells.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkvm_aarch64::PhysMem;

    #[test]
    fn family_names_round_trip() {
        for f in ChaosFamily::ALL {
            assert_eq!(ChaosFamily::from_name(f.name()), Some(f));
        }
        assert_eq!(ChaosFamily::from_name("nonsense"), None);
    }

    #[test]
    fn only_configs_are_single_family_and_default_is_inert() {
        assert!(ChaosCfg::default().is_inert());
        for f in ChaosFamily::ALL {
            assert!(
                !ChaosCfg::only(f).is_inert(),
                "{} config is inert",
                f.name()
            );
        }
    }

    /// Records every delivery so the decorator's perturbations are
    /// observable.
    #[derive(Default)]
    struct Recorder {
        lock_events: AtomicU64,
        reads: Mutex<Vec<u64>>,
    }

    impl GhostHooks for Recorder {
        fn lock_acquired(&self, _: &HookCtx<'_>, _: Component, _: &ComponentView) {
            self.lock_events.fetch_add(1, Ordering::Relaxed);
        }
        fn lock_releasing(&self, _: &HookCtx<'_>, _: Component, _: &ComponentView) {
            self.lock_events.fetch_add(1, Ordering::Relaxed);
        }
        fn read_once(&self, _: &HookCtx<'_>, _: &'static str, value: u64) {
            self.reads.lock().push(value);
        }
    }

    #[test]
    fn inert_chaos_is_a_transparent_decorator() {
        let rec = Arc::new(Recorder::default());
        let chaos = ChaosHooks::wrap(rec.clone(), &ChaosCfg::default());
        let mem = PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let view = ComponentView::Host {
            root: PhysAddr::new(0x1000),
        };
        for i in 0..100u64 {
            chaos.lock_acquired(&ctx, Component::Host, &view);
            chaos.read_once(&ctx, "tag", i);
            chaos.lock_releasing(&ctx, Component::Host, &view);
        }
        assert_eq!(rec.lock_events.load(Ordering::Relaxed), 200);
        assert_eq!(*rec.reads.lock(), (0..100).collect::<Vec<u64>>());
        assert_eq!(chaos.injected(), ChaosInjected::default());
    }

    #[test]
    fn lock_event_chaos_perturbs_the_delivered_stream() {
        let rec = Arc::new(Recorder::default());
        let cfg = ChaosCfg::builder()
            .seed(7)
            .drop_lock_event(0.2)
            .dup_lock_event(0.2)
            .build();
        let chaos = ChaosHooks::wrap(rec.clone(), &cfg);
        let mem = PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let view = ComponentView::Host {
            root: PhysAddr::new(0x1000),
        };
        for _ in 0..200u64 {
            chaos.lock_acquired(&ctx, Component::Host, &view);
        }
        let injected = chaos.injected();
        assert!(injected.dropped_events > 0, "no drops in 200 events");
        assert!(injected.duped_events > 0, "no dups in 200 events");
        let delivered = rec.lock_events.load(Ordering::Relaxed);
        assert_eq!(
            delivered,
            200 - injected.dropped_events + injected.duped_events
        );
    }

    #[test]
    fn delayed_events_are_delivered_late_not_lost() {
        let rec = Arc::new(Recorder::default());
        let cfg = ChaosCfg::builder().seed(11).delay_hook(0.5).build();
        let chaos = ChaosHooks::wrap(rec.clone(), &cfg);
        let mem = PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let view = ComponentView::Host {
            root: PhysAddr::new(0x1000),
        };
        for _ in 0..100u64 {
            chaos.lock_acquired(&ctx, Component::Host, &view);
        }
        // Enough quiet hooks to flush every held event (max hold is 2).
        for _ in 0..4 {
            chaos.trap_enter(&ctx, Esr::hvc64(0), None, &GprFile::default(), None);
        }
        let injected = chaos.injected();
        assert!(injected.delayed_events > 0, "no delays in 100 events");
        // Every event eventually arrives: delayed, not dropped.
        assert_eq!(rec.lock_events.load(Ordering::Relaxed), 100);
    }

    fn run_reads(seed: u64, n: u64) -> (Vec<u64>, ChaosInjected) {
        let rec = Arc::new(Recorder::default());
        let cfg = ChaosCfg::builder().seed(seed).torn_read_once(0.3).build();
        let chaos = ChaosHooks::wrap(rec.clone(), &cfg);
        let mem = PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        for i in 0..n {
            chaos.read_once(&ctx, "tag", i);
        }
        let reads = rec.reads.lock().clone();
        (reads, chaos.injected())
    }

    #[test]
    fn torn_reads_corrupt_values_and_replay_per_seed() {
        let (reads, injected) = run_reads(3, 200);
        assert_eq!(reads.len(), 200);
        assert!(injected.torn_reads > 0, "no torn reads in 200");
        let clean = (0..200).collect::<Vec<u64>>();
        assert_ne!(reads, clean, "torn reads never changed a value");
        // Same seed, same corruption stream — the determinism that makes
        // chaotic campaigns replayable.
        let (again, injected2) = run_reads(3, 200);
        assert_eq!(reads, again);
        assert_eq!(injected, injected2);
        // Different seed, different stream.
        let (other, _) = run_reads(4, 200);
        assert_ne!(reads, other);
    }

    #[test]
    fn driver_bit_flips_are_recorded_and_stay_in_ram() {
        let p = Proxy::builder().record(true).boot();
        let mut cur = p.events().cursor();
        p.events().poll(&mut cur); // skip boot-time events
        let cfg = ChaosCfg::builder().seed(9).bit_flip(1.0).build();
        let mut driver = ChaosDriver::new(&cfg, 0);
        for _ in 0..32 {
            driver.step(&p);
        }
        // With p = 1 the only misses are descents that never settled on
        // a word; most steps must flip.
        assert!(
            driver.flips() >= 16,
            "only {} flips in 32 steps",
            driver.flips()
        );
        let recs = p.events().poll(&mut cur);
        let writes: Vec<u64> = recs
            .iter()
            .filter_map(|r| match r.event {
                Event::CorruptMem { pa, .. } => Some(pa),
                _ => None,
            })
            .collect();
        assert_eq!(writes.len() as u64, driver.flips());
        // Every flip is also tagged on the stream, so trace consumers can
        // tell an injected write from a driver's parameter-page setup.
        let tagged = recs
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    Event::Chaos {
                        kind: ChaosKind::BitFlip,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(tagged as u64, driver.flips());
        let (pool_pfn, pool_pages) = p.machine.state.hyp_range;
        for pa in writes {
            let pfn = pa >> 12;
            assert!(
                (pool_pfn..pool_pfn + pool_pages).contains(&pfn),
                "flip at {pa:#x} landed outside the pool"
            );
        }
    }

    #[test]
    fn stale_tlb_chaos_serves_only_entries_the_discipline_left_live() {
        use pkvm_aarch64::walk::Access;

        // Always suppress remote deliveries: CPU 1 warms a host entry,
        // CPU 0 donates the page, and the broadcast invalidation never
        // reaches CPU 1.
        let cfg = ChaosCfg::builder().seed(0x57a1).stale_tlb(1.0).build();
        let p = Proxy::builder().chaos(Some(cfg)).boot();
        let h = p.init_vm(0, 1, true).unwrap();
        p.init_vcpu(0, h, 0).unwrap();
        p.vcpu_load(0, h, 0).unwrap();
        let pfn = p.alloc_page();
        p.host_access(1, pfn * PAGE_SIZE, Access::Read).unwrap();
        p.topup_raw(0, pfn << 12, 1).unwrap();

        let tlb = &p.machine.tlb;
        assert!(tlb.suppressed_remote() > 0, "no delivery was suppressed");
        // The policy's injection counter and the TLB's suppression
        // counter account for the same decisions, one for one.
        assert_eq!(
            p.chaos_injected().unwrap().stale_tlbs,
            tlb.suppressed_remote()
        );
        // The suppressed delivery — and only that — leaves CPU 1 serving
        // the retained entry, counted as a stale serve.
        assert_eq!(tlb.stale_served(), 0);
        assert!(
            p.host_access(1, pfn * PAGE_SIZE, Access::Read).is_ok(),
            "suppressed invalidation must leave CPU 1's entry live"
        );
        assert!(tlb.stale_served() > 0);
        // The issuing CPU delivered locally and faults correctly.
        assert!(p.host_access(0, pfn * PAGE_SIZE, Access::Read).is_err());
        // The chaos sits below the hook stream: the hypervisor's own
        // invalidation sequence was complete, so the spec check must not
        // blame it for the staleness the harness injected.
        assert!(
            p.violations()
                .iter()
                .all(|v| v.kind() != "break-before-make"),
            "stale-tlb chaos fabricated a break-before-make verdict: {:?}",
            p.violations()
        );
    }

    #[test]
    fn without_stale_chaos_no_delivery_is_suppressed() {
        use pkvm_aarch64::walk::Access;

        // The converse soundness direction: zero suppressions implies
        // zero stale serves, with or (here) without a policy installed.
        let p = Proxy::boot_default();
        let h = p.init_vm(0, 1, true).unwrap();
        p.init_vcpu(0, h, 0).unwrap();
        p.vcpu_load(0, h, 0).unwrap();
        let pfn = p.alloc_page();
        p.host_access(1, pfn * PAGE_SIZE, Access::Read).unwrap();
        p.topup_raw(0, pfn << 12, 1).unwrap();
        assert_eq!(p.machine.tlb.suppressed_remote(), 0);
        assert!(p.host_access(1, pfn * PAGE_SIZE, Access::Read).is_err());
        assert_eq!(p.machine.tlb.stale_served(), 0);
    }

    #[test]
    fn classify_orders_detection_over_degradation() {
        let report = CampaignCfg::builder()
            .workers(1)
            .steps_per_worker(50)
            .record_trace(false)
            .run();
        assert_eq!(classify(&report), RunVerdict::Silent);
    }
}
