//! Greedy trace minimization with a replay budget.
//!
//! Extracted from the campaign module so both campaign post-mortems and
//! the fuzzer's crash triage share one minimizer: repeatedly try to
//! delete chunks of driver events (halving the chunk size down to 1) and
//! keep any deletion after which the replay still violates. Every probe
//! boots a fresh machine, so the work is bounded by an explicit
//! `max_replays` budget rather than by luck.

use pkvm_ghost::EventRecord;

use crate::campaign::{replay_events, CampaignTrace};

/// What a [`minimize_with_stats`] run did, alongside the shortened trace.
#[derive(Clone, Debug)]
pub struct MinimizeOutcome {
    /// The minimized trace (unchanged when the input never reproduced).
    pub trace: CampaignTrace,
    /// Fresh-machine replays actually spent.
    pub replays_used: usize,
    /// Driver events deleted from the input.
    pub removed: usize,
    /// Whether the *input* trace reproduced a violation at all; when
    /// `false` there was nothing to minimize.
    pub reproduced: bool,
}

/// Greedily minimizes a violating trace, bounded by `max_replays`
/// fresh-machine replays. Returns the (possibly unchanged) shortened
/// trace; a trace that does not violate on replay is returned unchanged.
pub fn minimize(trace: &CampaignTrace, max_replays: usize) -> CampaignTrace {
    minimize_with_stats(trace, max_replays).trace
}

/// [`minimize`], also reporting how much budget was spent and how many
/// events fell away (the fuzzer's triage records these next to each
/// deduplicated crash).
pub fn minimize_with_stats(trace: &CampaignTrace, max_replays: usize) -> MinimizeOutcome {
    let mut budget = max_replays;
    let mut spend = |events: &[EventRecord]| -> Option<bool> {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        Some(replay_events(trace, events).violated())
    };
    // Only driver events replay; drop the oracle/chaos context up front
    // so chunk removal spends its budget on actions that matter.
    let mut events: Vec<EventRecord> = trace
        .events
        .iter()
        .filter(|r| r.event.is_driver())
        .cloned()
        .collect();
    let initial = events.len();
    if spend(&events) != Some(true) {
        return MinimizeOutcome {
            trace: trace.clone(),
            replays_used: max_replays - budget,
            removed: 0,
            reproduced: false,
        };
    }
    let mut chunk = (events.len() / 2).max(1);
    'outer: loop {
        let mut i = 0;
        while i < events.len() {
            let mut candidate = events.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            match spend(&candidate) {
                None => break 'outer,
                Some(true) => events = candidate, // keep the deletion; retry at i
                Some(false) => i += chunk,
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    let removed = initial - events.len();
    MinimizeOutcome {
        trace: CampaignTrace {
            events,
            ..trace.clone()
        },
        replays_used: max_replays - budget,
        removed,
        reproduced: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{replay, CampaignCfg};
    use pkvm_hyp::faults::{Fault, FaultSet};

    fn violating_trace() -> CampaignTrace {
        let faults = FaultSet::none();
        faults.inject(Fault::SynShareWrongState);
        let report = CampaignCfg::builder()
            .workers(1)
            .steps_per_worker(200)
            .base_seed(0xb0b)
            .faults(&faults)
            .run();
        assert!(!report.is_clean(), "injected bug went unnoticed");
        report.trace.expect("trace recorded")
    }

    #[test]
    fn stats_report_spent_budget_and_shrinkage() {
        let trace = violating_trace();
        let driver = trace.events.iter().filter(|r| r.event.is_driver()).count();
        let out = minimize_with_stats(&trace, 200);
        assert!(out.reproduced);
        assert!(out.replays_used > 0 && out.replays_used <= 200);
        assert!(out.removed > 0, "nothing removed from {driver} events");
        assert_eq!(out.trace.events.len(), driver - out.removed);
        assert!(replay(&out.trace).violated());
    }

    #[test]
    fn clean_trace_reports_not_reproduced() {
        let report = CampaignCfg::builder()
            .workers(1)
            .steps_per_worker(50)
            .base_seed(0xc1ea)
            .run();
        assert!(report.is_clean());
        let trace = report.trace.expect("trace recorded");
        let out = minimize_with_stats(&trace, 10);
        assert!(!out.reproduced);
        assert_eq!(out.removed, 0);
        assert_eq!(out.replays_used, 1, "only the probe replay runs");
        assert_eq!(out.trace.events.len(), trace.events.len());
    }

    #[test]
    fn zero_budget_is_a_no_op() {
        let trace = violating_trace();
        let out = minimize_with_stats(&trace, 0);
        assert!(!out.reproduced);
        assert_eq!(out.replays_used, 0);
        assert_eq!(out.trace.events.len(), trace.events.len());
    }
}
