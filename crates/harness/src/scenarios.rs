//! The handwritten test suite: 41 scenarios, as in §5 — 19 targeting
//! error-free paths, 22 targeting errors, a handful highly concurrent.
//!
//! Every scenario runs against a freshly booted machine through the proxy
//! and asserts both the API-level behaviour and, when the oracle is
//! installed, that the clean hypervisor produces zero violations.

use std::sync::atomic::{AtomicUsize, Ordering};

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::walk::Access;
use pkvm_hyp::error::Errno;
use pkvm_hyp::vm::GuestOp;

use crate::proxy::Proxy;

/// Scenario classification, mirroring the paper's breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Exercises an error-free path.
    Ok,
    /// Targets an error case.
    Err,
}

/// One handwritten test.
pub struct Scenario {
    /// Stable name.
    pub name: &'static str,
    /// Error-free or error-targeting.
    pub kind: Kind,
    /// Uses multiple hardware threads concurrently.
    pub concurrent: bool,
    /// The test body; panics on failure.
    pub run: fn(&Proxy),
}

macro_rules! scenario {
    ($name:ident, $kind:ident, $conc:expr, $body:expr) => {
        Scenario {
            name: stringify!($name),
            kind: Kind::$kind,
            concurrent: $conc,
            run: $body,
        }
    };
}

fn vm_with_vcpu(p: &Proxy, protected: bool) -> u32 {
    let h = p.init_vm(0, 1, protected).expect("init_vm");
    p.init_vcpu(0, h, 0).expect("init_vcpu");
    h
}

fn loaded_vm(p: &Proxy, protected: bool) -> u32 {
    let h = vm_with_vcpu(p, protected);
    p.vcpu_load(0, h, 0).expect("vcpu_load");
    p.topup(0, 8).expect("topup");
    h
}

/// The full suite.
pub fn all() -> Vec<Scenario> {
    vec![
        // ----------------------------------------- 19 error-free paths --
        scenario!(share_single, Ok, false, |p| {
            let pfn = p.alloc_page();
            p.share(0, pfn).expect("share");
        }),
        scenario!(share_unshare_cycle, Ok, false, |p| {
            let pfn = p.alloc_page();
            p.share(0, pfn).expect("share");
            p.unshare(0, pfn).expect("unshare");
        }),
        scenario!(reshare_after_unshare, Ok, false, |p| {
            let pfn = p.alloc_page();
            for _ in 0..3 {
                p.share(0, pfn).expect("share");
                p.unshare(0, pfn).expect("unshare");
            }
        }),
        scenario!(share_sixteen_pages, Ok, false, |p| {
            let base = p.alloc_pages(16);
            for i in 0..16 {
                p.share(0, base + i).expect("share");
            }
            for i in 0..16 {
                p.unshare(0, base + i).expect("unshare");
            }
        }),
        scenario!(host_fault_map_on_demand, Ok, false, |p| {
            let pfn = p.alloc_page();
            p.machine
                .host_access(0, pfn * PAGE_SIZE, Access::Write)
                .expect("host access");
            p.machine
                .host_access(1, pfn * PAGE_SIZE + 8, Access::Read)
                .expect("host access");
            // The fault installed a block mapping; sharing a page inside
            // it forces the walker to split the block.
            let neighbour = p.alloc_page();
            p.share(0, neighbour).expect("share inside block");
            p.unshare(0, neighbour).expect("unshare");
        }),
        scenario!(host_mmio_access, Ok, false, |p| {
            p.machine
                .host_access(0, 0x0900_0008, Access::Read)
                .expect("mmio read");
            p.machine
                .host_access(0, 0x0900_0000, Access::Write)
                .expect("mmio write");
        }),
        scenario!(init_vm_protected, Ok, false, |p| {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            assert!(h >= 0x1000);
        }),
        scenario!(init_vm_unprotected, Ok, false, |p| {
            p.init_vm(0, 2, false).expect("init_vm");
        }),
        scenario!(two_vms_coexist, Ok, false, |p| {
            let a = p.init_vm(0, 1, true).expect("init_vm a");
            let b = p.init_vm(0, 1, false).expect("init_vm b");
            assert_ne!(a, b);
        }),
        scenario!(multi_vcpu_init, Ok, false, |p| {
            let h = p.init_vm(0, 4, true).expect("init_vm");
            for i in 0..4 {
                p.init_vcpu(0, h, i).expect("init_vcpu");
            }
        }),
        scenario!(vcpu_load_put_cycle, Ok, false, |p| {
            let h = vm_with_vcpu(p, true);
            for round in 0..3u64 {
                p.vcpu_load(0, h, 0).expect("load");
                // The host emulates an MMIO read: writes the guest's x3.
                p.vcpu_set_reg(0, 3, 0xabc0 + round).expect("set reg");
                assert_eq!(p.vcpu_get_reg(0, 3).expect("get reg"), 0xabc0 + round);
                p.vcpu_put(0).expect("put");
            }
            // Register state persisted across the put/load cycles.
            p.vcpu_load(0, h, 0).expect("load");
            assert_eq!(p.vcpu_get_reg(0, 3).expect("get reg"), 0xabc2);
            assert_eq!(p.vcpu_get_reg(0, 99), Err(Errno::EINVAL));
            p.vcpu_put(0).expect("put");
            assert_eq!(p.vcpu_get_reg(0, 0), Err(Errno::ENOENT));
            assert_eq!(p.vcpu_set_reg(0, 0, 1), Err(Errno::ENOENT));
        }),
        scenario!(topup_memcache, Ok, false, |p| {
            let h = vm_with_vcpu(p, true);
            p.vcpu_load(0, h, 0).expect("load");
            p.topup(0, 8).expect("topup");
            p.topup(0, 4).expect("second topup");
        }),
        scenario!(map_guest_protected, Ok, false, |p| {
            let _h = loaded_vm(p, true);
            let pfn = p.map_guest(0, 0x10).expect("map_guest");
            // Donated: the host loses access.
            assert!(p
                .machine
                .host_access(1, pfn * PAGE_SIZE, Access::Read)
                .is_err());
        }),
        scenario!(map_guest_unprotected, Ok, false, |p| {
            let _h = loaded_vm(p, false);
            let pfn = p.map_guest(0, 0x10).expect("map_guest");
            // Shared: the host keeps access.
            assert!(p
                .machine
                .host_access(1, pfn * PAGE_SIZE, Access::Read)
                .is_ok());
        }),
        scenario!(guest_read_write, Ok, false, |p| {
            let h = loaded_vm(p, true);
            p.map_guest(0, 0x10).expect("map_guest");
            p.push_guest_op(h, 0, GuestOp::Write(0x10 * PAGE_SIZE, 0x5ca1ab1e))
                .unwrap();
            assert_eq!(
                p.vcpu_run(0).expect("run"),
                pkvm_hyp::hypercalls::exit::CONTINUE
            );
            p.push_guest_op(h, 0, GuestOp::Read(0x10 * PAGE_SIZE))
                .unwrap();
            assert_eq!(
                p.vcpu_run(0).expect("run"),
                pkvm_hyp::hypercalls::exit::CONTINUE
            );
            // An empty script runs to WFI.
            assert_eq!(p.vcpu_run(0).expect("run"), pkvm_hyp::hypercalls::exit::WFI);
        }),
        scenario!(guest_fault_then_map_retry, Ok, false, |p| {
            let h = loaded_vm(p, true);
            p.push_guest_op(h, 0, GuestOp::Read(0x20 * PAGE_SIZE))
                .unwrap();
            assert_eq!(
                p.vcpu_run(0).expect("run"),
                pkvm_hyp::hypercalls::exit::MEM_ABORT
            );
            p.map_guest(0, 0x20).expect("map_guest");
            p.push_guest_op(h, 0, GuestOp::Read(0x20 * PAGE_SIZE))
                .unwrap();
            assert_eq!(
                p.vcpu_run(0).expect("run"),
                pkvm_hyp::hypercalls::exit::CONTINUE
            );
        }),
        scenario!(guest_share_unshare_host, Ok, false, |p| {
            let h = loaded_vm(p, true);
            let pfn = p.map_guest(0, 0x10).expect("map_guest");
            p.push_guest_op(h, 0, GuestOp::HvcShareHost(0x10 * PAGE_SIZE))
                .unwrap();
            assert_eq!(
                p.vcpu_run(0).expect("run"),
                pkvm_hyp::hypercalls::exit::GUEST_HVC
            );
            assert!(p
                .machine
                .host_access(1, pfn * PAGE_SIZE, Access::Read)
                .is_ok());
            p.push_guest_op(h, 0, GuestOp::HvcUnshareHost(0x10 * PAGE_SIZE))
                .unwrap();
            assert_eq!(
                p.vcpu_run(0).expect("run"),
                pkvm_hyp::hypercalls::exit::GUEST_HVC
            );
            assert!(p
                .machine
                .host_access(1, pfn * PAGE_SIZE, Access::Read)
                .is_err());
        }),
        scenario!(teardown_reclaim_slot_reuse, Ok, false, |p| {
            let h = loaded_vm(p, true);
            let pfn = p.map_guest(0, 0x10).expect("map_guest");
            p.vcpu_put(0).expect("put");
            p.teardown(0, h).expect("teardown");
            p.reclaim(0, pfn).expect("reclaim");
            // The slot (and handle) is reusable.
            let h2 = p.init_vm(0, 1, true).expect("reuse");
            assert_eq!(h2, h);
        }),
        scenario!(concurrent_shares_distinct, Ok, true, |p| {
            std::thread::scope(|s| {
                for cpu in 0..p.machine.nr_cpus() {
                    let base = p.alloc_pages(8);
                    s.spawn(move || {
                        for i in 0..8 {
                            p.share(cpu, base + i).expect("share");
                            p.unshare(cpu, base + i).expect("unshare");
                        }
                    });
                }
            });
        }),
        // --------------------------------------------- 22 error paths --
        scenario!(share_twice, Err, false, |p| {
            let pfn = p.alloc_page();
            p.share(0, pfn).expect("share");
            assert_eq!(p.share(0, pfn), Err(Errno::EPERM));
        }),
        scenario!(unshare_unshared, Err, false, |p| {
            let pfn = p.alloc_page();
            assert_eq!(p.unshare(0, pfn), Err(Errno::EPERM));
        }),
        scenario!(share_bad_addresses, Err, false, |p| {
            assert_eq!(p.share(0, 0x9000), Err(Errno::EPERM), "MMIO");
            let (pool_pfn, _) = p.machine.state.hyp_range;
            assert_eq!(p.share(0, pool_pfn), Err(Errno::EPERM), "carveout");
            assert_eq!(p.share(0, 1 << 40), Err(Errno::EPERM), "out of range");
        }),
        scenario!(unknown_hypercall, Err, false, |p| {
            assert_eq!(
                Errno::from_ret(p.hvc(0, 0xc600_7777, &[1, 2, 3])),
                Some(Errno::EOPNOTSUPP)
            );
            // SMCs trap too, and are forwarded without state change.
            p.machine.smc(0, 0x8400_0001);
        }),
        scenario!(init_vm_bad_nr_vcpus, Err, false, |p| {
            assert_eq!(p.init_vm(0, 0, true), Err(Errno::EINVAL), "zero vCPUs");
            assert_eq!(p.init_vm(0, 99, true), Err(Errno::EINVAL), "too many vCPUs");
        }),
        scenario!(init_vm_bad_donate_count, Err, false, |p| {
            let params = p.alloc_page();
            p.machine
                .mem
                .write_u64(pkvm_aarch64::PhysAddr::from_pfn(params), 1)
                .unwrap();
            let donate = p.alloc_pages(3);
            assert_eq!(
                Errno::from_ret(p.hvc(0, pkvm_hyp::hypercalls::HVC_INIT_VM, &[params, donate, 3])),
                Some(Errno::EINVAL)
            );
            // Filling every VM-table slot makes the next creation fail.
            for _ in 0..pkvm_hyp::vm::MAX_VMS {
                p.init_vm(0, 1, true).expect("fill slot");
            }
            assert_eq!(p.init_vm(0, 1, true), Err(Errno::ENOMEM), "table full");
        }),
        scenario!(init_vm_donate_unowned, Err, false, |p| {
            let params = p.alloc_page();
            p.machine
                .mem
                .write_u64(pkvm_aarch64::PhysAddr::from_pfn(params), 1)
                .unwrap();
            // Donate carveout pages the host does not own.
            let (pool_pfn, _) = p.machine.state.hyp_range;
            assert_eq!(
                Errno::from_ret(p.hvc(
                    0,
                    pkvm_hyp::hypercalls::HVC_INIT_VM,
                    &[params, pool_pfn, 2]
                )),
                Some(Errno::EPERM)
            );
        }),
        scenario!(init_vm_bad_params_page, Err, false, |p| {
            assert_eq!(
                Errno::from_ret(p.hvc(
                    0,
                    pkvm_hyp::hypercalls::HVC_INIT_VM,
                    &[0x9000, p.alloc_pages(2), 2]
                )),
                Some(Errno::EINVAL)
            );
        }),
        scenario!(init_vcpu_bad_handle, Err, false, |p| {
            assert_eq!(p.init_vcpu(0, 0x9999, 0), Err(Errno::ENOENT));
        }),
        scenario!(init_vcpu_bad_index, Err, false, |p| {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            assert_eq!(p.init_vcpu(0, h, 7), Err(Errno::EINVAL));
        }),
        scenario!(init_vcpu_twice, Err, false, |p| {
            let h = vm_with_vcpu(p, true);
            assert_eq!(p.init_vcpu(0, h, 0), Err(Errno::EEXIST));
        }),
        scenario!(vcpu_load_bad_handle, Err, false, |p| {
            assert_eq!(p.vcpu_load(0, 0x9999, 0), Err(Errno::ENOENT));
        }),
        scenario!(vcpu_load_bad_index, Err, false, |p| {
            let h = vm_with_vcpu(p, true);
            assert_eq!(p.vcpu_load(0, h, 5), Err(Errno::EINVAL));
        }),
        scenario!(vcpu_load_uninit, Err, false, |p| {
            let h = p.init_vm(0, 2, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            assert_eq!(p.vcpu_load(0, h, 1), Err(Errno::ENOENT));
        }),
        scenario!(vcpu_load_double, Err, false, |p| {
            let h = vm_with_vcpu(p, true);
            p.vcpu_load(0, h, 0).expect("load");
            assert_eq!(p.vcpu_load(1, h, 0), Err(Errno::EBUSY), "other cpu");
            assert_eq!(p.vcpu_load(0, h, 0), Err(Errno::EBUSY), "same cpu");
        }),
        scenario!(vcpu_put_without_load, Err, false, |p| {
            assert_eq!(p.vcpu_put(0), Err(Errno::ENOENT));
        }),
        scenario!(vcpu_run_without_load, Err, false, |p| {
            assert_eq!(p.vcpu_run(0), Err(Errno::ENOENT));
        }),
        scenario!(topup_unaligned_and_huge, Err, false, |p| {
            let h = vm_with_vcpu(p, true);
            p.vcpu_load(0, h, 0).expect("load");
            let pfn = p.alloc_page();
            assert_eq!(p.topup_raw(0, (pfn << 12) + 0x800, 1), Err(Errno::EINVAL));
            assert_eq!(p.topup_raw(0, pfn << 12, 1 << 20), Err(Errno::E2BIG));
            // Donating the same page twice: the second is no longer the
            // host's to give.
            assert_eq!(p.topup_raw(0, pfn << 12, 1), Ok(()));
            assert_eq!(p.topup_raw(0, pfn << 12, 1), Err(Errno::EPERM));
            // Without a loaded vCPU it is ENOENT.
            p.vcpu_put(0).expect("put");
            assert_eq!(p.topup_raw(0, pfn << 12, 1), Err(Errno::ENOENT));
        }),
        scenario!(map_guest_errors, Err, false, |p| {
            assert_eq!(p.map_guest(0, 0x10), Err(Errno::ENOENT), "no loaded vcpu");
            let _h = loaded_vm(p, true);
            assert_eq!(
                p.map_guest_pfn(0, 0x9000, 0x10),
                Err(Errno::EPERM),
                "MMIO pfn"
            );
            assert_eq!(
                p.map_guest_pfn(0, p.alloc_page(), 1 << 40),
                Err(Errno::EINVAL),
                "huge gfn"
            );
            let pfn = p.map_guest(0, 0x10).expect("map");
            assert_eq!(
                p.map_guest_pfn(0, pfn, 0x11),
                Err(Errno::EPERM),
                "pfn already donated"
            );
            assert_eq!(
                p.map_guest(0, 0x10),
                Err(Errno::EPERM),
                "gfn already mapped"
            );
        }),
        scenario!(teardown_errors, Err, false, |p| {
            assert_eq!(p.teardown(0, 0x9999), Err(Errno::ENOENT));
            let h = vm_with_vcpu(p, true);
            p.vcpu_load(0, h, 0).expect("load");
            assert_eq!(p.teardown(1, h), Err(Errno::EBUSY));
            // Reclaim of a page never given to a guest is refused.
            assert_eq!(p.reclaim(0, p.alloc_page()), Err(Errno::EPERM));
        }),
        scenario!(allocator_exhaustion_is_enomem, Err, false, |_p| {
            // A machine with a tiny carveout: shares exhaust the table
            // allocator, and the loose spec accepts the ENOMEM.
            let tiny = crate::proxy::Proxy::builder()
                .config(pkvm_hyp::machine::MachineConfig {
                    hyp_pool_pages: 24,
                    ..Default::default()
                })
                .boot();
            let mut saw_enomem = false;
            for i in 0..64u64 {
                // Spread shares across distant regions to force fresh
                // table chains until the pool runs dry.
                let pfn = tiny.alloc_page() + i * 0x400;
                if let Err(Errno::ENOMEM) = tiny.share(0, pfn % 0x47000) {
                    saw_enomem = true;
                    break;
                }
            }
            assert!(saw_enomem, "tiny pool never exhausted");
            assert!(tiny.all_clear(), "{:?}", tiny.violations());
        }),
        scenario!(concurrent_same_resource, Err, true, |p| {
            // Two threads race to share the same page: exactly one wins.
            let pfn = p.alloc_page();
            let wins = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for cpu in 0..2 {
                    let wins = &wins;
                    s.spawn(move || {
                        if p.share(cpu, pfn).is_ok() {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one share must win");
            // Two threads race to load the same vCPU: exactly one wins.
            let h = vm_with_vcpu(p, true);
            let loads = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for cpu in 0..2 {
                    let loads = &loads;
                    s.spawn(move || {
                        if p.vcpu_load(cpu, h, 0).is_ok() {
                            loads.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert_eq!(loads.load(Ordering::SeqCst), 1, "exactly one load must win");
            // A host racing its own stage 1 against the fault handler: the
            // clean hypervisor injects a fault back instead of panicking.
            use pkvm_aarch64::attrs::{Attrs, Perms, Stage};
            use pkvm_aarch64::desc::Pte;
            use pkvm_aarch64::PhysAddr;
            let s1_root = PhysAddr::from_pfn(p.alloc_pages(4));
            let l1 = s1_root.wrapping_add(PAGE_SIZE);
            let l2 = s1_root.wrapping_add(2 * PAGE_SIZE);
            let l3 = s1_root.wrapping_add(3 * PAGE_SIZE);
            let m = &p.machine;
            m.mem.write_pte(s1_root, 0, Pte::table(l1)).unwrap();
            m.mem.write_pte(l1, 0, Pte::table(l2)).unwrap();
            m.mem.write_pte(l2, 0, Pte::table(l3)).unwrap();
            m.mem
                .write_pte(
                    l3,
                    0,
                    Pte::leaf(
                        Stage::Stage1,
                        3,
                        PhysAddr::from_pfn(p.alloc_page()),
                        Attrs::normal(Perms::RWX),
                    ),
                )
                .unwrap();
            m.register_host_s1(s1_root);
            let r = m.host_access_via_s1(0, 0, Access::Read, || {
                m.mem.write_pte(l3, 0, Pte::invalid()).unwrap();
            });
            assert!(r.is_err(), "raced access reports a fault to the host");
            assert!(
                m.panicked().is_none(),
                "the clean hypervisor must not panic"
            );
        }),
    ]
}

/// Result of running the whole suite.
#[derive(Clone, Debug, Default)]
pub struct SuiteResult {
    /// Scenarios run.
    pub total: usize,
    /// Error-free-path scenarios.
    pub ok_kind: usize,
    /// Error-path scenarios.
    pub err_kind: usize,
    /// Concurrent scenarios.
    pub concurrent: usize,
    /// Names of scenarios whose oracle check failed (with violations).
    pub oracle_failures: Vec<String>,
}

/// Runs every scenario on a fresh machine (with or without the oracle),
/// asserting scenario-level behaviour and collecting oracle verdicts.
pub fn run_all(with_oracle: bool) -> SuiteResult {
    let mut result = SuiteResult::default();
    for sc in all() {
        let proxy = Proxy::builder().with_oracle(with_oracle).boot();
        (sc.run)(&proxy);
        result.total += 1;
        match sc.kind {
            Kind::Ok => result.ok_kind += 1,
            Kind::Err => result.err_kind += 1,
        }
        if sc.concurrent {
            result.concurrent += 1;
        }
        if with_oracle && !proxy.all_clear() {
            result.oracle_failures.push(sc.name.to_string());
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_the_papers_breakdown() {
        let s = all();
        assert_eq!(s.len(), 41, "the paper's suite has 41 tests");
        assert_eq!(s.iter().filter(|x| x.kind == Kind::Ok).count(), 19);
        assert_eq!(s.iter().filter(|x| x.kind == Kind::Err).count(), 22);
        assert!(
            s.iter().filter(|x| x.concurrent).count() >= 2,
            "a handful are concurrent"
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for sc in all() {
            assert!(names.insert(sc.name), "duplicate scenario {}", sc.name);
        }
    }

    #[test]
    fn whole_suite_passes_under_the_oracle() {
        let r = run_all(true);
        assert_eq!(r.total, 41);
        assert!(
            r.oracle_failures.is_empty(),
            "oracle failures: {:?}",
            r.oracle_failures
        );
    }

    #[test]
    fn whole_suite_passes_without_the_oracle() {
        let r = run_all(false);
        assert_eq!(r.total, 41);
    }
}
