//! The bug catalog: reproducible detection of every re-introducible bug.
//!
//! For each injectable fault (the five real pKVM bugs of §6 and the
//! synthetic bugs of §5), this module knows a *trigger* — the API sequence
//! that exercises the buggy path — and a *detector* verdict: whether the
//! oracle (or, for the two data-zeroing/content bugs, a harness-level
//! content check) flagged it. The sweep regenerates the paper's
//! bugs-found evidence as a detection matrix.

use std::sync::Arc;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::walk::Access;
use pkvm_ghost::oracle::Oracle;
use pkvm_hyp::faults::{Fault, FaultSet};
use pkvm_hyp::machine::{Machine, MachineConfig};

use crate::proxy::Proxy;

/// How a bug was (or was not) detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Detection {
    /// The oracle recorded at least one violation.
    Oracle,
    /// A harness-level content/behaviour check caught it (the oracle
    /// tracks protection state, not page contents).
    ContentCheck,
    /// Nothing flagged the bug.
    Missed,
}

/// One row of the detection matrix.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// The injected fault.
    pub fault: Fault,
    /// Whether it corresponds to a real pKVM bug of §6.
    pub real_bug: Option<u8>,
    /// How it was detected.
    pub detection: Detection,
    /// First violation message, if any.
    pub first_violation: Option<String>,
}

/// The real-bug number for a fault, if it reproduces one.
pub fn real_bug_number(fault: Fault) -> Option<u8> {
    match fault {
        Fault::Bug1MemcacheAlignment => Some(1),
        Fault::Bug2MemcacheSize => Some(2),
        Fault::Bug3VcpuLoadRace => Some(3),
        Fault::Bug4HostFaultRace => Some(4),
        Fault::Bug5LinearMapOverlap => Some(5),
        _ => None,
    }
}

/// Runs the trigger for `fault` on a machine with it injected, returning
/// how it was detected.
pub fn detect(fault: Fault) -> BugReport {
    let detection = match fault {
        Fault::Bug5LinearMapOverlap => detect_bug5(),
        _ => detect_common(fault),
    };
    BugReport {
        fault,
        real_bug: real_bug_number(fault),
        detection: detection.0,
        first_violation: detection.1,
    }
}

fn verdict(p: &Proxy, content_flag: bool) -> (Detection, Option<String>) {
    let vs = p.violations();
    if !vs.is_empty() {
        (Detection::Oracle, Some(vs[0].to_string()))
    } else if content_flag {
        (Detection::ContentCheck, None)
    } else {
        (Detection::Missed, None)
    }
}

fn detect_common(fault: Fault) -> (Detection, Option<String>) {
    let faults = FaultSet::none();
    faults.inject(fault);
    let p = Proxy::builder().faults(faults).boot();
    let mut content_flag = false;
    match fault {
        Fault::Bug1MemcacheAlignment => {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            p.vcpu_load(0, h, 0).expect("load");
            // Sentinel in the page following the unaligned donation.
            let base = p.alloc_pages(2);
            let victim = PhysAddr::from_pfn(base + 1);
            p.machine.mem.write_u64(victim, 0x5ca1ab1e).unwrap();
            let _ = p.topup_raw(0, (base << 12) + 0x800, 1);
            content_flag = p.machine.mem.read_u64(victim).unwrap() == 0;
        }
        Fault::Bug2MemcacheSize => {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            p.vcpu_load(0, h, 0).expect("load");
            let base = p.alloc_page();
            let _ = p.topup_raw(0, base << 12, 0x1_0000);
        }
        Fault::Bug3VcpuLoadRace => {
            let h = p.init_vm(0, 2, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            let _ = p.vcpu_load(0, h, 1); // slot 1 never initialised
        }
        Fault::Bug4HostFaultRace => {
            use pkvm_aarch64::attrs::{Attrs, Perms, Stage};
            use pkvm_aarch64::desc::Pte;
            let s1_root = PhysAddr::from_pfn(p.alloc_pages(4));
            let l1 = s1_root.wrapping_add(PAGE_SIZE);
            let l2 = s1_root.wrapping_add(2 * PAGE_SIZE);
            let l3 = s1_root.wrapping_add(3 * PAGE_SIZE);
            let m = &p.machine;
            m.mem.write_pte(s1_root, 0, Pte::table(l1)).unwrap();
            m.mem.write_pte(l1, 0, Pte::table(l2)).unwrap();
            m.mem.write_pte(l2, 0, Pte::table(l3)).unwrap();
            m.mem
                .write_pte(
                    l3,
                    0,
                    Pte::leaf(
                        Stage::Stage1,
                        3,
                        PhysAddr::from_pfn(p.alloc_page()),
                        Attrs::normal(Perms::RWX),
                    ),
                )
                .unwrap();
            m.register_host_s1(s1_root);
            let _ = m.host_access_via_s1(0, 0, Access::Read, || {
                m.mem.write_pte(l3, 0, Pte::invalid()).unwrap();
            });
            content_flag = m.panicked().is_some();
        }
        Fault::SynShareWrongState | Fault::SynShareHypExec => {
            let pfn = p.alloc_page();
            let _ = p.share(0, pfn);
        }
        Fault::SynUnshareKeepsHypMapping => {
            let pfn = p.alloc_page();
            let _ = p.share(0, pfn);
            let _ = p.unshare(0, pfn);
        }
        Fault::SynShareSkipsCheck => {
            let pfn = p.alloc_page();
            let _ = p.share(0, pfn);
            p.oracle.as_ref().unwrap().clear_violations();
            let _ = p.share(0, pfn); // the illegal double share
        }
        Fault::SynReclaimSkipsWipe => {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            p.vcpu_load(0, h, 0).expect("load");
            p.topup(0, 8).expect("topup");
            let pfn = p.map_guest(0, 0x10).expect("map");
            // Guest writes a secret into its page.
            p.push_guest_op(
                h,
                0,
                pkvm_hyp::vm::GuestOp::Write(0x10 * PAGE_SIZE, 0x5ec7e7),
            )
            .unwrap();
            let _ = p.vcpu_run(0);
            p.vcpu_put(0).expect("put");
            p.teardown(0, h).expect("teardown");
            let _ = p.reclaim(0, pfn);
            // The host can now read the guest's secret: the content check.
            content_flag = p.machine.mem.read_u64(PhysAddr::from_pfn(pfn)).unwrap() == 0x5ec7e7;
        }
        Fault::SynHostMapOffByOne => {
            let (pool_pfn, _) = p.machine.state.hyp_range;
            let _ = p
                .machine
                .host_access(0, (pool_pfn - 1) * PAGE_SIZE, Access::Read);
        }
        Fault::SynDonateWrongOwner => {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            p.vcpu_load(0, h, 0).expect("load");
            p.topup(0, 8).expect("topup");
            let _ = p.map_guest(0, 0x10);
        }
        Fault::SynVcpuPutLeak => {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            p.vcpu_load(0, h, 0).expect("load");
            let _ = p.vcpu_put(0);
        }
        Fault::SynTeardownSkipsUnmap => {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            p.vcpu_load(0, h, 0).expect("load");
            p.topup(0, 8).expect("topup");
            let _ = p.map_guest(0, 0x10);
            p.vcpu_put(0).expect("put");
            let _ = p.teardown(0, h);
        }
        Fault::SynBlockAlignment => {
            // The host-fault path installs block mappings; the corrupted
            // block OA breaks the identity property the abstraction checks.
            let _ = p.machine.host_access(0, 0x4500_0000, Access::Read);
        }
        Fault::SynMissingTlbi => {
            // The dangerous shape: the host touches a page (filling the
            // TLB), then *donates* it away. Without the invalidation the
            // stale translation lets the host keep reading memory it no
            // longer owns — an isolation breach invisible to the page
            // tables (and hence to the oracle; the harness checks the
            // behaviour, as the paper's companion TLB work motivates).
            let h = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, h, 0).expect("init_vcpu");
            p.vcpu_load(0, h, 0).expect("load");
            let pfn = p.alloc_page();
            p.machine
                .host_access(0, pfn * PAGE_SIZE, Access::Read)
                .expect("warm the TLB");
            p.topup_raw(0, pfn << 12, 1)
                .expect("donate the touched page");
            content_flag = p
                .machine
                .host_access(0, pfn * PAGE_SIZE, Access::Read)
                .is_ok();
        }
        Fault::SynFirmwareReclaim => {
            let h = p.init_vm(0, 1, true).expect("init_vm");
            let pfn = p.alloc_page();
            p.load_firmware(0, h, pfn, 0x80, 1).expect("load_firmware");
            p.teardown(0, h).expect("teardown");
            // The bug queued the firmware page for reclaim; the host gets
            // back a page it must never see again.
            let _ = p.reclaim(0, pfn);
        }
        Fault::Bug5LinearMapOverlap => unreachable!("handled separately"),
    }
    verdict(&p, content_flag)
}

fn detect_bug5() -> (Detection, Option<String>) {
    let faults = Arc::new(FaultSet::none());
    faults.inject(Fault::Bug5LinearMapOverlap);
    let config = MachineConfig::huge_dram();
    let oracle = Oracle::builder(&config).build();
    let machine = Machine::boot(config, oracle.clone(), faults);
    let boot_ok = oracle.check_boot();
    let _ = machine;
    let vs = oracle.violations();
    if !boot_ok || !vs.is_empty() {
        (Detection::Oracle, vs.first().map(|v| v.to_string()))
    } else {
        (Detection::Missed, None)
    }
}

/// Runs the whole catalog, returning one report per fault.
pub fn sweep() -> Vec<BugReport> {
    Fault::ALL.iter().map(|&f| detect(f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_real_bug_is_detected() {
        for fault in [
            Fault::Bug1MemcacheAlignment,
            Fault::Bug2MemcacheSize,
            Fault::Bug3VcpuLoadRace,
            Fault::Bug4HostFaultRace,
            Fault::Bug5LinearMapOverlap,
        ] {
            let r = detect(fault);
            assert_ne!(
                r.detection,
                Detection::Missed,
                "missed real bug {:?}",
                fault
            );
        }
    }

    #[test]
    fn full_sweep_misses_nothing() {
        for r in sweep() {
            assert_ne!(
                r.detection,
                Detection::Missed,
                "missed {:?} (real bug {:?})",
                r.fault,
                r.real_bug
            );
        }
    }
}
