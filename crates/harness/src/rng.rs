//! Small deterministic PRNG for the random tester.
//!
//! The workspace builds hermetically (no crates.io), so the generator is
//! in-tree: SplitMix64 — 64 bits of state, full period, passes BigCrush —
//! is plenty for *model-guided* test generation, where reproducibility per
//! seed matters and cryptographic quality does not. The API mirrors the
//! subset of `rand` the tester uses (`gen_range` over half-open and
//! inclusive integer ranges, `gen_bool`, slice `choose`).

use std::ops::{Range, RangeInclusive};

/// SplitMix64 generator (Steele, Lea & Flood; the `java.util.SplittableRandom`
/// mixer). Streams are reproducible per seed.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample from `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of uniformity is ample for test-op weighting.
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform sample from an integer range; panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        T::sample(range, self)
    }

    // Debiased via rejection sampling (Lemire-style threshold would be
    // faster; the tester is nowhere near RNG-bound).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.gen_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// Integer ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.gen_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Uniform element choice, mirroring `rand::seq::SliceRandom::choose`.
pub trait SliceChoose<T> {
    /// A uniformly random element, or `None` if empty.
    fn choose(&self, rng: &mut Rng) -> Option<&T>;
}

impl<T> SliceChoose<T> for [T] {
    fn choose(&self, rng: &mut Rng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.gen_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.gen_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(10u64..15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(1..=2u64);
            assert!((1..=2).contains(&v));
        }
        assert_eq!(rng.gen_range(3usize..4), 3);
        assert_eq!(rng.gen_range(9u32..=9), 9);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((1000..2000).contains(&hits), "p=0.15 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_is_none_only_on_empty() {
        let mut rng = Rng::seed_from_u64(2);
        let empty: [u64; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let xs = [5u64, 6, 7];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
    }
}
