//! Parallel, replayable random-testing campaigns.
//!
//! The paper's random testing runs at ~200,000 hypercalls per hour with a
//! longest campaign of 24 hours (§5); its concurrency checks — per-lock
//! recording and the §4.4 non-interference invariant — only earn their
//! keep when handlers genuinely race. This module scales the single
//! threaded [`RandomTester`] into a campaign: one booted machine driven
//! from N worker threads, each with its own seeded tester and model,
//! pinned to a distinct simulated CPU through cloned [`Proxy`] handles
//! with partitioned page allocators.
//!
//! Every worker emits the concrete driver actions it performs (the
//! hypercalls with their resolved arguments, parameter-page writes, host
//! accesses and guest-op injections) into the machine's unified
//! [`pkvm_ghost::event::EventStream`], interleaved with the oracle's
//! own trap/lock/check events and any chaos injections. The
//! stream's global sequence numbers are an approximate linearisation of
//! the campaign — each action is emitted immediately before it executes —
//! so a violating campaign can be [`replay`]ed single-threaded from the
//! recorded seeds and schedule alone, [`minimize`]d to a short reproducer
//! by greedy chunk removal, or persisted to a `.pkvmtrace` file (see
//! [`crate::tracefile`]) and replayed in a fresh process.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pkvm_aarch64::addr::PhysAddr;
use pkvm_ghost::event::{Event, EventRecord};
use pkvm_ghost::oracle::{OracleOpts, ResilienceSnapshot};
use pkvm_ghost::{CheckMode, Violation};
use pkvm_hyp::faults::FaultSet;
use pkvm_hyp::machine::MachineConfig;

use crate::chaos::{ChaosCfg, ChaosDriver, ChaosInjected};
use crate::proxy::Proxy;
use crate::random::{RandomCfg, RandomTester, RunStats};
use crate::tracefile::{TraceFileError, TraceHeader};

/// Campaign configuration.
///
/// Construct with [`CampaignCfg::builder`] (or [`Default`]).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CampaignCfg {
    /// Worker threads (each pinned to one simulated CPU).
    pub workers: usize,
    /// Step budget per worker.
    pub steps_per_worker: u64,
    /// Wall-clock budget for the whole campaign, if any.
    pub time_budget: Option<Duration>,
    /// Base seed; each worker derives its own stream from it.
    pub base_seed: u64,
    /// Fraction of fuzzed (arbitrary-argument) steps per worker.
    pub invalid_fraction: f64,
    /// Per-worker call mix ([`crate::random::OP_NAMES`] order). The
    /// default mix drives general API traffic;
    /// [`android_weights`](crate::android::android_weights) shapes it
    /// like an Android device under VM churn.
    pub op_weights: [f64; crate::random::OP_NAMES.len()],
    /// Stop all workers as soon as a violation or panic is observed.
    pub stop_on_violation: bool,
    /// Install the ghost oracle.
    pub with_oracle: bool,
    /// Record the op trace for replay (small, but not free).
    pub record_trace: bool,
    /// Machine shape (`nr_cpus` is raised to at least `workers`).
    pub config: MachineConfig,
    /// Oracle switches.
    pub oracle_opts: OracleOpts,
    /// Injected faults, as raw [`FaultSet`] bits.
    pub fault_bits: u32,
    /// Chaos injection against the oracle (see [`crate::chaos`]).
    pub chaos: Option<ChaosCfg>,
}

impl Default for CampaignCfg {
    fn default() -> Self {
        Self {
            workers: 4,
            steps_per_worker: 1000,
            time_budget: None,
            base_seed: 0xcafe_f00d,
            invalid_fraction: 0.15,
            op_weights: crate::random::DEFAULT_OP_WEIGHTS,
            stop_on_violation: true,
            with_oracle: true,
            record_trace: true,
            config: MachineConfig::default(),
            oracle_opts: OracleOpts::default(),
            fault_bits: 0,
            chaos: None,
        }
    }
}

impl CampaignCfg {
    /// Starts a builder from the defaults.
    pub fn builder() -> CampaignCfgBuilder {
        CampaignCfgBuilder(CampaignCfg::default())
    }
}

/// Builder for [`CampaignCfg`].
#[derive(Clone, Debug, Default)]
pub struct CampaignCfgBuilder(CampaignCfg);

impl CampaignCfgBuilder {
    /// Sets the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.0.workers = n.max(1);
        self
    }

    /// Sets the per-worker step budget.
    pub fn steps_per_worker(mut self, n: u64) -> Self {
        self.0.steps_per_worker = n;
        self
    }

    /// Sets a wall-clock budget for the campaign.
    pub fn time_budget(mut self, d: Duration) -> Self {
        self.0.time_budget = Some(d);
        self
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.0.base_seed = seed;
        self
    }

    /// Sets the fuzzed-step fraction.
    pub fn invalid_fraction(mut self, f: f64) -> Self {
        self.0.invalid_fraction = f;
        self
    }

    /// Replaces the per-worker call mix ([`crate::random::OP_NAMES`]
    /// order).
    pub fn op_weights(mut self, weights: [f64; crate::random::OP_NAMES.len()]) -> Self {
        self.0.op_weights = weights;
        self
    }

    /// Shapes the campaign like an Android device: share/unshare
    /// ping-pong, constant VM churn, firmware loads (sugar over
    /// [`op_weights`](Self::op_weights) with
    /// [`android_weights`](crate::android::android_weights)).
    pub fn android(self) -> Self {
        self.op_weights(crate::android::android_weights())
    }

    /// Keep running after the first violation (default stops).
    pub fn stop_on_violation(mut self, on: bool) -> Self {
        self.0.stop_on_violation = on;
        self
    }

    /// Install (or omit) the ghost oracle (default installed).
    pub fn with_oracle(mut self, on: bool) -> Self {
        self.0.with_oracle = on;
        self
    }

    /// Record (or skip) the replay trace (default recorded).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.0.record_trace = on;
        self
    }

    /// Sets the machine shape.
    pub fn config(mut self, config: MachineConfig) -> Self {
        self.0.config = config;
        self
    }

    /// Sets the oracle's switches.
    pub fn oracle_opts(mut self, opts: OracleOpts) -> Self {
        self.0.oracle_opts = opts;
        self
    }

    /// Sets the oracle's [`CheckMode`] (sugar over
    /// [`oracle_opts`](Self::oracle_opts)). Pipelined campaigns check
    /// behind the execution frontier; the run synchronises with the
    /// checker before aggregating the report, so the verdict covers
    /// every step the workers drove.
    pub fn check_mode(mut self, mode: CheckMode) -> Self {
        self.0.oracle_opts.check_mode = mode;
        self
    }

    /// Injects `faults` before boot.
    pub fn faults(mut self, faults: &FaultSet) -> Self {
        self.0.fault_bits = faults.bits();
        self
    }

    /// Turns on chaos injection for the campaign.
    pub fn chaos(mut self, chaos: ChaosCfg) -> Self {
        self.0.chaos = Some(chaos);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CampaignCfg {
        self.0
    }

    /// Builds and runs the campaign.
    pub fn run(self) -> CampaignReport {
        run(&self.build())
    }
}

/// Everything needed to re-run a campaign deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignTrace {
    /// The machine shape the campaign booted (after the `nr_cpus` raise).
    pub config: MachineConfig,
    /// The oracle switches.
    pub oracle_opts: OracleOpts,
    /// The injected faults.
    pub fault_bits: u32,
    /// The chaos config, if the campaign ran chaotic. Replay re-installs
    /// the hook-plane chaos from the same seed; driver-plane bit flips
    /// need nothing — they were recorded as ordinary `WriteMem` ops.
    pub chaos: Option<ChaosCfg>,
    /// Per-worker derived seeds.
    pub seeds: Vec<u64>,
    /// The recorded timeline in global sequence order: the concrete
    /// driver ops replay executes, plus every oracle and chaos event for
    /// inspection ([`Event::is_driver`] tells them apart).
    pub events: Vec<EventRecord>,
}

/// One worker's slice of the campaign.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker index (also its pinned CPU).
    pub worker: usize,
    /// The seed its tester ran with.
    pub seed: u64,
    /// Steps it completed.
    pub steps: u64,
    /// Its run counters.
    pub stats: RunStats,
    /// The panic message, if the worker thread panicked.
    pub panicked: Option<String>,
}

/// The aggregated outcome of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-worker reports.
    pub workers: Vec<WorkerReport>,
    /// All workers' counters merged.
    pub stats: RunStats,
    /// Violations the oracle recorded (empty without an oracle).
    pub violations: Vec<Violation>,
    /// The hypervisor's panic, if it hit a `BUG()`.
    pub hyp_panic: Option<String>,
    /// Wall-clock duration of the campaign.
    pub elapsed: Duration,
    /// The oracle's resilience counters after the campaign: contained
    /// panics, quarantine activity, budget degradation, dropped
    /// violations (all zero without an oracle).
    pub resilience: ResilienceSnapshot,
    /// What the chaos engine injected (`None` without chaos).
    pub chaos_injected: Option<ChaosInjected>,
    /// The replay trace, when recording was enabled.
    pub trace: Option<CampaignTrace>,
}

impl CampaignReport {
    /// `true` when no violations, no hypervisor panic and no worker
    /// thread panic were observed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
            && self.hyp_panic.is_none()
            && self.workers.iter().all(|w| w.panicked.is_none())
    }

    /// Aggregate hypercalls issued.
    pub fn total_calls(&self) -> u64 {
        self.stats.calls
    }

    /// Aggregate hypercalls per second over the campaign.
    pub fn calls_per_sec(&self) -> f64 {
        self.stats.calls as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// One-paragraph human summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign: {} workers, {} calls in {:.2?} ({:.0} calls/s)",
            self.workers.len(),
            self.stats.calls,
            self.elapsed,
            self.calls_per_sec(),
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "  worker {} (seed {:#x}): {} steps, {} calls{}",
                w.worker,
                w.seed,
                w.steps,
                w.stats.calls,
                w.panicked
                    .as_deref()
                    .map(|p| format!(", PANICKED: {p}"))
                    .unwrap_or_default(),
            );
        }
        let _ = writeln!(
            out,
            "  violations: {}{}",
            self.violations.len(),
            self.hyp_panic
                .as_deref()
                .map(|p| format!("; hypervisor panic: {p}"))
                .unwrap_or_default(),
        );
        if let Some(c) = &self.chaos_injected {
            let _ = writeln!(
                out,
                "  chaos injected: {} (flips {}, torn reads {}, dropped {}, duped {}, delayed {}, alloc {}, stale tlb {})",
                c.total(),
                c.bit_flips,
                c.torn_reads,
                c.dropped_events,
                c.duped_events,
                c.delayed_events,
                c.alloc_faults,
                c.stale_tlbs,
            );
        }
        let r = &self.resilience;
        if r.degraded() {
            let _ = writeln!(
                out,
                "  oracle degraded safely: {} contained panics, {} quarantine skips, {} recoveries, {} budget-degraded events, {} degraded traps, {} violations dropped",
                r.contained_panics,
                r.quarantined_skips,
                r.quarantine_recoveries,
                r.budget_degraded_events,
                r.degraded_traps,
                r.violations_dropped,
            );
        }
        out
    }
}

/// Derives worker `w`'s seed from the campaign base seed (one
/// splitmix64-style finalisation over the stream index, so neighbouring
/// workers get well-separated streams).
pub fn worker_seed(base: u64, w: usize) -> u64 {
    let mut z = base ^ (w as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How often a worker polls the stop conditions, in steps. Polling reads
/// one relaxed atomic from the oracle, so the interval is short.
const POLL_INTERVAL: u64 = 32;

/// Runs a campaign: boots one machine, partitions the proxy, drives it
/// from `cfg.workers` pinned threads and aggregates the outcome. Worker
/// thread panics are caught and reported, not propagated.
pub fn run(cfg: &CampaignCfg) -> CampaignReport {
    let start = Instant::now();
    let mut config = cfg.config.clone();
    config.nr_cpus = config.nr_cpus.max(cfg.workers);
    let proxy = Proxy::builder()
        .config(config.clone())
        .with_oracle(cfg.with_oracle)
        .oracle_opts(cfg.oracle_opts)
        .faults(FaultSet::from_bits(cfg.fault_bits))
        .chaos(cfg.chaos)
        .record(cfg.record_trace)
        .boot();
    let oracle = proxy.oracle.clone();
    let machine = proxy.machine.clone();
    let parts = proxy.partition(cfg.workers);
    let seeds: Vec<u64> = (0..cfg.workers)
        .map(|w| worker_seed(cfg.base_seed, w))
        .collect();
    let deadline = cfg.time_budget.map(|d| start + d);
    let stop = AtomicBool::new(false);

    let workers: Vec<WorkerReport> = std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                let seed = seeds[part.worker()];
                let stop = &stop;
                let oracle = oracle.clone();
                s.spawn(move || {
                    let w = part.worker();
                    let pin = w % part.machine.nr_cpus();
                    let rcfg = RandomCfg::builder()
                        .seed(seed)
                        .invalid_fraction(cfg.invalid_fraction)
                        .op_weights(cfg.op_weights)
                        .pin_cpu(pin)
                        .build();
                    let mut t = RandomTester::new(part, rcfg);
                    // Driver-plane chaos (bit flips) interleaves with the
                    // tester's own steps; hook/alloc chaos needs no
                    // driving — it fires inside the proxy and hooks.
                    let mut chaos_driver = cfg
                        .chaos
                        .filter(|c| c.p_bit_flip > 0.0)
                        .map(|c| ChaosDriver::new(&c, w));
                    let mut steps = 0;
                    while steps < cfg.steps_per_worker && !stop.load(Ordering::Relaxed) {
                        t.step();
                        if let Some(d) = chaos_driver.as_mut() {
                            d.step(&t.proxy);
                        }
                        steps += 1;
                        if steps % POLL_INTERVAL == 0 {
                            if deadline.is_some_and(|d| Instant::now() >= d) {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                            // In pipelined mode the count lags the
                            // execution frontier, so stop-on-violation
                            // fires a few steps late — the violation
                            // itself (and its sequence id) is unaffected.
                            let dirty = oracle.as_ref().is_some_and(|o| o.violation_count() > 0)
                                || t.proxy.machine.panicked().is_some();
                            if cfg.stop_on_violation && dirty {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    (w, seed, steps, t.stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| match h.join() {
                Ok((w, seed, steps, stats)) => WorkerReport {
                    worker: w,
                    seed,
                    steps,
                    stats,
                    panicked: None,
                },
                Err(payload) => WorkerReport {
                    worker: i,
                    seed: seeds[i],
                    steps: 0,
                    stats: RunStats::default(),
                    panicked: Some(panic_message(&payload)),
                },
            })
            .collect()
    });

    let mut stats = RunStats::default();
    for w in &workers {
        stats.merge(&w.stats);
    }
    // The campaign's one mandatory sync point with the checker: wait for
    // the frontier to drain (a no-op inline), then read everything —
    // violations, resilience counters, the recorded timeline — through
    // the settled [`pkvm_ghost::Verdict`] handle.
    let verdict = oracle.as_ref().map(|o| o.verdict());
    if let Some(v) = &verdict {
        v.wait();
    }
    let violations = verdict.as_ref().map(|v| v.violations()).unwrap_or_default();
    let trace = cfg.record_trace.then(|| CampaignTrace {
        config,
        oracle_opts: cfg.oracle_opts,
        fault_bits: cfg.fault_bits,
        chaos: cfg.chaos,
        seeds,
        events: proxy.events().take_events(),
    });
    CampaignReport {
        workers,
        stats,
        violations,
        hyp_panic: machine.panicked(),
        elapsed: start.elapsed(),
        resilience: verdict.as_ref().map(|v| v.resilience()).unwrap_or_default(),
        chaos_injected: proxy.chaos_injected(),
        trace,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".into()
    }
}

/// The outcome of replaying a (possibly truncated) schedule.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Violations the replay oracle recorded.
    pub violations: Vec<Violation>,
    /// The hypervisor's panic, if the replay hit one.
    pub hyp_panic: Option<String>,
    /// Events executed.
    pub steps: usize,
}

impl ReplayOutcome {
    /// `true` when the replay reproduced a violation or panic.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty() || self.hyp_panic.is_some()
    }
}

/// Replays a recorded campaign single-threaded: boots a fresh machine
/// from the trace's configuration and faults (the oracle always
/// installed — replay exists to reproduce violations), then executes the
/// recorded *driver* events in their recorded global order; oracle and
/// chaos events in the trace are context, not instructions — the replay
/// oracle regenerates its own. No RNG, model or allocator runs: every
/// argument is already concrete in the trace. Replay is deterministic,
/// so two replays of the same trace — in this process or another —
/// produce identical verdicts and violation sequence ids.
pub fn replay(trace: &CampaignTrace) -> ReplayOutcome {
    replay_events(trace, &trace.events)
}

/// Replays an explicit event slice under `trace`'s configuration (same
/// semantics as [`replay`], which passes the trace's own events). The
/// minimizer probes candidate subsequences through this.
pub fn replay_events(trace: &CampaignTrace, events: &[EventRecord]) -> ReplayOutcome {
    let mut rm = ReplayMachine::boot(&TraceHeader::of(trace));
    for ev in events {
        rm.step(&ev.event);
    }
    rm.outcome()
}

/// A booted replay target: feeds recorded events to a fresh machine one
/// at a time, so the schedule can come from anywhere — a materialized
/// slice ([`replay_events`]), a streaming
/// [`TraceReader`](crate::tracefile::TraceReader) ([`replay_stream`]),
/// or the differential matrix replaying one schedule against many fault
/// variants ([`crate::differential`]).
pub struct ReplayMachine {
    proxy: Proxy,
    steps: usize,
}

impl ReplayMachine {
    /// Boots a fresh machine from the trace header: its config, oracle
    /// switches (the oracle always installed — replay exists to
    /// reproduce violations), recorded faults and chaos.
    pub fn boot(header: &TraceHeader) -> ReplayMachine {
        ReplayMachine::boot_with_faults(header, header.fault_bits)
    }

    /// As [`boot`](Self::boot), but with `fault_bits` overriding the
    /// header's recorded faults — differential replay runs one clean
    /// schedule against many deliberately-wrong hypervisors.
    pub fn boot_with_faults(header: &TraceHeader, fault_bits: u32) -> ReplayMachine {
        let proxy = Proxy::builder()
            .config(header.config.clone())
            .oracle_opts(header.oracle_opts)
            .faults(FaultSet::from_bits(fault_bits))
            .chaos(header.chaos)
            .boot();
        ReplayMachine { proxy, steps: 0 }
    }

    /// Executes one recorded event. Only *driver* events run — oracle
    /// and chaos events in a trace are context, not instructions; the
    /// replay oracle regenerates its own. After a hypervisor panic
    /// nothing further executes (the machine is dead; feeding it more of
    /// the schedule would only mask the panic site). Returns `true` when
    /// the event actually executed. No RNG, model or allocator runs:
    /// every argument is already concrete in the event.
    pub fn step(&mut self, ev: &Event) -> bool {
        let m = &self.proxy.machine;
        if m.panicked().is_some() {
            return false;
        }
        match ev {
            Event::Hvc { cpu, func, args } => {
                let _ = m.hvc(*cpu, *func, args);
            }
            Event::WriteMem { pa, value } => {
                // Host privilege: through the host's stage 2, like the
                // recording side (Proxy::write_mem).
                let _ = m.host_write(0, *pa, *value);
            }
            Event::CorruptMem { pa, value } => {
                let _ = m.mem.write_u64(PhysAddr::new(*pa), *value);
            }
            Event::HostAccess { cpu, addr, access } => {
                let _ = m.host_access(*cpu, *addr, *access);
            }
            Event::PushGuestOp { handle, idx, op } => {
                let _ = m.push_guest_op(*handle, *idx, *op);
            }
            _ => return false,
        }
        self.steps += 1;
        true
    }

    /// Driver events executed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Settles the replay oracle and collects the outcome. Replay is
    /// deterministic, so two replays of the same schedule — in this
    /// process or another — produce identical outcomes.
    pub fn outcome(self) -> ReplayOutcome {
        ReplayOutcome {
            violations: self.proxy.violations(),
            hyp_panic: self.proxy.machine.panicked(),
            steps: self.steps,
        }
    }
}

/// Replays a *streamed* schedule under `header`'s configuration in O(1)
/// memory: the events arrive as fallible decode results (a
/// [`TraceReader`](crate::tracefile::TraceReader), typically) and are
/// executed as they decode. Execution stops at a hypervisor panic, like
/// every replay — but the stream is still drained to its end, so a
/// truncated or bit-rotted tail fails the whole replay even when the
/// panic comes first: a streamed replay accepts exactly the trace files
/// [`load_trace`](crate::tracefile::load_trace) accepts.
///
/// # Errors
///
/// The stream's first decode error, if it has one.
pub fn replay_stream<I>(header: &TraceHeader, events: I) -> Result<ReplayOutcome, TraceFileError>
where
    I: IntoIterator<Item = Result<EventRecord, TraceFileError>>,
{
    let mut rm = ReplayMachine::boot(header);
    for rec in events {
        rm.step(&rec?.event);
    }
    Ok(rm.outcome())
}

// The greedy minimizer moved to its own module so campaign post-mortems
// and fuzzer crash triage share it; re-exported here because
// `campaign::minimize` predates the split.
pub use crate::minimize::minimize;

#[cfg(test)]
mod tests {
    use super::*;
    use pkvm_hyp::faults::Fault;

    #[test]
    fn worker_seeds_are_distinct_streams() {
        let seeds: Vec<u64> = (0..8).map(|w| worker_seed(0xcafe, w)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        assert_ne!(worker_seed(0xcafe, 0), worker_seed(0xcafd, 0));
    }

    #[test]
    fn concurrent_clean_campaign_stays_clean() {
        // The concurrent stress test of the satellite list: 4 workers on
        // a clean hypervisor with fixed seeds must see zero violations —
        // this is the first genuinely concurrent exercise of the §4.4
        // non-interference machinery.
        let cfg = CampaignCfg::builder()
            .workers(4)
            .steps_per_worker(400)
            .base_seed(0x5eed)
            .record_trace(false)
            .build();
        let report = run(&cfg);
        assert!(
            report.is_clean(),
            "clean concurrent campaign found violations:\n{}\n{:?}",
            report.render(),
            report.violations
        );
        assert!(report.stats.calls > 400, "{}", report.render());
        for w in &report.workers {
            assert!(w.steps > 0, "worker {} never stepped", w.worker);
        }
    }

    #[test]
    fn android_campaign_stays_clean_and_replays() {
        // The mixed-android mode: share/unshare ping-pong, VM churn and
        // firmware loads from several workers at once, with the Android
        // spec checks (firmware protection, transfer protocol) on by
        // default. Clean hypervisor => zero violations, and the recorded
        // schedule replays to the same verdict.
        let report = CampaignCfg::builder()
            .workers(3)
            .steps_per_worker(400)
            .base_seed(0xa4d201d)
            .android()
            .run();
        assert!(
            report.is_clean(),
            "android campaign found violations on a clean hypervisor:\n{}\n{:?}",
            report.render(),
            report.violations
        );
        let fw = report.stats.per_op.get("firmware").copied().unwrap_or(0);
        assert!(
            fw > 0,
            "android campaign never loaded firmware: {:?}",
            report.stats.per_op
        );
        let trace = report.trace.expect("trace recorded");
        let replayed = replay(&trace);
        assert!(!replayed.violated(), "{:?}", replayed.violations);
    }

    #[test]
    fn violating_campaign_replays_from_seed_and_schedule_alone() {
        let faults = FaultSet::none();
        faults.inject(Fault::SynShareWrongState);
        let report = CampaignCfg::builder()
            .workers(2)
            .steps_per_worker(400)
            .base_seed(0xb0b)
            .faults(&faults)
            .run();
        assert!(!report.is_clean(), "injected bug went unnoticed");
        let trace = report.trace.as_ref().expect("trace recorded");
        assert!(!trace.events.is_empty());
        // The replay builds everything — machine, faults, oracle — from
        // the trace; nothing of the campaign run is reused.
        let replayed = replay(trace);
        assert!(
            replayed.violated(),
            "replay of {} events did not reproduce the violation",
            trace.events.len()
        );
        // And again: replay is deterministic.
        let again = replay(trace);
        assert_eq!(replayed.violations.len(), again.violations.len());
    }

    #[test]
    fn minimized_trace_still_violates_and_is_no_longer() {
        let faults = FaultSet::none();
        faults.inject(Fault::SynShareWrongState);
        let report = CampaignCfg::builder()
            .workers(2)
            .steps_per_worker(300)
            .base_seed(0x51)
            .faults(&faults)
            .run();
        let trace = report.trace.expect("trace recorded");
        let min = minimize(&trace, 40);
        assert!(min.events.len() <= trace.events.len());
        assert!(
            replay(&min).violated(),
            "minimized reproducer lost the violation"
        );
    }

    #[test]
    fn time_budget_stops_the_campaign() {
        let report = CampaignCfg::builder()
            .workers(2)
            .steps_per_worker(u64::MAX)
            .time_budget(Duration::from_millis(200))
            .record_trace(false)
            .run();
        // Not a timing assertion — just that it terminated and the
        // workers did some work before the deadline fired.
        assert!(report.stats.calls > 0);
    }

    #[test]
    fn clean_campaign_without_oracle_runs_bare() {
        let report = CampaignCfg::builder()
            .workers(2)
            .steps_per_worker(100)
            .with_oracle(false)
            .record_trace(false)
            .run();
        assert!(report.is_clean());
        assert!(report.violations.is_empty());
    }
}
