//! The model-guided random tester (§5 "Random testing").
//!
//! Each step proposes an API call: usually a *plausible* one built from
//! the [`TestModel`] (so runs make progress through the state machine —
//! VMs get created, vCPUs loaded, pages donated and reclaimed), sometimes
//! a deliberately arbitrary one (to exercise the error checks). Steps the
//! model predicts would "crash the host" — in the simulation, host
//! accesses to pages whose ownership was given away — are rejected before
//! execution, resolving the paper's tension between randomness and
//! effective testing.

use std::collections::HashMap;

use crate::rng::{Rng, SliceChoose};

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::walk::Access;
use pkvm_hyp::hypercalls::*;
use pkvm_hyp::vm::GuestOp;

use crate::model::{PageUse, TestModel};
use crate::proxy::Proxy;

/// The named operations the tester chooses between, in the order
/// [`RandomCfg::op_weights`] indexes them. The names match the per-op keys
/// in [`RunStats::per_op`].
pub const OP_NAMES: [&str; 16] = [
    "alloc",
    "share",
    "unshare",
    "init_vm",
    "init_vcpu",
    "vcpu_load",
    "vcpu_put",
    "topup",
    "map_guest",
    "vcpu_run",
    "vcpu_regs",
    "teardown",
    "reclaim",
    "host_access",
    "firmware",
    "topup_oversized",
];

/// The default call mix (same proportions the tester has always used,
/// plus small weights for the Android-surface ops).
pub const DEFAULT_OP_WEIGHTS: [f64; OP_NAMES.len()] = [
    20.0, 25.0, 15.0, 6.0, 8.0, 8.0, 5.0, 10.0, 12.0, 12.0, 4.0, 3.0, 6.0, 15.0, 2.0, 1.0,
];

/// Random tester configuration.
#[derive(Clone, Debug)]
pub struct RandomCfg {
    /// RNG seed (runs are reproducible per seed).
    pub seed: u64,
    /// Fraction of steps that issue arbitrary (fuzzed) calls.
    pub invalid_fraction: f64,
    /// Cap on simultaneously live VMs.
    pub max_vms: usize,
    /// Cap on pages the tester allocates.
    pub max_pages: usize,
    /// Pin every issued call to this CPU (campaign workers set it so each
    /// worker drives its own simulated hardware thread).
    pub pin_cpu: Option<usize>,
    /// Relative weight of each operation in [`OP_NAMES`] order. The fuzzer
    /// biases these to steer the call mix; the builder sanitises them the
    /// way it sanitises `invalid_fraction` (see
    /// [`RandomCfgBuilder::build`]).
    pub op_weights: [f64; OP_NAMES.len()],
}

impl Default for RandomCfg {
    fn default() -> Self {
        Self {
            seed: 0xdeadbeef,
            invalid_fraction: 0.15,
            max_vms: 4,
            max_pages: 512,
            pin_cpu: None,
            op_weights: DEFAULT_OP_WEIGHTS,
        }
    }
}

impl RandomCfg {
    /// Starts a builder from the defaults.
    pub fn builder() -> RandomCfgBuilder {
        RandomCfgBuilder(RandomCfg::default())
    }
}

/// Builder for [`RandomCfg`].
#[derive(Clone, Debug, Default)]
pub struct RandomCfgBuilder(RandomCfg);

impl RandomCfgBuilder {
    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.0.seed = seed;
        self
    }

    /// Sets the fraction of fuzzed (arbitrary-argument) steps.
    pub fn invalid_fraction(mut self, f: f64) -> Self {
        self.0.invalid_fraction = f;
        self
    }

    /// Caps simultaneously live VMs.
    pub fn max_vms(mut self, n: usize) -> Self {
        self.0.max_vms = n;
        self
    }

    /// Caps pages the tester allocates.
    pub fn max_pages(mut self, n: usize) -> Self {
        self.0.max_pages = n;
        self
    }

    /// Pins every issued call to one CPU.
    pub fn pin_cpu(mut self, cpu: usize) -> Self {
        self.0.pin_cpu = Some(cpu);
        self
    }

    /// Replaces the whole call mix ([`OP_NAMES`] order).
    pub fn op_weights(mut self, weights: [f64; OP_NAMES.len()]) -> Self {
        self.0.op_weights = weights;
        self
    }

    /// Overrides the weight of one operation by its [`OP_NAMES`] name.
    /// Unknown names panic — a misspelt op is a bug at the call site, not
    /// a value to sanitise.
    pub fn op_weight(mut self, name: &str, weight: f64) -> Self {
        let i = OP_NAMES
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown op name {name:?}"));
        self.0.op_weights[i] = weight;
        self
    }

    /// Finishes the builder. `invalid_fraction` is sanitised here: NaN
    /// falls back to the default, anything else is clamped into [0, 1] —
    /// `gen_bool` otherwise silently skews (NaN compares false against
    /// everything, so `NaN` would mean "never fuzz" while `1.7` would
    /// mean "always fuzz" without saying so). `op_weights` get the same
    /// treatment: negatives clamp to zero, and a mix containing NaN or
    /// summing to zero (or not summing at all — an infinity swallows every
    /// other weight) falls back to uniform rather than silently skewing
    /// the weighted pick.
    pub fn build(mut self) -> RandomCfg {
        let f = self.0.invalid_fraction;
        self.0.invalid_fraction = if f.is_nan() {
            RandomCfg::default().invalid_fraction
        } else {
            f.clamp(0.0, 1.0)
        };
        let w = &mut self.0.op_weights;
        let bad = w.iter().any(|x| x.is_nan());
        for x in w.iter_mut() {
            *x = x.max(0.0);
        }
        let total: f64 = w.iter().sum();
        if bad || !total.is_finite() || total <= 0.0 {
            *w = [1.0; OP_NAMES.len()];
        }
        self.0
    }
}

/// Counters for one run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Hypercalls actually issued.
    pub calls: u64,
    /// Calls that returned success.
    pub ok: u64,
    /// Calls that returned an error.
    pub errs: u64,
    /// Steps rejected by the crash predictor.
    pub rejected: u64,
    /// Host memory accesses performed.
    pub host_accesses: u64,
    /// Per-operation counts.
    pub per_op: HashMap<&'static str, u64>,
}

impl RunStats {
    /// Folds another run's counters into this one (campaign aggregation).
    pub fn merge(&mut self, other: &RunStats) {
        self.calls += other.calls;
        self.ok += other.ok;
        self.errs += other.errs;
        self.rejected += other.rejected;
        self.host_accesses += other.host_accesses;
        for (op, n) in &other.per_op {
            *self.per_op.entry(op).or_insert(0) += n;
        }
    }

    fn bump(&mut self, op: &'static str, ok: bool) {
        self.calls += 1;
        if ok {
            self.ok += 1;
        } else {
            self.errs += 1;
        }
        *self.per_op.entry(op).or_insert(0) += 1;
    }
}

/// The random tester: owns the proxy and its generator model.
pub struct RandomTester {
    /// The system under test.
    pub proxy: Proxy,
    /// The generator's abstract model.
    pub model: TestModel,
    /// Run counters.
    pub stats: RunStats,
    cfg: RandomCfg,
    rng: Rng,
}

impl RandomTester {
    /// Wraps `proxy` with a fresh model and RNG.
    pub fn new(proxy: Proxy, cfg: RandomCfg) -> RandomTester {
        let model = TestModel::new(proxy.machine.nr_cpus());
        let rng = Rng::seed_from_u64(cfg.seed);
        RandomTester {
            proxy,
            model,
            stats: RunStats::default(),
            cfg,
            rng,
        }
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Executes one randomly chosen step.
    pub fn step(&mut self) {
        if self.rng.gen_bool(self.cfg.invalid_fraction) {
            self.fuzz_step();
            return;
        }
        // Weighted choice over plausible operations ([`OP_NAMES`] order,
        // weights from the config so the fuzzer can bias the mix).
        const OPS: [fn(&mut RandomTester); OP_NAMES.len()] = [
            RandomTester::op_alloc,
            RandomTester::op_share,
            RandomTester::op_unshare,
            RandomTester::op_init_vm,
            RandomTester::op_init_vcpu,
            RandomTester::op_vcpu_load,
            RandomTester::op_vcpu_put,
            RandomTester::op_topup,
            RandomTester::op_map_guest,
            RandomTester::op_guest_step,
            RandomTester::op_vcpu_regs,
            RandomTester::op_teardown,
            RandomTester::op_reclaim,
            RandomTester::op_host_access,
            RandomTester::op_firmware,
            RandomTester::op_topup_oversized,
        ];
        let total: f64 = self.cfg.op_weights.iter().sum();
        let mut pick = self.rng.gen_f64() * total;
        for (i, f) in OPS.iter().enumerate() {
            pick -= self.cfg.op_weights[i];
            if pick < 0.0 {
                f(self);
                return;
            }
        }
        // Floating-point slack can leave `pick` at exactly 0 after the
        // last subtraction; fall through to the last weighted op.
        let last = self
            .cfg
            .op_weights
            .iter()
            .rposition(|&w| w > 0.0)
            .unwrap_or(OPS.len() - 1);
        OPS[last](self);
    }

    fn rand_cpu(&mut self) -> usize {
        match self.cfg.pin_cpu {
            Some(c) => c,
            None => self.rng.gen_range(0..self.proxy.machine.nr_cpus()),
        }
    }

    /// A CPU with no loaded vCPU — the pinned CPU when pinning, so a
    /// campaign worker never loads onto another worker's thread.
    fn pick_idle_cpu(&mut self) -> Option<usize> {
        match self.cfg.pin_cpu {
            Some(c) => (self.model.loaded.get(c) == Some(&None)).then_some(c),
            None => {
                let idle = self.model.idle_cpus();
                idle.choose(&mut self.rng).copied()
            }
        }
    }

    /// A CPU with a loaded vCPU — the pinned CPU when pinning.
    fn pick_busy_cpu(&mut self) -> Option<usize> {
        match self.cfg.pin_cpu {
            Some(c) => matches!(self.model.loaded.get(c), Some(Some(_))).then_some(c),
            None => {
                let busy: Vec<usize> = (0..self.model.loaded.len())
                    .filter(|&c| self.model.loaded[c].is_some())
                    .collect();
                busy.choose(&mut self.rng).copied()
            }
        }
    }

    fn op_alloc(&mut self) {
        if self.model.pages.len() >= self.cfg.max_pages {
            return;
        }
        let Some(pfn) = self.proxy.try_alloc_pages(1) else {
            return;
        };
        self.model.add_page(pfn);
        *self.stats.per_op.entry("alloc").or_insert(0) += 1;
    }

    fn op_share(&mut self) {
        let free = self.model.free_pages();
        let Some(&pfn) = free.choose(&mut self.rng) else {
            return;
        };
        let cpu = self.rand_cpu();
        let ok = self.proxy.share(cpu, pfn).is_ok();
        if ok {
            self.model.set_page(pfn, PageUse::SharedHyp);
        }
        self.stats.bump("share", ok);
    }

    fn op_unshare(&mut self) {
        let shared = self.model.pages_in(PageUse::SharedHyp);
        let Some(&pfn) = shared.choose(&mut self.rng) else {
            return;
        };
        let cpu = self.rand_cpu();
        let ok = self.proxy.unshare(cpu, pfn).is_ok();
        if ok {
            self.model.set_page(pfn, PageUse::Free);
        }
        self.stats.bump("unshare", ok);
    }

    fn op_init_vm(&mut self) {
        if self.model.vms.len() >= self.cfg.max_vms {
            return;
        }
        let nr_vcpus = self.rng.gen_range(1..=2u64);
        let protected = self.rng.gen_bool(0.7);
        let cpu = self.rand_cpu();
        match self.proxy.init_vm(cpu, nr_vcpus, protected) {
            Ok(handle) => {
                self.model.add_vm(handle, nr_vcpus as usize, protected);
                self.stats.bump("init_vm", true);
            }
            Err(_) => self.stats.bump("init_vm", false),
        }
    }

    fn op_init_vcpu(&mut self) {
        let candidates: Vec<(u32, usize)> = self
            .model
            .vms
            .iter()
            .flat_map(|v| {
                v.vcpus
                    .iter()
                    .enumerate()
                    .filter(|(_, vc)| !vc.initialized)
                    .map(move |(i, _)| (v.handle, i))
            })
            .collect();
        let Some(&(handle, idx)) = candidates.choose(&mut self.rng) else {
            return;
        };
        let cpu = self.rand_cpu();
        let ok = self.proxy.init_vcpu(cpu, handle, idx as u64).is_ok();
        if ok {
            // The model may have been desynced by fuzzed calls; update
            // defensively.
            if let Some(vm) = self.model.vm_mut(handle) {
                if let Some(vc) = vm.vcpus.get_mut(idx) {
                    vc.initialized = true;
                }
            }
        }
        self.stats.bump("init_vcpu", ok);
    }

    fn op_vcpu_load(&mut self) {
        let Some(cpu) = self.pick_idle_cpu() else {
            return;
        };
        let candidates: Vec<(u32, usize)> = self
            .model
            .vms
            .iter()
            .flat_map(|v| {
                v.vcpus
                    .iter()
                    .enumerate()
                    .filter(|(_, vc)| vc.initialized && vc.loaded_on.is_none())
                    .map(move |(i, _)| (v.handle, i))
            })
            .collect();
        let Some(&(handle, idx)) = candidates.choose(&mut self.rng) else {
            return;
        };
        let ok = self.proxy.vcpu_load(cpu, handle, idx as u64).is_ok();
        if ok {
            if let Some(vc) = self.model.vm_mut(handle).and_then(|v| v.vcpus.get_mut(idx)) {
                vc.loaded_on = Some(cpu);
            }
            self.model.loaded[cpu] = Some((handle, idx));
        }
        self.stats.bump("vcpu_load", ok);
    }

    fn op_vcpu_put(&mut self) {
        let Some(cpu) = self.pick_busy_cpu() else {
            return;
        };
        let ok = self.proxy.vcpu_put(cpu).is_ok();
        if ok {
            if let Some((handle, idx)) = self.model.loaded[cpu].take() {
                if let Some(vc) = self.model.vm_mut(handle).and_then(|v| v.vcpus.get_mut(idx)) {
                    vc.loaded_on = None;
                }
            }
        }
        self.stats.bump("vcpu_put", ok);
    }

    fn op_topup(&mut self) {
        let Some(cpu) = self.pick_busy_cpu() else {
            return;
        };
        let nr = self.rng.gen_range(1..=8u64);
        // Use fresh pages and register them as donated to the VM.
        let (handle, _) = self.model.loaded[cpu].expect("busy cpu");
        let Some(pfn) = self.proxy.try_alloc_pages(nr) else {
            return;
        };
        let ok = self.proxy.topup_raw(cpu, pfn << 12, nr).is_ok();
        for i in 0..nr {
            self.model.add_page(pfn + i);
            if ok {
                self.model
                    .set_page(pfn + i, PageUse::Donated { vm: handle });
            }
        }
        if ok {
            if let Some((h, idx)) = self.model.loaded[cpu] {
                if let Some(vm) = self.model.vm_mut(h) {
                    vm.vcpus[idx].memcache += nr;
                }
            }
        }
        self.stats.bump("topup", ok);
    }

    fn op_map_guest(&mut self) {
        let Some(cpu) = self.pick_busy_cpu() else {
            return;
        };
        let (handle, _idx) = self.model.loaded[cpu].expect("busy cpu");
        let free = self.model.free_pages();
        let Some(&pfn) = free.choose(&mut self.rng) else {
            return;
        };
        let gfn = {
            let Some(vm) = self.model.vm_mut(handle) else {
                return;
            };
            let g = vm.next_gfn;
            vm.next_gfn += 1;
            g
        };
        let ok = self.proxy.map_guest_pfn(cpu, pfn, gfn).is_ok();
        if ok {
            self.model
                .set_page(pfn, PageUse::GuestMapped { vm: handle, gfn });
            if let Some(vm) = self.model.vm_mut(handle) {
                vm.mapped.push((gfn, pfn));
            }
        }
        self.stats.bump("map_guest", ok);
    }

    fn op_guest_step(&mut self) {
        let Some(cpu) = self.pick_busy_cpu() else {
            return;
        };
        let (handle, idx) = self.model.loaded[cpu].expect("busy cpu");
        let (mapped, guest_shared) = {
            let Some(vm) = self.model.vm(handle) else {
                return;
            };
            (vm.mapped.clone(), vm.guest_shared.clone())
        };
        // Choose a guest action over its mapped/shared frames.
        let op = match self.rng.gen_range(0..5u32) {
            0 => mapped
                .choose(&mut self.rng)
                .map(|&(g, _)| GuestOp::Read(g * PAGE_SIZE)),
            1 => {
                let v = self.rng.gen_u64();
                mapped
                    .choose(&mut self.rng)
                    .map(|&(g, _)| GuestOp::Write(g * PAGE_SIZE, v))
            }
            2 => {
                let sharable: Vec<u64> = mapped
                    .iter()
                    .filter(|(g, _)| !guest_shared.contains(g))
                    .map(|&(g, _)| g)
                    .collect();
                sharable
                    .choose(&mut self.rng)
                    .map(|&g| GuestOp::HvcShareHost(g * PAGE_SIZE))
            }
            3 => guest_shared
                .choose(&mut self.rng)
                .map(|&g| GuestOp::HvcUnshareHost(g * PAGE_SIZE)),
            _ => Some(GuestOp::Wfi),
        };
        let Some(op) = op else { return };
        if self.proxy.push_guest_op(handle, idx, op).is_err() {
            return;
        }
        let r = self.proxy.vcpu_run(cpu);
        let ok = r.is_ok();
        if ok {
            match op {
                GuestOp::HvcShareHost(gipa) => {
                    if let Some(vm) = self.model.vm_mut(handle) {
                        vm.guest_shared.push(gipa / PAGE_SIZE);
                    }
                }
                GuestOp::HvcUnshareHost(gipa) => {
                    if let Some(vm) = self.model.vm_mut(handle) {
                        vm.guest_shared.retain(|&g| g != gipa / PAGE_SIZE);
                    }
                }
                _ => {}
            }
        }
        self.stats.bump("vcpu_run", ok);
    }

    fn op_vcpu_regs(&mut self) {
        let Some(cpu) = self.pick_busy_cpu() else {
            return;
        };
        let n = self.rng.gen_range(0..31u64);
        let v = self.rng.gen_u64();
        let set_ok = self.proxy.vcpu_set_reg(cpu, n, v).is_ok();
        let get = self.proxy.vcpu_get_reg(cpu, n);
        self.stats.bump("vcpu_regs", set_ok && get == Ok(v));
    }

    fn op_teardown(&mut self) {
        let candidates: Vec<u32> = self
            .model
            .vms
            .iter()
            .filter(|v| v.vcpus.iter().all(|vc| vc.loaded_on.is_none()))
            .map(|v| v.handle)
            .collect();
        let Some(&handle) = candidates.choose(&mut self.rng) else {
            return;
        };
        let cpu = self.rand_cpu();
        let ok = self.proxy.teardown(cpu, handle).is_ok();
        if ok {
            self.model.teardown_vm(handle);
        }
        self.stats.bump("teardown", ok);
    }

    fn op_reclaim(&mut self) {
        let reclaimable = self.model.pages_in(PageUse::Reclaimable);
        let Some(&pfn) = reclaimable.choose(&mut self.rng) else {
            return;
        };
        let cpu = self.rand_cpu();
        let ok = self.proxy.reclaim(cpu, pfn).is_ok();
        if ok {
            self.model.set_page(pfn, PageUse::Free);
            // Read the page straight back: reclaim must have wiped it, so
            // this gives the oracle an observation point right where
            // `SynReclaimSkipsWipe` would leave guest data behind.
            let _ = self.proxy.host_access(cpu, pfn * PAGE_SIZE, Access::Read);
            self.stats.host_accesses += 1;
        }
        self.stats.bump("reclaim", ok);
    }

    fn op_host_access(&mut self) {
        // Pick a page and reject the access if the model predicts a fault
        // (the "crash the host" analog).
        let all: Vec<u64> = self.model.pages.iter().map(|&(p, _)| p).collect();
        let Some(&pfn) = all.choose(&mut self.rng) else {
            return;
        };
        if self.model.host_access_would_fault(pfn) {
            self.stats.rejected += 1;
            return;
        }
        let cpu = self.rand_cpu();
        let access = if self.rng.gen_bool(0.5) {
            Access::Read
        } else {
            Access::Write
        };
        let _ = self.proxy.host_access(cpu, pfn * PAGE_SIZE, access);
        self.stats.host_accesses += 1;
    }

    fn op_firmware(&mut self) {
        // pvmfw-style protected boot: donate a small firmware region into
        // a protected VM before any vCPU is initialised. The host loses
        // the pages permanently, even across teardown.
        if self.model.pages.len() >= self.cfg.max_pages {
            return;
        }
        let candidates: Vec<u32> = self
            .model
            .vms
            .iter()
            .filter(|v| v.protected && v.vcpus.iter().all(|vc| !vc.initialized))
            .map(|v| v.handle)
            .collect();
        let Some(&handle) = candidates.choose(&mut self.rng) else {
            return;
        };
        let nr = self.rng.gen_range(1..=4u64);
        let Some(pfn) = self.proxy.try_alloc_pages(nr) else {
            return;
        };
        let gfn = {
            let Some(vm) = self.model.vm_mut(handle) else {
                return;
            };
            let g = vm.next_gfn;
            vm.next_gfn += nr;
            g
        };
        let cpu = self.rand_cpu();
        let ok = self.proxy.load_firmware(cpu, handle, pfn, gfn, nr).is_ok();
        for i in 0..nr {
            self.model.add_page(pfn + i);
            if ok {
                self.model.set_page(pfn + i, PageUse::Firmware);
            }
        }
        self.stats.bump("firmware", ok);
    }

    fn op_topup_oversized(&mut self) {
        // An oversized top-up must bounce off the size check (`E2BIG`)
        // without consuming anything; under `Bug2MemcacheSize` the
        // narrow-type truncation silently accepts it, and the spec check
        // flags the divergent return value.
        let Some(cpu) = self.pick_busy_cpu() else {
            return;
        };
        let addr = 0x47f0_0000u64; // page-aligned DRAM; never actually donated
        let ok = self.proxy.topup_raw(cpu, addr, 0x1_0000).is_ok();
        self.stats.bump("topup_oversized", ok);
    }

    /// An arbitrary call: random function id from the ABI (or garbage) and
    /// fuzzed arguments drawn from interesting neighbourhoods.
    fn fuzz_step(&mut self) {
        let func = if self.rng.gen_bool(0.8) {
            *ALL_HOST_CALLS.choose(&mut self.rng).expect("nonempty")
        } else {
            self.rng.gen_u64()
        };
        let args: Vec<u64> = (0..3).map(|_| self.fuzz_arg()).collect();
        let cpu = self.rand_cpu();
        let ret = self.proxy.hvc(cpu, func, &args);
        self.stats.bump("fuzz", ret == 0);
        // The model deliberately does not track fuzzed calls; subsequent
        // model-guided steps may now see "unexpected" errors, which is
        // fine — they are counted, not trusted.
    }

    fn fuzz_arg(&mut self) -> u64 {
        let (pool_pfn, pool_pages) = self.proxy.machine.state.hyp_range;
        match self.rng.gen_range(0..6u32) {
            0 => self.rng.gen_u64(),                           // anywhere
            1 => self.rng.gen_range(0x40000u64..0x48000),      // DRAM pfns
            2 => pool_pfn + self.rng.gen_range(0..pool_pages), // the carveout
            3 => 0x9000 + self.rng.gen_range(0..16u64),        // MMIO pfns
            4 => self.rng.gen_range(0..64u64),                 // small values
            _ => 0x1000 + self.rng.gen_range(0..4u64),         // handle-shaped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousand_steps_stay_clean_under_the_oracle() {
        let proxy = Proxy::builder().boot();
        let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(1).build());
        t.run(1000);
        assert!(t.stats.calls > 400, "tester barely ran: {:?}", t.stats);
        assert!(
            t.proxy.all_clear(),
            "random run found violations on a clean hypervisor:\n{:?}",
            t.proxy.violations()
        );
        assert!(t.proxy.machine.panicked().is_none());
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let run = |seed| {
            let proxy = Proxy::builder().boot();
            let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(seed).build());
            t.run(300);
            (t.stats.calls, t.stats.ok, t.stats.errs)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn random_run_reaches_deep_states() {
        let proxy = Proxy::builder().boot();
        let mut t = RandomTester::new(
            proxy,
            RandomCfg::builder().seed(7).invalid_fraction(0.05).build(),
        );
        t.run(2000);
        // The model guidance must get us past the shallow calls.
        assert!(t.stats.per_op.get("init_vm").copied().unwrap_or(0) > 0);
        assert!(t.stats.per_op.get("vcpu_load").copied().unwrap_or(0) > 0);
        assert!(t.stats.per_op.get("map_guest").copied().unwrap_or(0) > 0);
        assert!(t.stats.per_op.get("vcpu_run").copied().unwrap_or(0) > 0);
        assert!(t.proxy.all_clear(), "{:?}", t.proxy.violations());
    }

    #[test]
    fn builder_sanitises_invalid_fraction() {
        let build = |f| RandomCfg::builder().invalid_fraction(f).build();
        assert_eq!(build(0.4).invalid_fraction, 0.4);
        assert_eq!(build(-0.3).invalid_fraction, 0.0);
        assert_eq!(build(1.7).invalid_fraction, 1.0);
        assert_eq!(build(f64::INFINITY).invalid_fraction, 1.0);
        assert_eq!(
            build(f64::NAN).invalid_fraction,
            RandomCfg::default().invalid_fraction
        );
    }

    #[test]
    fn builder_sanitises_op_weights() {
        // Negatives clamp to zero, the rest survive.
        let mut w = DEFAULT_OP_WEIGHTS;
        w[0] = -5.0;
        let cfg = RandomCfg::builder().op_weights(w).build();
        assert_eq!(cfg.op_weights[0], 0.0);
        assert_eq!(cfg.op_weights[1], DEFAULT_OP_WEIGHTS[1]);
        // NaN anywhere, a zero sum, or an infinity poisons the whole mix:
        // uniform fallback.
        let uniform = [1.0; OP_NAMES.len()];
        let nan = RandomCfg::builder().op_weight("share", f64::NAN).build();
        assert_eq!(nan.op_weights, uniform);
        let zero = RandomCfg::builder()
            .op_weights([0.0; OP_NAMES.len()])
            .build();
        assert_eq!(zero.op_weights, uniform);
        let inf = RandomCfg::builder()
            .op_weight("alloc", f64::INFINITY)
            .build();
        assert_eq!(inf.op_weights, uniform);
        // All-negative sums to zero after clamping: uniform too.
        let neg = RandomCfg::builder()
            .op_weights([-1.0; OP_NAMES.len()])
            .build();
        assert_eq!(neg.op_weights, uniform);
    }

    #[test]
    #[should_panic(expected = "unknown op name")]
    fn op_weight_rejects_unknown_names() {
        let _ = RandomCfg::builder().op_weight("no_such_op", 1.0);
    }

    #[test]
    fn op_weights_bias_the_call_mix() {
        // Zero out everything but alloc+share: only those ops (plus the
        // invalid fraction, disabled here) may run.
        let mut w = [0.0; OP_NAMES.len()];
        w[0] = 1.0; // alloc
        w[1] = 3.0; // share
        let proxy = Proxy::builder().boot();
        let mut t = RandomTester::new(
            proxy,
            RandomCfg::builder()
                .seed(5)
                .invalid_fraction(0.0)
                .op_weights(w)
                .build(),
        );
        t.run(400);
        assert!(t.stats.per_op.get("share").copied().unwrap_or(0) > 0);
        for op in OP_NAMES {
            if op != "alloc" && op != "share" {
                assert_eq!(
                    t.stats.per_op.get(op).copied().unwrap_or(0),
                    0,
                    "zero-weighted op {op} ran"
                );
            }
        }
        assert!(t.proxy.all_clear(), "{:?}", t.proxy.violations());
    }

    #[test]
    fn pinned_tester_only_issues_calls_on_its_cpu() {
        let proxy = Proxy::builder().boot();
        let machine = proxy.machine.clone();
        let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(12).pin_cpu(2).build());
        t.run(500);
        assert!(t.stats.calls > 100, "{:?}", t.stats);
        // Only CPU 2's register file should ever have been touched.
        for cpu in 0..machine.nr_cpus() {
            let used = machine.cpus[cpu].lock().regs != Default::default();
            assert_eq!(used, cpu == 2, "cpu {cpu} usage");
        }
        assert!(t.proxy.all_clear(), "{:?}", t.proxy.violations());
    }

    #[test]
    fn firmware_op_reaches_protected_boot() {
        use crate::model::PageUse;
        let proxy = Proxy::builder().boot();
        // Keep vCPUs uninitialised so protected VMs stay eligible for
        // firmware loads, and bias the mix towards them.
        let mut t = RandomTester::new(
            proxy,
            RandomCfg::builder()
                .seed(11)
                .invalid_fraction(0.0)
                .op_weight("init_vcpu", 0.0)
                .op_weight("firmware", 30.0)
                .build(),
        );
        t.run(800);
        assert!(t.stats.per_op.get("firmware").copied().unwrap_or(0) > 0);
        assert!(
            !t.model.pages_in(PageUse::Firmware).is_empty(),
            "no firmware load ever succeeded: {:?}",
            t.stats
        );
        assert!(t.proxy.all_clear(), "{:?}", t.proxy.violations());
    }

    #[test]
    fn oversized_topup_diverges_under_bug2() {
        use pkvm_hyp::faults::{Fault, FaultSet};
        let run = |faults: FaultSet| {
            let proxy = Proxy::builder().faults(faults).boot();
            let mut t = RandomTester::new(
                proxy,
                RandomCfg::builder()
                    .seed(9)
                    .invalid_fraction(0.0)
                    .op_weight("topup_oversized", 30.0)
                    .build(),
            );
            t.run(600);
            let n = t.stats.per_op.get("topup_oversized").copied().unwrap_or(0);
            (n, t.proxy.all_clear())
        };
        let (n_clean, clean_ok) = run(FaultSet::none());
        assert!(n_clean > 0, "oversized top-up never ran");
        assert!(clean_ok, "oversized top-up false positive on clean run");
        let faults = FaultSet::none();
        faults.inject(Fault::Bug2MemcacheSize);
        let (n_bug, all_clear) = run(faults);
        assert!(n_bug > 0);
        assert!(!all_clear, "oversized top-up missed Bug2MemcacheSize");
    }

    #[test]
    fn random_run_detects_an_injected_bug() {
        use pkvm_hyp::faults::{Fault, FaultSet};
        let faults = FaultSet::none();
        faults.inject(Fault::SynShareWrongState);
        let proxy = Proxy::builder().faults(faults).boot();
        let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(3).build());
        t.run(200);
        assert!(
            !t.proxy.all_clear(),
            "random testing missed an injected bug"
        );
    }
}
