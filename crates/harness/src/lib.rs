//! Test infrastructure for exercising the executable specification (§5).
//!
//! - [`proxy`] — the hyp-proxy analog: a user-space-like handle for
//!   allocating host memory and invoking (well-behaved or arbitrary)
//!   hypercalls;
//! - [`scenarios`] — the 41 handwritten tests (19 error-free, 22 error
//!   paths, a handful highly concurrent);
//! - [`model`] / [`random`] — the model-guided random tester, with crash
//!   prediction, reproducible per seed;
//! - [`campaign`] — parallel multi-worker random-testing campaigns with
//!   recorded schedules and deterministic replay;
//! - [`minimize`] — the budgeted greedy trace minimizer shared by
//!   campaign post-mortems and fuzzer crash triage;
//! - [`fuzz`] — the coverage-guided fuzzer: corpus of persisted seeds,
//!   structure-aware mutation, rarity-weighted scheduling and violation
//!   triage, fed back by per-input coverage deltas and a ghost-state
//!   novelty signature;
//! - [`fleet`] — the crash-tolerant fuzzing fleet: a coordinator
//!   supervising N fuzzing worker *processes* over a shared-directory
//!   `.pkvmtrace` protocol (heartbeats, exponential-backoff respawn,
//!   quarantine, pull-based corpus merge) where every component
//!   tolerates the failure of every other;
//! - [`tracefile`] — the `.pkvmtrace` on-disk codec, streamed: a
//!   recorded campaign (config, chaos, seeds and the full event
//!   timeline) persists through an incremental [`TraceWriter`] and
//!   decodes one event at a time through a [`TraceReader`], so replay,
//!   analytics and compaction all run in O(1) memory;
//! - [`differential`] — N-version differential replay: one recorded
//!   schedule re-executed against the clean hypervisor and every
//!   injectable fault variant, folded into a detection matrix of
//!   first-divergence event seqs;
//! - [`chaos`] — the chaos fault-injection engine: seeded corruption of
//!   the oracle's inputs (and the machine under it) with a
//!   detection-matrix sweep proving the oracle fails safe;
//! - [`coverage`] — implementation and specification coverage reports
//!   over the custom coverage registry;
//! - [`bugs`] — the bug catalog: triggers and detection verdicts for the
//!   five real pKVM bugs and the synthetic-bug suite.

pub mod android;
pub mod bugs;
pub mod campaign;
pub mod chaos;
pub mod coverage;
pub mod differential;
pub mod fleet;
pub mod fuzz;
pub mod minimize;
pub mod model;
pub mod proxy;
pub mod random;
pub mod rng;
pub mod scenarios;
pub mod tracefile;

pub use bugs::{detect, sweep, BugReport, Detection};
pub use campaign::{
    replay, replay_events, replay_stream, CampaignCfg, CampaignReport, CampaignTrace,
    ReplayMachine, ReplayOutcome, WorkerReport,
};
pub use chaos::{
    classify, detection_matrix, mutation_sweep, render_mutation, ChaosCfg, ChaosDriver,
    ChaosFamily, ChaosHooks, ChaosInjected, ChaosMatrix, MatrixCfg, MatrixRow, MutationCell,
    RunVerdict,
};
pub use coverage::CoverageSummary;
pub use differential::{differential_matrix, DiffMatrix, DiffRow};
pub use fleet::{FleetCfg, FleetChaos, FleetReport, FleetStats, Supervisor};
pub use fuzz::{CorpusError, FuzzCfg, FuzzReport, Fuzzer};
pub use minimize::{minimize, minimize_with_stats, MinimizeOutcome};
pub use model::{PageUse, TestModel};
pub use proxy::{Proxy, ProxyOpts};
pub use random::{RandomCfg, RandomTester, RunStats};
pub use rng::Rng;
pub use scenarios::{all as all_scenarios, run_all, Kind, Scenario, SuiteResult};
pub use tracefile::{
    atomic_write, compact_trace, load_trace, save_trace, set_fsync_before_rename, validate_bytes,
    CompactError, CompactStats, TraceFileError, TraceHeader, TraceReader, TraceWriter,
};
