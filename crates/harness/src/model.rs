//! The very abstract model guiding random test generation (§5).
//!
//! Truly random hypercalls either crash the system under test or bounce
//! off the first permission check without ever progressing through the
//! state machine. The paper resolves the tension by keeping, inside the
//! generator, an abstraction *of the specification's already-abstract
//! ghost state*: "a pool of allocated host memory, the subset of that
//! which has been donated to pKVM, the VMs with their handles and their
//! corresponding shared memory, the vCPUs also with their handles and
//! corresponding shared memory, and the vCPU memcache pages". This module
//! is that model: enough state to propose mostly-valid calls, predict
//! which would crash the host, and steer towards deep states.

use pkvm_hyp::vm::Handle;

/// What the model believes about one page it allocated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageUse {
    /// Owned by the host, free for any use.
    Free,
    /// Shared with the hypervisor (`host_share_hyp`).
    SharedHyp,
    /// Donated for VM/vCPU metadata or memcache (unavailable until the
    /// owning VM is torn down).
    Donated {
        /// The VM it was donated for.
        vm: Handle,
    },
    /// Mapped into a guest.
    GuestMapped {
        /// The VM it is mapped into.
        vm: Handle,
        /// The guest frame it backs.
        gfn: u64,
    },
    /// Awaiting `host_reclaim_page` after a teardown.
    Reclaimable,
    /// Donated as protected-VM firmware (`vm_load_firmware`). Terminal:
    /// the host never regains the page, even across teardown.
    Firmware,
}

/// One modelled vCPU.
#[derive(Clone, Debug)]
pub struct ModelVcpu {
    /// Has `init_vcpu` succeeded?
    pub initialized: bool,
    /// The CPU it is loaded on, if any.
    pub loaded_on: Option<usize>,
    /// Estimated memcache fill.
    pub memcache: u64,
}

/// One modelled VM.
#[derive(Clone, Debug)]
pub struct ModelVm {
    /// The handle `init_vm` returned.
    pub handle: Handle,
    /// Protected VMs take donations; unprotected ones shares.
    pub protected: bool,
    /// Modelled vCPUs.
    pub vcpus: Vec<ModelVcpu>,
    /// Guest frames currently mapped, with the backing host pfn.
    pub mapped: Vec<(u64, u64)>, // (gfn, pfn)
    /// Guest frames currently shared back with the host.
    pub guest_shared: Vec<u64>,
    /// Next fresh gfn to map.
    pub next_gfn: u64,
}

/// The generator's model of the system state.
#[derive(Clone, Debug, Default)]
pub struct TestModel {
    /// Pages the test has allocated, with their believed use.
    pub pages: Vec<(u64, PageUse)>,
    /// Live VMs.
    pub vms: Vec<ModelVm>,
    /// Which vCPU each CPU has loaded: `(vm handle, vcpu idx)`.
    pub loaded: Vec<Option<(Handle, usize)>>,
}

impl TestModel {
    /// A fresh model for a machine with `nr_cpus` hardware threads.
    pub fn new(nr_cpus: usize) -> TestModel {
        TestModel {
            pages: Vec::new(),
            vms: Vec::new(),
            loaded: vec![None; nr_cpus],
        }
    }

    /// Records a freshly allocated host page.
    pub fn add_page(&mut self, pfn: u64) {
        self.pages.push((pfn, PageUse::Free));
    }

    /// Pages currently in `use_`.
    pub fn pages_in(&self, use_: PageUse) -> Vec<u64> {
        self.pages
            .iter()
            .filter(|(_, u)| *u == use_)
            .map(|&(p, _)| p)
            .collect()
    }

    /// All free pages.
    pub fn free_pages(&self) -> Vec<u64> {
        self.pages_in(PageUse::Free)
    }

    /// Marks `pfn` as being in `use_`.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown to the model (a generator bug).
    pub fn set_page(&mut self, pfn: u64, use_: PageUse) {
        let slot = self
            .pages
            .iter_mut()
            .find(|(p, _)| *p == pfn)
            .expect("page known to model");
        slot.1 = use_;
    }

    /// The VM with `handle`.
    pub fn vm(&self, handle: Handle) -> Option<&ModelVm> {
        self.vms.iter().find(|v| v.handle == handle)
    }

    /// The VM with `handle`, mutably.
    pub fn vm_mut(&mut self, handle: Handle) -> Option<&mut ModelVm> {
        self.vms.iter_mut().find(|v| v.handle == handle)
    }

    /// Records a successful `init_vm`. Any stale entry under the same
    /// handle (left by a fuzzed teardown the model did not track) is
    /// dropped first — the real system has reused the slot.
    pub fn add_vm(&mut self, handle: Handle, nr_vcpus: usize, protected: bool) {
        self.vms.retain(|v| v.handle != handle);
        for l in self.loaded.iter_mut() {
            if matches!(l, Some((h, _)) if *h == handle) {
                *l = None;
            }
        }
        self.vms.push(ModelVm {
            handle,
            protected,
            vcpus: (0..nr_vcpus)
                .map(|_| ModelVcpu {
                    initialized: false,
                    loaded_on: None,
                    memcache: 0,
                })
                .collect(),
            mapped: Vec::new(),
            guest_shared: Vec::new(),
            next_gfn: 0x10,
        });
    }

    /// Records a successful teardown: donated pages of this VM become
    /// free again, guest pages become reclaimable.
    pub fn teardown_vm(&mut self, handle: Handle) {
        self.vms.retain(|v| v.handle != handle);
        for (_, u) in self.pages.iter_mut() {
            match *u {
                PageUse::Donated { vm } if vm == handle => *u = PageUse::Free,
                PageUse::GuestMapped { vm, .. } if vm == handle => *u = PageUse::Reclaimable,
                _ => {}
            }
        }
    }

    /// Would the proposed host access at `pfn` crash the *test*, in the
    /// sense of the paper's "(a) random API calls can crash the host by
    /// changing memory ownership"? Touching pages the host no longer owns
    /// is the simulation analog.
    pub fn host_access_would_fault(&self, pfn: u64) -> bool {
        self.pages.iter().any(|&(p, u)| {
            p == pfn
                && matches!(
                    u,
                    PageUse::Donated { .. }
                        | PageUse::GuestMapped { .. }
                        | PageUse::Reclaimable
                        | PageUse::Firmware
                )
        })
    }

    /// CPUs with no loaded vCPU.
    pub fn idle_cpus(&self) -> Vec<usize> {
        (0..self.loaded.len())
            .filter(|&c| self.loaded[c].is_none())
            .collect()
    }

    /// Live VM handles.
    pub fn handles(&self) -> Vec<Handle> {
        self.vms.iter().map(|v| v.handle).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_lifecycle_through_the_model() {
        let mut m = TestModel::new(2);
        m.add_page(0x100);
        m.add_page(0x101);
        assert_eq!(m.free_pages(), vec![0x100, 0x101]);
        m.set_page(0x100, PageUse::SharedHyp);
        assert_eq!(m.free_pages(), vec![0x101]);
        assert_eq!(m.pages_in(PageUse::SharedHyp), vec![0x100]);
        m.set_page(0x100, PageUse::Free);
        assert_eq!(m.free_pages().len(), 2);
    }

    #[test]
    fn teardown_releases_donations_and_queues_reclaims() {
        let mut m = TestModel::new(1);
        m.add_vm(0x1000, 1, true);
        m.add_page(0x200);
        m.add_page(0x201);
        m.set_page(0x200, PageUse::Donated { vm: 0x1000 });
        m.set_page(0x201, PageUse::GuestMapped { vm: 0x1000, gfn: 5 });
        m.teardown_vm(0x1000);
        assert!(m.vms.is_empty());
        assert_eq!(m.free_pages(), vec![0x200]);
        assert_eq!(m.pages_in(PageUse::Reclaimable), vec![0x201]);
    }

    #[test]
    fn firmware_pages_survive_teardown_and_stay_unreachable() {
        let mut m = TestModel::new(1);
        m.add_vm(0x1000, 1, true);
        m.add_page(0x400);
        m.set_page(0x400, PageUse::Firmware);
        assert!(m.host_access_would_fault(0x400));
        m.teardown_vm(0x1000);
        assert_eq!(m.pages_in(PageUse::Firmware), vec![0x400]);
        assert!(m.host_access_would_fault(0x400));
    }

    #[test]
    fn crash_prediction_flags_unowned_pages() {
        let mut m = TestModel::new(1);
        m.add_page(0x300);
        assert!(!m.host_access_would_fault(0x300));
        m.set_page(0x300, PageUse::Donated { vm: 0x1000 });
        assert!(m.host_access_would_fault(0x300));
        m.set_page(0x300, PageUse::Reclaimable);
        assert!(m.host_access_would_fault(0x300));
    }
}
