//! N-version differential replay: one recorded schedule, many slightly
//! wrong hypervisors.
//!
//! The paper validates its oracle by checking that a specification
//! violation shows up when — and only when — the hypervisor is actually
//! wrong. This module mechanises that argument over the fault catalog:
//! take one *clean-recorded* campaign trace, replay its schedule
//! unchanged against the clean hypervisor and against every
//! [`Fault::ALL`] variant, and fold the outcomes into a detection
//! matrix. The clean row must stay violation-free (the schedule is a
//! true positive control); a fault row "diverges" when the oracle
//! reports at least one violation, and its *first-divergence seq* — the
//! smallest violation anchor ([`Violation::event_seq`]) — says how far
//! into the schedule the variant first left the specification.
//!
//! Every row streams the trace through its own
//! [`TraceReader`](crate::tracefile::TraceReader), so the matrix runs in
//! O(1) memory per row and never materializes the timeline. Replay is
//! deterministic, so the matrix is bit-identical across processes —
//! [`DiffMatrix::matrix_line`] renders the canonical digest line ci.sh
//! compares between two independent computations.
//!
//! Not every fault is detectable this way, by design: replay is
//! single-threaded, so race-window bugs (Bug3, Bug4) rarely fire, and
//! init-time bugs (Bug5) need a machine shape the recorded config may
//! not have. Those three misses are structural. The remaining catalog —
//! including Bug2 (the random driver issues oversized memcache top-ups),
//! SynReclaimSkipsWipe (every reclaim is followed by a host read-back)
//! and SynFirmwareReclaim (the driver donates pvmfw-style firmware) —
//! diverges on a recorded schedule, which is what the gate in
//! `examples/differential.rs` pins.

use std::path::Path;

use pkvm_ghost::Violation;
use pkvm_hyp::faults::Fault;

use crate::campaign::ReplayMachine;
use crate::tracefile::{TraceFileError, TraceReader};

/// One hypervisor variant's outcome under the recorded schedule.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// The injected fault (`None` for the clean control row).
    pub fault: Option<Fault>,
    /// Violations the replay oracle reported.
    pub violations: usize,
    /// The smallest violation anchor — the event seq where this variant
    /// first observably left the specification (`None` when it never
    /// did).
    pub first_divergence: Option<u64>,
    /// The distinct violation kinds observed, sorted.
    pub kinds: Vec<&'static str>,
    /// Whether the variant hit a hypervisor panic.
    pub hyp_panic: bool,
    /// Driver events executed (a panic stops execution early).
    pub steps: usize,
}

impl DiffRow {
    /// The row's stable name: the fault's, or `clean`.
    pub fn name(&self) -> &'static str {
        self.fault.map(Fault::name).unwrap_or("clean")
    }

    /// `true` when the oracle distinguished this variant from the
    /// specification: any violation or a hypervisor panic.
    pub fn diverged(&self) -> bool {
        self.violations > 0 || self.hyp_panic
    }
}

/// The full detection matrix: the clean control row first, then one row
/// per [`Fault::ALL`] variant, all replaying the same recorded schedule.
#[derive(Clone, Debug)]
pub struct DiffMatrix {
    /// Row 0 is the clean control; rows 1.. follow [`Fault::ALL`] order.
    pub rows: Vec<DiffRow>,
    /// Events decoded from the trace (identical for every row).
    pub events: u64,
}

impl DiffMatrix {
    /// The clean control row.
    pub fn clean_row(&self) -> &DiffRow {
        &self.rows[0]
    }

    /// Fault rows (excludes the clean control).
    pub fn fault_rows(&self) -> &[DiffRow] {
        &self.rows[1..]
    }

    /// How many fault rows diverged.
    pub fn detected(&self) -> usize {
        self.fault_rows().iter().filter(|r| r.diverged()).count()
    }

    /// The human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "differential matrix: {} events, {}/{} faults detected",
            self.events,
            self.detected(),
            self.fault_rows().len()
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>6} {:>10} {:>6}  kinds",
            "variant", "viol", "first-div", "steps"
        );
        for row in &self.rows {
            let first = row
                .first_divergence
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "  {:<24} {:>6} {:>10} {:>6}  {}{}",
                row.name(),
                row.violations,
                first,
                row.steps,
                row.kinds.join(","),
                if row.hyp_panic { " [hyp-panic]" } else { "" },
            );
        }
        out
    }

    /// The canonical one-line digest: row names, violation counts,
    /// first-divergence seqs and panic flags folded through FNV-1a.
    /// Replay determinism makes this line bit-identical across
    /// processes; ci.sh compares two independent computations of it.
    pub fn matrix_line(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for row in &self.rows {
            let first = row
                .first_divergence
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into());
            let line = format!(
                "{}:{}:{}:{}:{}\n",
                row.name(),
                row.violations,
                first,
                row.hyp_panic,
                row.kinds.join(",")
            );
            for b in line.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        format!(
            "diff-matrix: events={} detected={}/{} clean-viol={} fnv={:#018x}",
            self.events,
            self.detected(),
            self.fault_rows().len(),
            self.clean_row().violations,
            h,
        )
    }
}

/// Computes the differential matrix for the trace at `path`: the clean
/// hypervisor plus every [`Fault::ALL`] variant, each replaying the
/// recorded schedule streamed through a fresh
/// [`TraceReader`](crate::tracefile::TraceReader). The trace should be a
/// clean recording — the row faults *replace* the header's recorded
/// fault bits, so the clean row really is fault-free.
///
/// # Errors
///
/// The first decode error from any pass over the file (all passes see
/// the same bytes, so in practice the first pass).
pub fn differential_matrix<P: AsRef<Path>>(path: P) -> Result<DiffMatrix, TraceFileError> {
    let path = path.as_ref();
    let mut variants: Vec<Option<Fault>> = vec![None];
    variants.extend(Fault::ALL.iter().copied().map(Some));
    let mut rows = Vec::with_capacity(variants.len());
    let mut events = 0u64;
    for fault in variants {
        let reader = TraceReader::open(path)?;
        let header = reader.header().clone();
        let bits = fault.map(|f| f as u32).unwrap_or(0);
        let mut rm = ReplayMachine::boot_with_faults(&header, bits);
        let mut decoded = 0u64;
        for rec in reader {
            rm.step(&rec?.event);
            decoded += 1;
        }
        events = decoded;
        let outcome = rm.outcome();
        let first_divergence = outcome
            .violations
            .iter()
            .filter_map(Violation::event_seq)
            .min();
        let mut kinds: Vec<&'static str> = outcome.violations.iter().map(Violation::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        rows.push(DiffRow {
            fault,
            violations: outcome.violations.len(),
            first_divergence,
            kinds,
            hyp_panic: outcome.hyp_panic.is_some(),
            steps: outcome.steps,
        });
    }
    Ok(DiffMatrix { rows, events })
}
