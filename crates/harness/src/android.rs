//! Android-realistic workloads: pvmfw-style protected boot, virtio-style
//! share/unshare ping-pong, and dense multi-VM churn.
//!
//! The handwritten suite ([`crate::scenarios`]) exercises the API the way
//! the paper's §5 table does — one call shape per scenario. Production
//! pKVM traffic on an Android device looks different: every protected VM
//! boots through a firmware (pvmfw) donation before its first vCPU
//! exists, virtio queues bounce the same pages between guest and host for
//! the life of the VM, and the system continuously creates and destroys
//! VMs, recycling handles and memcache pages. This module drives those
//! three families through the same [`Proxy`] stack, paired with the
//! oracle's Android-surface spec points (`check_firmware_protection`,
//! `check_transfer_protocol`).
//!
//! Everything here is deterministic: scenarios take a booted proxy and
//! panic on failure, like [`crate::scenarios::Scenario`] bodies, and the
//! churn driver is a plain loop — so campaigns, the differential matrix
//! and the mode-equivalence suite can all reuse them.

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::walk::Access;
use pkvm_hyp::error::Errno;
use pkvm_hyp::handlers::MAX_FIRMWARE_PAGES;
use pkvm_hyp::vm::GuestOp;

use crate::proxy::Proxy;
use crate::random::{DEFAULT_OP_WEIGHTS, OP_NAMES};
use crate::scenarios::{Kind, Scenario};

/// The random-tester call mix for Android-shaped campaigns: heavy
/// share/unshare ping-pong, constant VM creation and teardown (handle
/// churn), and a steady trickle of firmware loads and oversized top-ups
/// so the protected-boot and memcache spec points stay hot.
pub fn android_weights() -> [f64; OP_NAMES.len()] {
    let mut w = DEFAULT_OP_WEIGHTS;
    let mut set = |name: &str, v: f64| {
        let i = OP_NAMES.iter().position(|&n| n == name).expect("known op");
        w[i] = v;
    };
    set("share", 30.0);
    set("unshare", 25.0);
    set("init_vm", 12.0);
    set("teardown", 10.0);
    set("reclaim", 10.0);
    set("firmware", 8.0);
    set("topup_oversized", 2.0);
    w
}

/// One complete VM lifecycle: create, (optionally) load firmware, boot a
/// vCPU, map and touch a guest page, tear down, reclaim. The churn
/// property test and `examples/android.rs` loop this hundreds of times;
/// any step that fails for a resource reason returns the error instead of
/// panicking so callers can assert the degradation mode (`-ENOMEM`, never
/// a hypervisor panic).
pub fn churn_cycle(p: &Proxy, cpu: usize, firmware: bool) -> Result<(), Errno> {
    let handle = p.init_vm(cpu, 1, true)?;
    if firmware {
        let fw = p.try_alloc_pages(1).ok_or(Errno::ENOMEM)?;
        p.load_firmware(cpu, handle, fw, 0xa0, 1)?;
    }
    p.init_vcpu(cpu, handle, 0)?;
    p.vcpu_load(cpu, handle, 0)?;
    p.topup(cpu, 4)?;
    let pfn = p.map_guest(cpu, 0x10)?;
    p.push_guest_op(handle, 0, GuestOp::Write(0x10 * PAGE_SIZE, 0xd1ce))?;
    p.vcpu_run(cpu)?;
    p.vcpu_put(cpu)?;
    p.teardown(cpu, handle)?;
    p.reclaim(cpu, pfn)?;
    // Read-after-reclaim: the page must come back wiped.
    let read = p
        .host_access(cpu, pfn * PAGE_SIZE, Access::Read)
        .map_err(|_| Errno::EPERM)?;
    assert_eq!(read, 0, "reclaimed page {pfn:#x} not wiped");
    Ok(())
}

macro_rules! scenario {
    ($name:ident, $kind:ident, $conc:expr, $body:expr) => {
        Scenario {
            name: stringify!($name),
            kind: Kind::$kind,
            concurrent: $conc,
            run: $body,
        }
    };
}

/// The Android scenario family. Separate from [`crate::scenarios::all`]
/// (whose count mirrors the paper's suite); coverage accounting and the
/// mode-equivalence suite run both.
pub fn all() -> Vec<Scenario> {
    vec![
        scenario!(android_protected_boot, Ok, false, |p| {
            // The pvmfw flow: donate firmware before any vCPU exists,
            // then boot and run the guest out of it.
            let handle = p.init_vm(0, 1, true).expect("init_vm");
            let fw = p.alloc_pages(4);
            p.load_firmware(0, handle, fw, 0xa0, 4).expect("firmware");
            // The host lost the range the instant the donation committed.
            for i in 0..4 {
                assert!(
                    p.host_access(0, (fw + i) * PAGE_SIZE, Access::Read)
                        .is_err(),
                    "host still reads firmware page {i}"
                );
            }
            p.init_vcpu(0, handle, 0).expect("init_vcpu");
            p.vcpu_load(0, handle, 0).expect("vcpu_load");
            p.topup(0, 8).expect("topup");
            // The guest boots from its firmware mapping.
            p.push_guest_op(handle, 0, GuestOp::Read(0xa0 * PAGE_SIZE))
                .expect("push");
            p.vcpu_run(0).expect("vcpu_run");
            p.vcpu_put(0).expect("vcpu_put");
            p.teardown(0, handle).expect("teardown");
            // Retired, not reclaimed: the host never gets the pages back.
            assert_eq!(p.reclaim(0, fw), Err(Errno::EPERM));
            assert!(p.host_access(0, fw * PAGE_SIZE, Access::Read).is_err());
        }),
        scenario!(android_firmware_outlives_handle_reuse, Ok, false, |p| {
            let first = p.init_vm(0, 1, true).expect("init_vm");
            let fw = p.alloc_page();
            p.load_firmware(0, first, fw, 0xa0, 1).expect("firmware");
            p.teardown(0, first).expect("teardown");
            // The freed slot is recycled into a fresh incarnation; the
            // old VM's firmware stays retired through the reuse.
            let second = p.init_vm(0, 1, true).expect("init_vm again");
            assert_eq!(first, second, "slot not recycled");
            let fw2 = p.alloc_page();
            p.load_firmware(0, second, fw2, 0xa0, 1).expect("firmware");
            assert!(p.host_access(0, fw * PAGE_SIZE, Access::Read).is_err());
            p.teardown(0, second).expect("teardown");
            assert!(p.host_access(0, fw * PAGE_SIZE, Access::Read).is_err());
            assert!(p.host_access(0, fw2 * PAGE_SIZE, Access::Read).is_err());
        }),
        scenario!(android_firmware_requires_protected_vm, Err, false, |p| {
            let handle = p.init_vm(0, 1, false).expect("init_vm");
            let fw = p.alloc_page();
            assert_eq!(p.load_firmware(0, handle, fw, 0xa0, 1), Err(Errno::EPERM));
            // The refused donation cost the host nothing.
            assert!(p.host_access(0, fw * PAGE_SIZE, Access::Read).is_ok());
        }),
        scenario!(android_firmware_after_boot_is_busy, Err, false, |p| {
            let handle = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, handle, 0).expect("init_vcpu");
            let fw = p.alloc_page();
            assert_eq!(p.load_firmware(0, handle, fw, 0xa0, 1), Err(Errno::EBUSY));
        }),
        scenario!(android_firmware_bad_sizes, Err, false, |p| {
            let handle = p.init_vm(0, 1, true).expect("init_vm");
            let fw = p.alloc_page();
            assert_eq!(p.load_firmware(0, handle, fw, 0xa0, 0), Err(Errno::EINVAL));
            assert_eq!(
                p.load_firmware(0, handle, fw, 0xa0, MAX_FIRMWARE_PAGES + 1),
                Err(Errno::EINVAL)
            );
        }),
        scenario!(android_share_unshare_pingpong, Ok, false, |p| {
            // Virtio-queue shape: the same pages cross the host/hyp
            // boundary over and over.
            let base = p.alloc_pages(8);
            for _round in 0..6 {
                for i in 0..8 {
                    p.share(0, base + i).expect("share");
                }
                for i in 0..8 {
                    p.unshare(0, base + i).expect("unshare");
                }
            }
            // Unshare restored full host ownership every round.
            for i in 0..8 {
                assert!(p
                    .host_access(0, (base + i) * PAGE_SIZE, Access::Write)
                    .is_ok());
            }
        }),
        scenario!(android_guest_share_pingpong, Ok, false, |p| {
            // The guest side of the ping-pong: a protected guest bounces
            // one of its own pages to the host and back, with the host
            // touching it only while it is shared.
            let handle = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, handle, 0).expect("init_vcpu");
            p.vcpu_load(0, handle, 0).expect("vcpu_load");
            p.topup(0, 8).expect("topup");
            let pfn = p.map_guest(0, 0x10).expect("map_guest");
            for round in 0..5u64 {
                p.push_guest_op(handle, 0, GuestOp::Write(0x10 * PAGE_SIZE, round + 1))
                    .expect("push");
                p.vcpu_run(0).expect("guest write");
                p.push_guest_op(handle, 0, GuestOp::HvcShareHost(0x10 * PAGE_SIZE))
                    .expect("push");
                p.vcpu_run(0).expect("guest share");
                // Mid-transfer the page belongs to exactly one side; the
                // share has committed, so the host may read it now.
                assert_eq!(
                    p.host_access(0, pfn * PAGE_SIZE, Access::Read).ok(),
                    Some(round + 1)
                );
                p.push_guest_op(handle, 0, GuestOp::HvcUnshareHost(0x10 * PAGE_SIZE))
                    .expect("push");
                p.vcpu_run(0).expect("guest unshare");
                // Unshare restored the pre-share owner: guest-exclusive.
                assert!(p.host_access(0, pfn * PAGE_SIZE, Access::Read).is_err());
            }
            p.vcpu_put(0).expect("vcpu_put");
            p.teardown(0, handle).expect("teardown");
            p.reclaim(0, pfn).expect("reclaim");
        }),
        scenario!(android_reclaim_reads_back_wiped, Ok, false, |p| {
            let handle = p.init_vm(0, 1, true).expect("init_vm");
            p.init_vcpu(0, handle, 0).expect("init_vcpu");
            p.vcpu_load(0, handle, 0).expect("vcpu_load");
            p.topup(0, 8).expect("topup");
            let pfn = p.map_guest(0, 0x10).expect("map_guest");
            p.push_guest_op(handle, 0, GuestOp::Write(0x10 * PAGE_SIZE, 0x5ec2e7))
                .expect("push");
            p.vcpu_run(0).expect("guest write");
            p.vcpu_put(0).expect("vcpu_put");
            p.teardown(0, handle).expect("teardown");
            p.reclaim(0, pfn).expect("reclaim");
            // The guest's secret must not survive the reclaim.
            assert_eq!(
                p.host_access(0, pfn * PAGE_SIZE, Access::Read).ok(),
                Some(0)
            );
        }),
        scenario!(android_pool_exhaustion_degrades, Err, false, |p| {
            // Firmware mappings build their guest tables from the hyp
            // pool. Spreading loads across distant gfns forces a fresh
            // table chain per load until the pool runs dry — which must
            // surface as `-ENOMEM`, never a hypervisor panic.
            let handle = p.init_vm(0, 1, true).expect("init_vm");
            let mut exhausted = false;
            for i in 0..2048u64 {
                let Some(fw) = p.try_alloc_pages(1) else {
                    break;
                };
                // 512 GiB stride: distinct level-1/2/3 chains every time.
                match p.load_firmware(0, handle, fw, (i + 1) * (1 << 25), 1) {
                    Ok(()) => {}
                    Err(Errno::ENOMEM) => {
                        exhausted = true;
                        break;
                    }
                    Err(e) => panic!("unexpected firmware error {e:?}"),
                }
            }
            assert!(exhausted, "pool never ran dry");
            assert!(p.machine.panicked().is_none(), "exhaustion panicked");
            // Teardown returns the table pages; the system keeps working.
            p.teardown(0, handle).expect("teardown");
            let pfn = p.alloc_page();
            p.share(0, pfn).expect("share after recovery");
            p.unshare(0, pfn).expect("unshare after recovery");
        }),
        scenario!(android_sequential_churn, Ok, false, |p| {
            for i in 0..40 {
                churn_cycle(p, 0, i % 3 == 0).expect("churn cycle");
            }
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkvm_ghost::Violation;
    use pkvm_hyp::faults::{Fault, FaultSet};

    #[test]
    fn android_scenarios_stay_clean_under_the_oracle() {
        for s in all() {
            let p = Proxy::builder().boot();
            (s.run)(&p);
            assert!(
                p.all_clear(),
                "scenario {} found violations on a clean hypervisor:\n{:?}",
                s.name,
                p.violations()
            );
            assert!(p.machine.panicked().is_none(), "{} panicked", s.name);
        }
    }

    #[test]
    fn firmware_reclaim_fault_is_detected_by_the_new_spec_point() {
        let faults = FaultSet::none();
        faults.inject(Fault::SynFirmwareReclaim);
        let p = Proxy::builder().faults(faults).boot();
        let handle = p.init_vm(0, 1, true).expect("init_vm");
        let fw = p.alloc_page();
        p.load_firmware(0, handle, fw, 0xa0, 1).expect("firmware");
        p.teardown(0, handle).expect("teardown");
        // The buggy teardown queued the firmware page for reclaim; the
        // host taking it back is exactly what the protection check bans.
        let _ = p.reclaim(0, fw);
        let violations = p.violations();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::FirmwareProtection { .. })),
            "firmware reclaim went unnoticed: {violations:?}"
        );
    }

    #[test]
    fn transfer_protocol_check_flags_a_wrong_state_share() {
        let faults = FaultSet::none();
        faults.inject(Fault::SynShareWrongState);
        let p = Proxy::builder().boot();
        let clean = p;
        let pfn = clean.alloc_page();
        clean.share(0, pfn).expect("share");
        clean.unshare(0, pfn).expect("unshare");
        assert!(clean.all_clear(), "{:?}", clean.violations());
        // Same traffic against the wrong-state hypervisor diverges.
        let p = Proxy::builder().faults(faults).boot();
        let pfn = p.alloc_page();
        let _ = p.share(0, pfn);
        let _ = p.share(0, pfn);
        let _ = p.unshare(0, pfn);
        assert!(!p.all_clear(), "double share went unnoticed");
    }

    #[test]
    fn dense_churn_two_hundred_cycles_zero_false_positives() {
        let p = Proxy::builder().boot();
        let pool_baseline = p.machine.state.pool.lock().free_pages();
        let mut handles_reused = false;
        let mut last = None;
        for i in 0..210 {
            let before = p.machine.state.pool.lock().free_pages();
            churn_cycle(&p, 0, i % 2 == 0).expect("churn cycle");
            let after = p.machine.state.pool.lock().free_pages();
            // Bounded growth: a cycle may consume a few table pages for
            // the host's own stage 2, but must not leak the guest's.
            assert!(
                before.saturating_sub(after) <= 8,
                "cycle {i} leaked pool pages: {before} -> {after}"
            );
            // Handle recycling across incarnations.
            let h = p.init_vm(0, 1, true).expect("probe vm");
            if last == Some(h) {
                handles_reused = true;
            }
            last = Some(h);
            p.teardown(0, h).expect("probe teardown");
        }
        assert!(handles_reused, "no handle was ever recycled");
        let pool_end = p.machine.state.pool.lock().free_pages();
        assert!(
            pool_baseline.saturating_sub(pool_end) <= 64,
            "churn leaked pool pages: {pool_baseline} -> {pool_end}"
        );
        assert!(p.all_clear(), "{:?}", p.violations());
        assert!(p.machine.panicked().is_none());
    }

    #[test]
    fn churn_degrades_with_enomem_when_the_allocator_runs_dry() {
        let p = Proxy::builder().boot();
        // Burn the test allocator down, then keep churning: cycles must
        // fail with -ENOMEM (from the allocator or the hypercall), never
        // panic the hypervisor.
        while p.try_alloc_pages(256).is_some() {}
        let mut enomem = 0;
        for _ in 0..10 {
            match churn_cycle(&p, 0, true) {
                Ok(()) => {}
                Err(Errno::ENOMEM) => enomem += 1,
                Err(e) => panic!("unexpected churn error {e:?}"),
            }
        }
        assert!(enomem > 0, "allocator exhaustion never surfaced");
        assert!(p.machine.panicked().is_none());
        assert!(p.all_clear(), "{:?}", p.violations());
    }

    #[test]
    fn android_weights_are_a_valid_mix() {
        use crate::random::RandomCfg;
        let cfg = RandomCfg::builder().op_weights(android_weights()).build();
        assert_eq!(cfg.op_weights, android_weights(), "sanitiser rewrote mix");
        let total: f64 = cfg.op_weights.iter().sum();
        assert!(total > 0.0);
    }
}
