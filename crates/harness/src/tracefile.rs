//! The `.pkvmtrace` on-disk codec: persistent, replayable campaigns,
//! streamed.
//!
//! A recorded campaign ([`CampaignTrace`]) — machine shape, oracle
//! switches, injected faults, the chaos config with its seeds, and the
//! full unified event timeline — encodes to a compact self-describing
//! binary file and decodes back bit-identically in a *fresh process*.
//! That turns a violating run into an exchangeable correctness witness:
//! anyone holding the file can replay the exact schedule, inspect the
//! timeline (`examples/trace_inspect.rs`), or minimize it, without the
//! process (or machine) that produced it.
//!
//! Since format v4 the trace is a *stream*, not a blob. [`TraceWriter`]
//! appends records as they happen — it never needs the event count up
//! front — and finalizes atomically (temp file + rename, the
//! [`atomic_write`] discipline), so a crash mid-write never leaves a
//! torn file. [`TraceReader`] is the dual: a fallible iterator that
//! decodes one [`EventRecord`] at a time in O(1) memory with the
//! [`TraceHeader`] (machine config, oracle switches, chaos, seeds)
//! available up front. [`load_trace`]/[`decode_trace`] survive as thin
//! compatibility shims that drain the reader into a [`CampaignTrace`].
//!
//! Format: the 8-byte magic `PKVMTRCE`, a varint format version
//! ([`FORMAT_VERSION`]), the header sections in a fixed order, then the
//! event stream — each record prefixed by a marker byte `1`, the stream
//! closed by a terminator byte `0` which must be the last byte of the
//! file. All integers are LEB128 varints; floats are their IEEE bits in
//! 8 little-endian bytes; strings are varint length + UTF-8 bytes; event
//! timestamps are delta-encoded against the previous record (they are
//! nondecreasing in sequence order, so deltas stay small). No external
//! dependencies, no unsafe code, and decoding never panics on malformed
//! input — every failure is a [`TraceFileError`].

use std::io::{BufRead as _, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use pkvm_aarch64::walk::Access;
use pkvm_ghost::abstraction::Anomaly;
use pkvm_ghost::event::{ChaosKind, Event, EventRecord};
use pkvm_ghost::oracle::{OracleOpts, TrapOutcome};
use pkvm_ghost::Violation;
use pkvm_hyp::hooks::{Component, TransferEdge};
use pkvm_hyp::machine::MachineConfig;
use pkvm_hyp::vm::GuestOp;

use crate::campaign::CampaignTrace;
use crate::chaos::ChaosCfg;

/// The file magic: the first 8 bytes of every `.pkvmtrace` file.
pub const MAGIC: &[u8; 8] = b"PKVMTRCE";

/// Current format version. Bump on any incompatible layout change;
/// decoding refuses versions it does not know.
///
/// v2 added the `CorruptMem` event (tag 14) when host `WriteMem` became
/// stage-2-checked and chaos corruption got its own raw primitive.
///
/// v3 added the TLB instrumentation (events `Tlbi`/`Dsb`/`PteDowngrade`,
/// tags 15–17), the `BreakBeforeMake` violation (tag 9), the `StaleTlb`
/// chaos kind (byte 6) with its `p_stale_tlb` intensity, and the
/// `check_break_before_make` oracle switch.
///
/// v4 replaced the up-front event count with a sentinel-terminated
/// stream (marker byte `1` before each record, terminator byte `0`
/// after the last), so [`TraceWriter`] can append incrementally without
/// knowing the count and [`TraceReader`] can decode in O(1) memory.
///
/// v5 added the Android workload surface: events
/// `Transfer`/`FirmwareDonate`/`HostRegain` (tags 18–20), violations
/// `FirmwareProtection`/`TransferProtocol`/`ReclaimWipe` (tags 10–12),
/// and the `check_firmware_protection`/`check_transfer_protocol` oracle
/// switches.
pub const FORMAT_VERSION: u64 = 5;

/// Why a trace file failed to load. Loading *never* panics: a truncated
/// or bit-rotted file is an expected input, not a bug.
#[derive(Debug)]
pub enum TraceFileError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion(u64),
    /// The file ended in the middle of a field.
    Truncated,
    /// A field decoded to an impossible value (unknown enum tag, invalid
    /// UTF-8, an integer out of range).
    Malformed(&'static str),
    /// The underlying file operation failed.
    Io(std::io::Error),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::BadMagic => write!(f, "not a .pkvmtrace file (bad magic)"),
            TraceFileError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (want {FORMAT_VERSION})"
                )
            }
            TraceFileError::Truncated => write!(f, "trace file truncated"),
            TraceFileError::Malformed(what) => write!(f, "malformed trace file: {what}"),
            TraceFileError::Io(e) => write!(f, "trace file i/o: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// The replayable context of a trace: everything before the event
/// stream. A [`TraceReader`] decodes it up front, so replay can boot the
/// machine before a single event has been read.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceHeader {
    /// The machine shape the campaign booted.
    pub config: MachineConfig,
    /// The oracle switches.
    pub oracle_opts: OracleOpts,
    /// The injected faults, as raw `FaultSet` bits.
    pub fault_bits: u32,
    /// The chaos config, if the campaign ran chaotic.
    pub chaos: Option<ChaosCfg>,
    /// Per-worker derived seeds.
    pub seeds: Vec<u64>,
}

impl TraceHeader {
    /// The header of an in-memory trace.
    pub fn of(trace: &CampaignTrace) -> TraceHeader {
        TraceHeader {
            config: trace.config.clone(),
            oracle_opts: trace.oracle_opts,
            fault_bits: trace.fault_bits,
            chaos: trace.chaos,
            seeds: trace.seeds.clone(),
        }
    }

    /// Rejoins the header with a materialized event timeline.
    pub fn into_trace(self, events: Vec<EventRecord>) -> CampaignTrace {
        CampaignTrace {
            config: self.config,
            oracle_opts: self.oracle_opts,
            fault_bits: self.fault_bits,
            chaos: self.chaos,
            seeds: self.seeds,
            events,
        }
    }
}

// ---------------------------------------------------------------- encode

struct Wr(Vec<u8>);

impl Wr {
    fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.0.push(byte);
                return;
            }
            self.0.push(byte | 0x80);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn byte(&mut self, b: u8) {
        self.0.push(b);
    }

    fn boolean(&mut self, b: bool) {
        self.0.push(b as u8);
    }

    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.0.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.byte(0),
            Some(v) => {
                self.byte(1);
                self.u64(v);
            }
        }
    }

    fn component(&mut self, comp: Component) {
        match comp {
            Component::Hyp => self.byte(0),
            Component::Host => self.byte(1),
            Component::VmTable => self.byte(2),
            Component::Vm(h) => {
                self.byte(3);
                self.u64(h as u64);
            }
        }
    }

    fn anomaly(&mut self, a: &Anomaly) {
        match a {
            Anomaly::ReservedDescriptor {
                table,
                index,
                level,
            } => {
                self.byte(0);
                self.u64(*table);
                self.usize(*index);
                self.u64(*level as u64);
            }
            Anomaly::IllegalPageState { ia } => {
                self.byte(1);
                self.u64(*ia);
            }
            Anomaly::HostNotIdentity { ia, oa } => {
                self.byte(2);
                self.u64(*ia);
                self.u64(*oa);
            }
            Anomaly::HostOutsideMemory { ia } => {
                self.byte(3);
                self.u64(*ia);
            }
            Anomaly::HostBadDeviceAttrs { ia } => {
                self.byte(4);
                self.u64(*ia);
            }
            Anomaly::TableOutsideMemory { table } => {
                self.byte(5);
                self.u64(*table);
            }
        }
    }

    fn violation(&mut self, v: &Violation) {
        match v {
            Violation::SpecMismatch {
                seq,
                trap,
                component,
                uniq,
                diff,
            } => {
                self.byte(0);
                self.opt_u64(*seq);
                self.str(trap);
                self.str(component);
                self.opt_u64(*uniq);
                self.str(diff);
            }
            Violation::UnexpectedChange {
                seq,
                trap,
                component,
                uniq,
                diff,
            } => {
                self.byte(1);
                self.opt_u64(*seq);
                self.str(trap);
                self.str(component);
                self.opt_u64(*uniq);
                self.str(diff);
            }
            Violation::NonInterference {
                seq,
                component,
                uniq,
                diff,
            } => {
                self.byte(2);
                self.opt_u64(*seq);
                self.str(component);
                self.opt_u64(*uniq);
                self.str(diff);
            }
            Violation::SeparationOverlap {
                seq,
                component,
                pfn,
                owner,
            } => {
                self.byte(3);
                self.opt_u64(*seq);
                self.str(component);
                self.u64(*pfn);
                self.str(owner);
            }
            Violation::AbstractionAnomaly {
                seq,
                context,
                anomaly,
            } => {
                self.byte(4);
                self.opt_u64(*seq);
                self.str(context);
                self.anomaly(anomaly);
            }
            Violation::HypPanic { seq, reason } => {
                self.byte(5);
                self.opt_u64(*seq);
                self.str(reason);
            }
            Violation::OracleSelfCheck {
                seq,
                context,
                detail,
            } => {
                self.byte(6);
                self.opt_u64(*seq);
                self.str(context);
                self.str(detail);
            }
            Violation::ShadowDivergence {
                seq,
                component,
                diff,
            } => {
                self.byte(7);
                self.opt_u64(*seq);
                self.str(component);
                self.str(diff);
            }
            Violation::OracleInternal {
                seq,
                component,
                payload,
            } => {
                self.byte(8);
                self.opt_u64(*seq);
                self.str(component);
                self.str(payload);
            }
            Violation::BreakBeforeMake {
                seq,
                trap,
                vmid,
                ia,
                nr,
            } => {
                self.byte(9);
                self.opt_u64(*seq);
                self.str(trap);
                self.u64(*vmid as u64);
                self.u64(*ia);
                self.u64(*nr);
            }
            Violation::FirmwareProtection {
                seq,
                handle,
                uniq,
                pfn,
            } => {
                self.byte(10);
                self.opt_u64(*seq);
                self.u64(*handle as u64);
                self.u64(*uniq);
                self.u64(*pfn);
            }
            Violation::TransferProtocol {
                seq,
                edge,
                pfn,
                detail,
            } => {
                self.byte(11);
                self.opt_u64(*seq);
                self.byte(*edge as u8);
                self.u64(*pfn);
                self.str(detail);
            }
            Violation::ReclaimWipe { seq, pfn } => {
                self.byte(12);
                self.opt_u64(*seq);
                self.u64(*pfn);
            }
        }
    }

    fn event(&mut self, ev: &Event) {
        match ev {
            Event::Hvc { cpu, func, args } => {
                self.byte(0);
                self.usize(*cpu);
                self.u64(*func);
                self.usize(args.len());
                for a in args {
                    self.u64(*a);
                }
            }
            Event::WriteMem { pa, value } => {
                self.byte(1);
                self.u64(*pa);
                self.u64(*value);
            }
            Event::HostAccess { cpu, addr, access } => {
                self.byte(2);
                self.usize(*cpu);
                self.u64(*addr);
                self.byte(match access {
                    Access::Read => 0,
                    Access::Write => 1,
                    Access::Exec => 2,
                });
            }
            Event::PushGuestOp { handle, idx, op } => {
                self.byte(3);
                self.u64(*handle as u64);
                self.usize(*idx);
                match op {
                    GuestOp::Read(a) => {
                        self.byte(0);
                        self.u64(*a);
                    }
                    GuestOp::Write(a, v) => {
                        self.byte(1);
                        self.u64(*a);
                        self.u64(*v);
                    }
                    GuestOp::HvcShareHost(a) => {
                        self.byte(2);
                        self.u64(*a);
                    }
                    GuestOp::HvcUnshareHost(a) => {
                        self.byte(3);
                        self.u64(*a);
                    }
                    GuestOp::Wfi => self.byte(4),
                }
            }
            Event::TrapEnter { cpu } => {
                self.byte(4);
                self.usize(*cpu);
            }
            Event::TrapExit { cpu, name } => {
                self.byte(5);
                self.usize(*cpu);
                self.str(name);
            }
            Event::LockAcquired { cpu, comp } => {
                self.byte(6);
                self.usize(*cpu);
                self.component(*comp);
            }
            Event::LockReleasing { cpu, comp } => {
                self.byte(7);
                self.usize(*cpu);
                self.component(*comp);
            }
            Event::ReadOnce { cpu, tag, value } => {
                self.byte(8);
                self.usize(*cpu);
                self.str(tag);
                self.u64(*value);
            }
            Event::TablePageAlloc { comp, pfn } => {
                self.byte(9);
                self.component(*comp);
                self.u64(*pfn);
            }
            Event::TablePageFree { comp, pfn } => {
                self.byte(10);
                self.component(*comp);
                self.u64(*pfn);
            }
            Event::Chaos { cpu, kind } => {
                self.byte(11);
                self.usize(*cpu);
                self.byte(match kind {
                    ChaosKind::BitFlip => 0,
                    ChaosKind::TornReadOnce => 1,
                    ChaosKind::DroppedLock => 2,
                    ChaosKind::DupedLock => 3,
                    ChaosKind::DelayedHook => 4,
                    ChaosKind::AllocChaos => 5,
                    ChaosKind::StaleTlb => 6,
                });
            }
            Event::Check { cpu, name, outcome } => {
                self.byte(12);
                self.usize(*cpu);
                self.str(name);
                match outcome {
                    TrapOutcome::Clean => self.byte(0),
                    TrapOutcome::Violated(n) => {
                        self.byte(1);
                        self.usize(*n);
                    }
                    TrapOutcome::Unchecked(why) => {
                        self.byte(2);
                        self.str(why);
                    }
                }
            }
            Event::Violation(v) => {
                self.byte(13);
                self.violation(v);
            }
            Event::CorruptMem { pa, value } => {
                self.byte(14);
                self.u64(*pa);
                self.u64(*value);
            }
            Event::Tlbi {
                vmid,
                ia,
                nr,
                broadcast,
                cpu,
            } => {
                self.byte(15);
                self.u64(*vmid as u64);
                self.u64(*ia);
                self.u64(*nr);
                self.boolean(*broadcast);
                self.usize(*cpu);
            }
            Event::Dsb { cpu } => {
                self.byte(16);
                self.usize(*cpu);
            }
            Event::PteDowngrade { cpu, vmid, ia, nr } => {
                self.byte(17);
                self.usize(*cpu);
                self.u64(*vmid as u64);
                self.u64(*ia);
                self.u64(*nr);
            }
            Event::Transfer {
                cpu,
                edge,
                pfn,
                nr,
                dirty,
            } => {
                self.byte(18);
                self.usize(*cpu);
                self.byte(*edge as u8);
                self.u64(*pfn);
                self.u64(*nr);
                self.boolean(*dirty);
            }
            Event::FirmwareDonate {
                cpu,
                handle,
                uniq,
                pfn,
                nr,
            } => {
                self.byte(19);
                self.usize(*cpu);
                self.u64(*handle as u64);
                self.u64(*uniq);
                self.u64(*pfn);
                self.u64(*nr);
            }
            Event::HostRegain { cpu, pfn, nr } => {
                self.byte(20);
                self.usize(*cpu);
                self.u64(*pfn);
                self.u64(*nr);
            }
        }
    }
}

/// The record stream's markers: `RECORD` before each event record,
/// `TERMINATOR` (which must be the file's last byte) after the final one.
const RECORD: u8 = 1;
const TERMINATOR: u8 = 0;

fn write_header(w: &mut Wr, header: &TraceHeader) {
    // Machine shape.
    w.usize(header.config.nr_cpus);
    w.usize(header.config.dram.len());
    for (base, size) in &header.config.dram {
        w.u64(*base);
        w.u64(*size);
    }
    w.usize(header.config.mmio.len());
    for (base, size) in &header.config.mmio {
        w.u64(*base);
        w.u64(*size);
    }
    w.u64(header.config.hyp_pool_pages);
    // Oracle switches.
    w.boolean(header.oracle_opts.check_noninterference);
    w.boolean(header.oracle_opts.check_separation);
    w.boolean(header.oracle_opts.incremental_abstraction);
    w.boolean(header.oracle_opts.shadow_validation);
    w.usize(header.oracle_opts.violation_cap);
    w.u64(header.oracle_opts.trap_check_budget);
    w.u64(header.oracle_opts.quarantine_threshold as u64);
    w.u64(header.oracle_opts.quarantine_traps);
    w.boolean(header.oracle_opts.check_break_before_make);
    w.boolean(header.oracle_opts.check_firmware_protection);
    w.boolean(header.oracle_opts.check_transfer_protocol);
    // Faults and chaos.
    w.u64(header.fault_bits as u64);
    match &header.chaos {
        None => w.byte(0),
        Some(c) => {
            w.byte(1);
            w.u64(c.seed);
            w.f64(c.p_bit_flip);
            w.f64(c.p_torn_read_once);
            w.f64(c.p_drop_lock_event);
            w.f64(c.p_dup_lock_event);
            w.f64(c.p_delay_hook);
            w.f64(c.p_alloc_chaos);
            w.f64(c.p_stale_tlb);
        }
    }
    // Seeds.
    w.usize(header.seeds.len());
    for s in &header.seeds {
        w.u64(*s);
    }
}

fn write_record(w: &mut Wr, rec: &EventRecord, prev_t: u64) {
    w.byte(RECORD);
    w.u64(rec.seq);
    w.u64(rec.lane as u64);
    w.opt_u64(rec.trap);
    w.u64(rec.t_ns.wrapping_sub(prev_t));
    w.event(&rec.event);
}

/// Encodes a trace into the `.pkvmtrace` byte format.
pub fn encode_trace(trace: &CampaignTrace) -> Vec<u8> {
    let mut w = Wr(Vec::new());
    w.0.extend_from_slice(MAGIC);
    w.u64(FORMAT_VERSION);
    write_header(&mut w, &TraceHeader::of(trace));
    let mut prev_t = 0u64;
    for rec in &trace.events {
        write_record(&mut w, rec, prev_t);
        prev_t = rec.t_ns;
    }
    w.byte(TERMINATOR);
    w.0
}

// ---------------------------------------------------------------- decode

/// Where decoded bytes come from: a borrowed in-memory buffer, or a
/// buffered file. Both yield the same byte sequence, so one decoder
/// serves [`TraceReader::from_bytes`] and [`TraceReader::open`] alike.
enum Src<'a> {
    Slice { buf: &'a [u8], pos: usize },
    File(std::io::BufReader<std::fs::File>),
}

struct Rd<'a>(Src<'a>);

type Res<T> = Result<T, TraceFileError>;

impl<'a> Rd<'a> {
    fn from_slice(buf: &'a [u8]) -> Rd<'a> {
        Rd(Src::Slice { buf, pos: 0 })
    }

    fn from_file(f: std::fs::File) -> Rd<'static> {
        Rd(Src::File(std::io::BufReader::new(f)))
    }

    fn read_exact(&mut self, out: &mut [u8]) -> Res<()> {
        match &mut self.0 {
            Src::Slice { buf, pos } => {
                let end = pos.checked_add(out.len()).filter(|&e| e <= buf.len());
                let end = end.ok_or(TraceFileError::Truncated)?;
                out.copy_from_slice(&buf[*pos..end]);
                *pos = end;
                Ok(())
            }
            Src::File(f) => f.read_exact(out).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    TraceFileError::Truncated
                } else {
                    TraceFileError::Io(e)
                }
            }),
        }
    }

    /// `true` when no byte remains. Only meaningful at a record
    /// boundary — the terminator check uses it to insist the terminator
    /// is the file's last byte.
    fn at_eof(&mut self) -> Res<bool> {
        match &mut self.0 {
            Src::Slice { buf, pos } => Ok(*pos == buf.len()),
            Src::File(f) => Ok(f.fill_buf()?.is_empty()),
        }
    }

    fn byte(&mut self) -> Res<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn u64(&mut self) -> Res<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(TraceFileError::Malformed("varint overflows u64"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn usize(&mut self) -> Res<usize> {
        usize::try_from(self.u64()?).map_err(|_| TraceFileError::Malformed("usize out of range"))
    }

    fn u32(&mut self) -> Res<u32> {
        u32::try_from(self.u64()?).map_err(|_| TraceFileError::Malformed("u32 out of range"))
    }

    fn boolean(&mut self) -> Res<bool> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(TraceFileError::Malformed("bool out of range")),
        }
    }

    fn f64(&mut self) -> Res<f64> {
        let mut bytes = [0u8; 8];
        self.read_exact(&mut bytes)?;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn str(&mut self) -> Res<String> {
        let len = self.usize()?;
        // Read in bounded chunks so a corrupted length field hits
        // `Truncated` before it can commit a huge allocation.
        let mut bytes = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            self.read_exact(&mut chunk[..n])?;
            bytes.extend_from_slice(&chunk[..n]);
            remaining -= n;
        }
        String::from_utf8(bytes).map_err(|_| TraceFileError::Malformed("string is not UTF-8"))
    }

    fn opt_u64(&mut self) -> Res<Option<u64>> {
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(TraceFileError::Malformed("option tag out of range")),
        }
    }

    fn component(&mut self) -> Res<Component> {
        Ok(match self.byte()? {
            0 => Component::Hyp,
            1 => Component::Host,
            2 => Component::VmTable,
            3 => Component::Vm(self.u32()?),
            _ => return Err(TraceFileError::Malformed("unknown component tag")),
        })
    }

    fn anomaly(&mut self) -> Res<Anomaly> {
        Ok(match self.byte()? {
            0 => Anomaly::ReservedDescriptor {
                table: self.u64()?,
                index: self.usize()?,
                level: u8::try_from(self.u64()?)
                    .map_err(|_| TraceFileError::Malformed("level out of range"))?,
            },
            1 => Anomaly::IllegalPageState { ia: self.u64()? },
            2 => Anomaly::HostNotIdentity {
                ia: self.u64()?,
                oa: self.u64()?,
            },
            3 => Anomaly::HostOutsideMemory { ia: self.u64()? },
            4 => Anomaly::HostBadDeviceAttrs { ia: self.u64()? },
            5 => Anomaly::TableOutsideMemory { table: self.u64()? },
            _ => return Err(TraceFileError::Malformed("unknown anomaly tag")),
        })
    }

    fn violation(&mut self) -> Res<Violation> {
        Ok(match self.byte()? {
            0 => Violation::SpecMismatch {
                seq: self.opt_u64()?,
                trap: self.str()?,
                component: self.str()?,
                uniq: self.opt_u64()?,
                diff: self.str()?,
            },
            1 => Violation::UnexpectedChange {
                seq: self.opt_u64()?,
                trap: self.str()?,
                component: self.str()?,
                uniq: self.opt_u64()?,
                diff: self.str()?,
            },
            2 => Violation::NonInterference {
                seq: self.opt_u64()?,
                component: self.str()?,
                uniq: self.opt_u64()?,
                diff: self.str()?,
            },
            3 => Violation::SeparationOverlap {
                seq: self.opt_u64()?,
                component: self.str()?,
                pfn: self.u64()?,
                owner: self.str()?,
            },
            4 => Violation::AbstractionAnomaly {
                seq: self.opt_u64()?,
                context: self.str()?,
                anomaly: self.anomaly()?,
            },
            5 => Violation::HypPanic {
                seq: self.opt_u64()?,
                reason: self.str()?,
            },
            6 => Violation::OracleSelfCheck {
                seq: self.opt_u64()?,
                context: self.str()?,
                detail: self.str()?,
            },
            7 => Violation::ShadowDivergence {
                seq: self.opt_u64()?,
                component: self.str()?,
                diff: self.str()?,
            },
            8 => Violation::OracleInternal {
                seq: self.opt_u64()?,
                component: self.str()?,
                payload: self.str()?,
            },
            9 => Violation::BreakBeforeMake {
                seq: self.opt_u64()?,
                trap: self.str()?,
                vmid: u16::try_from(self.u64()?)
                    .map_err(|_| TraceFileError::Malformed("vmid out of range"))?,
                ia: self.u64()?,
                nr: self.u64()?,
            },
            10 => Violation::FirmwareProtection {
                seq: self.opt_u64()?,
                handle: self.u32()?,
                uniq: self.u64()?,
                pfn: self.u64()?,
            },
            11 => Violation::TransferProtocol {
                seq: self.opt_u64()?,
                edge: self.transfer_edge()?,
                pfn: self.u64()?,
                detail: self.str()?,
            },
            12 => Violation::ReclaimWipe {
                seq: self.opt_u64()?,
                pfn: self.u64()?,
            },
            _ => return Err(TraceFileError::Malformed("unknown violation tag")),
        })
    }

    fn transfer_edge(&mut self) -> Res<TransferEdge> {
        TransferEdge::from_u8(self.byte()?)
            .ok_or(TraceFileError::Malformed("unknown transfer edge"))
    }

    fn event(&mut self) -> Res<Event> {
        Ok(match self.byte()? {
            0 => {
                let cpu = self.usize()?;
                let func = self.u64()?;
                let n = self.usize()?;
                let mut args = Vec::new();
                for _ in 0..n {
                    args.push(self.u64()?);
                }
                Event::Hvc { cpu, func, args }
            }
            1 => Event::WriteMem {
                pa: self.u64()?,
                value: self.u64()?,
            },
            2 => Event::HostAccess {
                cpu: self.usize()?,
                addr: self.u64()?,
                access: match self.byte()? {
                    0 => Access::Read,
                    1 => Access::Write,
                    2 => Access::Exec,
                    _ => return Err(TraceFileError::Malformed("unknown access tag")),
                },
            },
            3 => Event::PushGuestOp {
                handle: self.u32()?,
                idx: self.usize()?,
                op: match self.byte()? {
                    0 => GuestOp::Read(self.u64()?),
                    1 => GuestOp::Write(self.u64()?, self.u64()?),
                    2 => GuestOp::HvcShareHost(self.u64()?),
                    3 => GuestOp::HvcUnshareHost(self.u64()?),
                    4 => GuestOp::Wfi,
                    _ => return Err(TraceFileError::Malformed("unknown guest-op tag")),
                },
            },
            4 => Event::TrapEnter { cpu: self.usize()? },
            5 => Event::TrapExit {
                cpu: self.usize()?,
                name: self.str()?,
            },
            6 => Event::LockAcquired {
                cpu: self.usize()?,
                comp: self.component()?,
            },
            7 => Event::LockReleasing {
                cpu: self.usize()?,
                comp: self.component()?,
            },
            8 => Event::ReadOnce {
                cpu: self.usize()?,
                tag: self.str()?,
                value: self.u64()?,
            },
            9 => Event::TablePageAlloc {
                comp: self.component()?,
                pfn: self.u64()?,
            },
            10 => Event::TablePageFree {
                comp: self.component()?,
                pfn: self.u64()?,
            },
            11 => Event::Chaos {
                cpu: self.usize()?,
                kind: match self.byte()? {
                    0 => ChaosKind::BitFlip,
                    1 => ChaosKind::TornReadOnce,
                    2 => ChaosKind::DroppedLock,
                    3 => ChaosKind::DupedLock,
                    4 => ChaosKind::DelayedHook,
                    5 => ChaosKind::AllocChaos,
                    6 => ChaosKind::StaleTlb,
                    _ => return Err(TraceFileError::Malformed("unknown chaos-kind tag")),
                },
            },
            12 => Event::Check {
                cpu: self.usize()?,
                name: self.str()?,
                outcome: match self.byte()? {
                    0 => TrapOutcome::Clean,
                    1 => TrapOutcome::Violated(self.usize()?),
                    2 => TrapOutcome::Unchecked(self.str()?),
                    _ => return Err(TraceFileError::Malformed("unknown outcome tag")),
                },
            },
            13 => Event::Violation(self.violation()?),
            14 => Event::CorruptMem {
                pa: self.u64()?,
                value: self.u64()?,
            },
            15 => Event::Tlbi {
                vmid: u16::try_from(self.u64()?)
                    .map_err(|_| TraceFileError::Malformed("vmid out of range"))?,
                ia: self.u64()?,
                nr: self.u64()?,
                broadcast: self.boolean()?,
                cpu: self.usize()?,
            },
            16 => Event::Dsb { cpu: self.usize()? },
            17 => Event::PteDowngrade {
                cpu: self.usize()?,
                vmid: u16::try_from(self.u64()?)
                    .map_err(|_| TraceFileError::Malformed("vmid out of range"))?,
                ia: self.u64()?,
                nr: self.u64()?,
            },
            18 => Event::Transfer {
                cpu: self.usize()?,
                edge: self.transfer_edge()?,
                pfn: self.u64()?,
                nr: self.u64()?,
                dirty: self.boolean()?,
            },
            19 => Event::FirmwareDonate {
                cpu: self.usize()?,
                handle: self.u32()?,
                uniq: self.u64()?,
                pfn: self.u64()?,
                nr: self.u64()?,
            },
            20 => Event::HostRegain {
                cpu: self.usize()?,
                pfn: self.u64()?,
                nr: self.u64()?,
            },
            _ => return Err(TraceFileError::Malformed("unknown event tag")),
        })
    }

    fn header(&mut self) -> Res<TraceHeader> {
        let mut magic = [0u8; MAGIC.len()];
        match self.read_exact(&mut magic) {
            Ok(()) if &magic == MAGIC => {}
            Ok(()) | Err(TraceFileError::Truncated) => return Err(TraceFileError::BadMagic),
            Err(e) => return Err(e),
        }
        let version = self.u64()?;
        if version != FORMAT_VERSION {
            return Err(TraceFileError::BadVersion(version));
        }
        let nr_cpus = self.usize()?;
        let mut dram = Vec::new();
        for _ in 0..self.usize()? {
            dram.push((self.u64()?, self.u64()?));
        }
        let mut mmio = Vec::new();
        for _ in 0..self.usize()? {
            mmio.push((self.u64()?, self.u64()?));
        }
        let hyp_pool_pages = self.u64()?;
        let config = MachineConfig {
            nr_cpus,
            dram,
            mmio,
            hyp_pool_pages,
        };
        let oracle_opts = OracleOpts::builder()
            .check_noninterference(self.boolean()?)
            .check_separation(self.boolean()?)
            .incremental_abstraction(self.boolean()?)
            .shadow_validation(self.boolean()?)
            .violation_cap(self.usize()?)
            .trap_check_budget(self.u64()?)
            .quarantine_threshold(self.u32()?)
            .quarantine_traps(self.u64()?)
            .check_break_before_make(self.boolean()?)
            .check_firmware_protection(self.boolean()?)
            .check_transfer_protocol(self.boolean()?)
            .build();
        let fault_bits = self.u32()?;
        let chaos = match self.byte()? {
            0 => None,
            1 => Some(
                ChaosCfg::builder()
                    .seed(self.u64()?)
                    .bit_flip(self.f64()?)
                    .torn_read_once(self.f64()?)
                    .drop_lock_event(self.f64()?)
                    .dup_lock_event(self.f64()?)
                    .delay_hook(self.f64()?)
                    .alloc_chaos(self.f64()?)
                    .stale_tlb(self.f64()?)
                    .build(),
            ),
            _ => return Err(TraceFileError::Malformed("chaos tag out of range")),
        };
        let mut seeds = Vec::new();
        for _ in 0..self.usize()? {
            seeds.push(self.u64()?);
        }
        Ok(TraceHeader {
            config,
            oracle_opts,
            fault_bits,
            chaos,
            seeds,
        })
    }
}

/// A streaming `.pkvmtrace` decoder: the [`TraceHeader`] up front, then
/// a fallible iterator of [`EventRecord`]s, one decoded at a time in
/// O(1) memory (no `Vec<Event>` materialization). The iterator is
/// *fused on error*: the first `Err` is the last item — a corrupted file
/// never yields garbage events past the corruption point.
pub struct TraceReader<'a> {
    rd: Rd<'a>,
    header: TraceHeader,
    prev_t: u64,
    events_read: u64,
    done: bool,
}

impl TraceReader<'static> {
    /// Opens a trace file and decodes its header; events stream lazily
    /// through the iterator.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFileError`] for I/O failures and for a
    /// malformed, truncated or version-mismatched header; never panics.
    pub fn open<P: AsRef<Path>>(path: P) -> Res<TraceReader<'static>> {
        TraceReader::from_rd(Rd::from_file(std::fs::File::open(path)?))
    }
}

impl<'a> TraceReader<'a> {
    /// Starts a streaming decode over an in-memory buffer.
    ///
    /// # Errors
    ///
    /// As [`TraceReader::open`], minus the I/O.
    pub fn from_bytes(bytes: &'a [u8]) -> Res<TraceReader<'a>> {
        TraceReader::from_rd(Rd::from_slice(bytes))
    }

    fn from_rd(mut rd: Rd<'a>) -> Res<TraceReader<'a>> {
        let header = rd.header()?;
        Ok(TraceReader {
            rd,
            header,
            prev_t: 0,
            events_read: 0,
            done: false,
        })
    }

    /// The trace's replayable context, decoded before any event.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records successfully yielded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Drains the stream into a materialized [`CampaignTrace`] —
    /// the compatibility path [`load_trace`]/[`decode_trace`] ride on.
    ///
    /// # Errors
    ///
    /// The first decode error, if the stream has one.
    pub fn into_trace(mut self) -> Res<CampaignTrace> {
        let mut events = Vec::new();
        for rec in &mut self {
            events.push(rec?);
        }
        Ok(self.header.into_trace(events))
    }

    fn next_record(&mut self) -> Res<Option<EventRecord>> {
        match self.rd.byte()? {
            TERMINATOR => {
                if !self.rd.at_eof()? {
                    return Err(TraceFileError::Malformed("trailing bytes after trace"));
                }
                Ok(None)
            }
            RECORD => {
                let seq = self.rd.u64()?;
                let lane = self.rd.u32()?;
                let trap = self.rd.opt_u64()?;
                let t_ns = self.prev_t.wrapping_add(self.rd.u64()?);
                self.prev_t = t_ns;
                let event = self.rd.event()?;
                Ok(Some(EventRecord {
                    seq,
                    lane,
                    trap,
                    t_ns,
                    event,
                }))
            }
            _ => Err(TraceFileError::Malformed("unknown record marker")),
        }
    }
}

impl Iterator for TraceReader<'_> {
    type Item = Res<EventRecord>;

    fn next(&mut self) -> Option<Res<EventRecord>> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => {
                self.events_read += 1;
                Some(Ok(rec))
            }
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// An incremental `.pkvmtrace` encoder: create with the header, append
/// records as the campaign produces them, [`finish`](Self::finish) to
/// seal the stream. The bytes accumulate in a same-directory temp file
/// (pid-suffixed, so concurrent writers never collide — the
/// [`atomic_write`] discipline) which only the final rename makes
/// visible: a crash mid-write, or dropping an unfinished writer, leaves
/// no torn trace behind, only (on a hard kill) a temp file the fleet
/// already knows to ignore.
pub struct TraceWriter {
    path: PathBuf,
    tmp: PathBuf,
    file: Option<std::io::BufWriter<std::fs::File>>,
    prev_t: u64,
    events: u64,
}

impl TraceWriter {
    /// Creates the temp file and writes the header.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-system error.
    pub fn create<P: AsRef<Path>>(path: P, header: &TraceHeader) -> Res<TraceWriter> {
        let path = path.as_ref().to_path_buf();
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(format!(".{}.wtmp", std::process::id()));
        let tmp = PathBuf::from(tmp_name);
        let mut w = Wr(Vec::new());
        w.0.extend_from_slice(MAGIC);
        w.u64(FORMAT_VERSION);
        write_header(&mut w, header);
        let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        if let Err(e) = file.write_all(&w.0) {
            drop(file);
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(TraceWriter {
            path,
            tmp,
            file: Some(file),
            prev_t: 0,
            events: 0,
        })
    }

    /// Appends one record to the stream. Records must arrive in timeline
    /// order (timestamps are delta-encoded against the previous append).
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-system error; the writer stays
    /// usable (dropping it still cleans up the temp file).
    pub fn append(&mut self, rec: &EventRecord) -> Res<()> {
        let mut w = Wr(Vec::new());
        write_record(&mut w, rec, self.prev_t);
        let file = self.file.as_mut().expect("writer already finished");
        file.write_all(&w.0)?;
        self.prev_t = rec.t_ns;
        self.events += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Seals the stream (terminator byte), flushes — fsyncs when the
    /// [`fsync_before_rename`] knob is on — and renames the temp file
    /// into place. Only now does the trace become visible at its path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-system error; the temp file is
    /// removed on failure.
    pub fn finish(mut self) -> Res<()> {
        let mut file = self.file.take().expect("writer already finished");
        let res = (|| -> Res<()> {
            file.write_all(&[TERMINATOR])?;
            file.flush()?;
            if fsync_before_rename() {
                file.get_ref().sync_all()?;
            }
            drop(file);
            std::fs::rename(&self.tmp, &self.path)?;
            Ok(())
        })();
        if res.is_err() {
            let _ = std::fs::remove_file(&self.tmp);
        }
        res
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        // An abandoned (never-finished) writer removes its temp file; the
        // destination path is untouched either way.
        if let Some(file) = self.file.take() {
            drop(file);
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Streams an in-memory `.pkvmtrace` buffer end to end without
/// materializing the timeline, returning the event count. The fleet's
/// pull/merge paths use this to vet candidate files — same acceptance
/// set as [`decode_trace`], O(1) memory.
///
/// # Errors
///
/// The first decode error, if the buffer has one.
pub fn validate_bytes(bytes: &[u8]) -> Res<u64> {
    let mut r = TraceReader::from_bytes(bytes)?;
    for rec in &mut r {
        rec?;
    }
    Ok(r.events_read())
}

// ---------------------------------------------------------------- compact

/// Why a compaction request was refused or failed.
#[derive(Debug)]
pub enum CompactError {
    /// The family is part of the replayable schedule (or the violation
    /// anchors); dropping it would change replay verdicts.
    ReplayCritical(&'static str),
    /// The family name matches no known event family.
    UnknownFamily(String),
    /// Reading the source or writing the destination failed.
    Trace(TraceFileError),
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::ReplayCritical(fam) => {
                write!(f, "cannot drop replay-critical event family `{fam}`")
            }
            CompactError::UnknownFamily(fam) => write!(f, "unknown event family `{fam}`"),
            CompactError::Trace(e) => write!(f, "compaction failed: {e}"),
        }
    }
}

impl std::error::Error for CompactError {}

impl From<TraceFileError> for CompactError {
    fn from(e: TraceFileError) -> Self {
        CompactError::Trace(e)
    }
}

/// What a compaction pass did.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactStats {
    /// Records copied to the destination.
    pub kept: u64,
    /// Records dropped.
    pub dropped: u64,
}

/// Families [`compact_trace`] refuses to drop: the driver plane (the
/// replayable schedule itself) plus the `violation` anchors that make a
/// trace a correctness witness.
pub const REPLAY_CRITICAL_FAMILIES: &[&str] = &[
    "hvc",
    "write-mem",
    "corrupt-mem",
    "host-access",
    "push-guest-op",
    "violation",
];

/// Rewrites `src` to `dst`, dropping every record whose
/// [`Event::family`] is in `drop_families` — a single reader→writer
/// streaming pass in O(1) memory, so a long soak's multi-gigabyte trace
/// compacts without loading. Kept records keep their sequence numbers
/// and timestamps untouched, so violation anchors (`event_seq`) still
/// resolve and replay of the surviving driver schedule is unchanged.
/// Requests to drop a replay-critical family (the driver plane, or
/// `violation`) or an unknown family name are refused up front with a
/// typed error, before anything is written.
///
/// # Errors
///
/// [`CompactError::ReplayCritical`] / [`CompactError::UnknownFamily`]
/// for refused requests; [`CompactError::Trace`] when the source is
/// malformed or I/O fails (no destination file appears in that case).
pub fn compact_trace<P: AsRef<Path>, Q: AsRef<Path>>(
    src: P,
    dst: Q,
    drop_families: &[&str],
) -> Result<CompactStats, CompactError> {
    for fam in drop_families {
        if let Some(critical) = REPLAY_CRITICAL_FAMILIES.iter().find(|c| *c == fam) {
            return Err(CompactError::ReplayCritical(critical));
        }
        if !Event::FAMILIES.contains(fam) {
            return Err(CompactError::UnknownFamily((*fam).to_string()));
        }
    }
    let reader = TraceReader::open(src)?;
    let header = reader.header().clone();
    let mut writer = TraceWriter::create(dst, &header)?;
    let mut stats = CompactStats::default();
    for rec in reader {
        let rec = rec?;
        if drop_families.contains(&rec.event.family()) {
            stats.dropped += 1;
        } else {
            writer.append(&rec)?;
            stats.kept += 1;
        }
    }
    writer.finish()?;
    Ok(stats)
}

// ------------------------------------------------------------ file plumbing

/// Process-wide switch: when set, [`atomic_write`] (and through it
/// [`save_trace`] and [`TraceWriter::finish`]) fsyncs the temp file
/// before renaming it into place, so a completed rename implies the
/// bytes are durable, not merely in the page cache. Off by default — the
/// fleet's correctness only needs rename atomicity (no torn files), not
/// durability; long soaks on real hosts that must survive power loss
/// turn it on. Also enabled by the `PKVMTRACE_FSYNC` environment
/// variable (any value but `0`).
static FSYNC_BEFORE_RENAME: AtomicBool = AtomicBool::new(false);

/// Turns the fsync-before-rename knob on or off for this process.
pub fn set_fsync_before_rename(on: bool) {
    FSYNC_BEFORE_RENAME.store(on, Ordering::Relaxed);
}

/// Whether [`atomic_write`] fsyncs before renaming (the process-wide
/// knob, or the `PKVMTRACE_FSYNC` environment variable).
pub fn fsync_before_rename() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    FSYNC_BEFORE_RENAME.load(Ordering::Relaxed)
        || *ENV.get_or_init(|| std::env::var_os("PKVMTRACE_FSYNC").is_some_and(|v| v != *"0"))
}

/// Writes `bytes` to `path` atomically: the bytes land in a same-
/// directory temp file (named with this process's pid, so concurrent
/// writers in a shared directory never collide) which is then renamed
/// over `path`. A reader — or a `kill -9` of the writer — can therefore
/// never observe a torn file: either the old content (or no file) or
/// the complete new content, nothing in between. The temp file is
/// removed on failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    let res = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if fsync_before_rename() {
            f.sync_all()?;
        }
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if res.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

/// Writes `trace` to `path` in the `.pkvmtrace` format through a
/// [`TraceWriter`] (temp file + rename, so a crash mid-save never
/// leaves a torn trace). Byte-identical to [`encode_trace`] — the two
/// paths share the encoding helpers.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn save_trace<P: AsRef<Path>>(path: P, trace: &CampaignTrace) -> Res<()> {
    let mut w = TraceWriter::create(path, &TraceHeader::of(trace))?;
    for rec in &trace.events {
        w.append(rec)?;
    }
    w.finish()
}

/// Reads a `.pkvmtrace` file back into a materialized [`CampaignTrace`].
/// Compatibility shim over [`TraceReader::open`]; streaming consumers
/// iterate the reader instead.
///
/// # Errors
///
/// Returns a [`TraceFileError`] for I/O failures and for any malformed,
/// truncated or version-mismatched content; never panics.
pub fn load_trace<P: AsRef<Path>>(path: P) -> Res<CampaignTrace> {
    TraceReader::open(path)?.into_trace()
}

/// Decodes a `.pkvmtrace` byte buffer back into a [`CampaignTrace`].
/// Compatibility shim over [`TraceReader::from_bytes`].
///
/// # Errors
///
/// Any malformed, truncated or version-mismatched input returns a
/// [`TraceFileError`]; this function never panics.
pub fn decode_trace(bytes: &[u8]) -> Res<CampaignTrace> {
    TraceReader::from_bytes(bytes)?.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android_surface_events_round_trip() {
        // The v5 additions in one trace: every transfer edge, a firmware
        // donation, a host regain, the three Android-surface violations,
        // and both new header knobs at their non-default (off) value.
        let mut events: Vec<EventRecord> = Vec::new();
        let push = |events: &mut Vec<EventRecord>, event: Event| {
            let seq = events.len() as u64;
            events.push(EventRecord {
                seq,
                lane: 0,
                trap: None,
                t_ns: seq * 10,
                event,
            });
        };
        for (i, &edge) in TransferEdge::ALL.iter().enumerate() {
            push(
                &mut events,
                Event::Transfer {
                    cpu: i % 4,
                    edge,
                    pfn: 0x100 + i as u64,
                    nr: 2,
                    dirty: edge == TransferEdge::Reclaim,
                },
            );
        }
        push(
            &mut events,
            Event::FirmwareDonate {
                cpu: 1,
                handle: 0x1001,
                uniq: 7,
                pfn: 0x200,
                nr: 4,
            },
        );
        push(
            &mut events,
            Event::HostRegain {
                cpu: 2,
                pfn: 0x300,
                nr: 1,
            },
        );
        push(
            &mut events,
            Event::Violation(Violation::FirmwareProtection {
                seq: Some(3),
                handle: 0x1001,
                uniq: 7,
                pfn: 0x200,
            }),
        );
        push(
            &mut events,
            Event::Violation(Violation::TransferProtocol {
                seq: Some(4),
                edge: TransferEdge::ShareHyp,
                pfn: 0x100,
                detail: "departed from state host_owned".to_string(),
            }),
        );
        push(
            &mut events,
            Event::Violation(Violation::ReclaimWipe {
                seq: Some(5),
                pfn: 0x101,
            }),
        );
        let trace = CampaignTrace {
            config: MachineConfig::default(),
            oracle_opts: OracleOpts::builder()
                .check_firmware_protection(false)
                .check_transfer_protocol(false)
                .build(),
            fault_bits: 0,
            chaos: None,
            seeds: vec![0xe16],
            events,
        };
        let bytes = encode_trace(&trace);
        let decoded = decode_trace(&bytes).expect("round trip");
        assert!(!decoded.oracle_opts.check_firmware_protection);
        assert!(!decoded.oracle_opts.check_transfer_protocol);
        assert_eq!(decoded.events.len(), trace.events.len());
        assert_eq!(
            format!("{:?}", decoded.events),
            format!("{:?}", trace.events),
            "decoded timeline differs from the encoded one"
        );
    }

    #[test]
    fn varints_round_trip_at_the_boundaries() {
        let mut w = Wr(Vec::new());
        let probes = [0, 1, 127, 128, 0x3fff, 0x4000, u64::MAX];
        for v in probes {
            w.u64(v);
        }
        let mut r = Rd::from_slice(&w.0);
        for v in probes {
            assert_eq!(r.u64().unwrap(), v);
        }
        assert!(r.at_eof().unwrap());
    }

    #[test]
    fn an_overlong_varint_is_malformed_not_a_panic() {
        let buf = [0xff; 11];
        let mut r = Rd::from_slice(&buf);
        assert!(matches!(r.u64(), Err(TraceFileError::Malformed(_))));
    }

    #[test]
    fn atomic_write_leaves_no_temp_and_fails_cleanly() {
        let dir = std::env::temp_dir().join(format!("pkvm-aw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.pkvmtrace");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        // Overwrite is atomic too, and no temp file survives either way.
        atomic_write(&path, b"world").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"world");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // A failing write (missing parent) leaves nothing behind.
        let bad = dir.join("no-such-dir").join("y.pkvmtrace");
        assert!(atomic_write(&bad, b"z").is_err());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_foreign_buffers_fail_cleanly() {
        assert!(matches!(decode_trace(&[]), Err(TraceFileError::BadMagic)));
        assert!(matches!(
            decode_trace(b"ELF\x7f----------"),
            Err(TraceFileError::BadMagic)
        ));
        // Right magic, hostile version.
        let mut bytes = MAGIC.to_vec();
        bytes.push(99);
        assert!(matches!(
            decode_trace(&bytes),
            Err(TraceFileError::BadVersion(99))
        ));
    }

    #[test]
    fn a_corrupt_string_length_cannot_commit_a_huge_allocation() {
        // A length field claiming ~2^60 bytes must fail with Truncated
        // (the chunked read hits end-of-buffer) without first reserving
        // anything near that much memory.
        let mut w = Wr(Vec::new());
        w.u64(1u64 << 60);
        w.0.extend_from_slice(b"short");
        let mut r = Rd::from_slice(&w.0);
        assert!(matches!(r.str(), Err(TraceFileError::Truncated)));
    }
}
