//! The `.pkvmtrace` on-disk codec: persistent, replayable campaigns.
//!
//! A recorded campaign ([`CampaignTrace`]) — machine shape, oracle
//! switches, injected faults, the chaos config with its seeds, and the
//! full unified event timeline — encodes to a compact self-describing
//! binary file and decodes back bit-identically in a *fresh process*.
//! That turns a violating run into an exchangeable correctness witness:
//! anyone holding the file can replay the exact schedule, inspect the
//! timeline (`examples/trace_inspect.rs`), or minimize it, without the
//! process (or machine) that produced it.
//!
//! Format: the 8-byte magic `PKVMTRCE`, a varint format version
//! ([`FORMAT_VERSION`]), then the trace sections in a fixed order. All
//! integers are LEB128 varints; floats are their IEEE bits in 8
//! little-endian bytes; strings are varint length + UTF-8 bytes; event
//! timestamps are delta-encoded against the previous record (they are
//! nondecreasing in sequence order, so deltas stay small). No external
//! dependencies, no unsafe code, and [`decode_trace`] never panics on
//! malformed input — every failure is a [`TraceFileError`].

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use pkvm_aarch64::walk::Access;
use pkvm_ghost::abstraction::Anomaly;
use pkvm_ghost::event::{ChaosKind, Event, EventRecord};
use pkvm_ghost::oracle::{OracleOpts, TrapOutcome};
use pkvm_ghost::Violation;
use pkvm_hyp::hooks::Component;
use pkvm_hyp::machine::MachineConfig;
use pkvm_hyp::vm::GuestOp;

use crate::campaign::CampaignTrace;
use crate::chaos::ChaosCfg;

/// The file magic: the first 8 bytes of every `.pkvmtrace` file.
pub const MAGIC: &[u8; 8] = b"PKVMTRCE";

/// Current format version. Bump on any incompatible layout change;
/// [`decode_trace`] refuses versions it does not know.
///
/// v2 added the `CorruptMem` event (tag 14) when host `WriteMem` became
/// stage-2-checked and chaos corruption got its own raw primitive.
///
/// v3 added the TLB instrumentation (events `Tlbi`/`Dsb`/`PteDowngrade`,
/// tags 15–17), the `BreakBeforeMake` violation (tag 9), the `StaleTlb`
/// chaos kind (byte 6) with its `p_stale_tlb` intensity, and the
/// `check_break_before_make` oracle switch.
pub const FORMAT_VERSION: u64 = 3;

/// Why a trace file failed to load. Loading *never* panics: a truncated
/// or bit-rotted file is an expected input, not a bug.
#[derive(Debug)]
pub enum TraceFileError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion(u64),
    /// The file ended in the middle of a field.
    Truncated,
    /// A field decoded to an impossible value (unknown enum tag, invalid
    /// UTF-8, an integer out of range).
    Malformed(&'static str),
    /// The underlying file operation failed.
    Io(std::io::Error),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::BadMagic => write!(f, "not a .pkvmtrace file (bad magic)"),
            TraceFileError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (want {FORMAT_VERSION})"
                )
            }
            TraceFileError::Truncated => write!(f, "trace file truncated"),
            TraceFileError::Malformed(what) => write!(f, "malformed trace file: {what}"),
            TraceFileError::Io(e) => write!(f, "trace file i/o: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

// ---------------------------------------------------------------- encode

struct Wr(Vec<u8>);

impl Wr {
    fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.0.push(byte);
                return;
            }
            self.0.push(byte | 0x80);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn byte(&mut self, b: u8) {
        self.0.push(b);
    }

    fn boolean(&mut self, b: bool) {
        self.0.push(b as u8);
    }

    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.0.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.byte(0),
            Some(v) => {
                self.byte(1);
                self.u64(v);
            }
        }
    }

    fn component(&mut self, comp: Component) {
        match comp {
            Component::Hyp => self.byte(0),
            Component::Host => self.byte(1),
            Component::VmTable => self.byte(2),
            Component::Vm(h) => {
                self.byte(3);
                self.u64(h as u64);
            }
        }
    }

    fn anomaly(&mut self, a: &Anomaly) {
        match a {
            Anomaly::ReservedDescriptor {
                table,
                index,
                level,
            } => {
                self.byte(0);
                self.u64(*table);
                self.usize(*index);
                self.u64(*level as u64);
            }
            Anomaly::IllegalPageState { ia } => {
                self.byte(1);
                self.u64(*ia);
            }
            Anomaly::HostNotIdentity { ia, oa } => {
                self.byte(2);
                self.u64(*ia);
                self.u64(*oa);
            }
            Anomaly::HostOutsideMemory { ia } => {
                self.byte(3);
                self.u64(*ia);
            }
            Anomaly::HostBadDeviceAttrs { ia } => {
                self.byte(4);
                self.u64(*ia);
            }
            Anomaly::TableOutsideMemory { table } => {
                self.byte(5);
                self.u64(*table);
            }
        }
    }

    fn violation(&mut self, v: &Violation) {
        match v {
            Violation::SpecMismatch {
                seq,
                trap,
                component,
                uniq,
                diff,
            } => {
                self.byte(0);
                self.opt_u64(*seq);
                self.str(trap);
                self.str(component);
                self.opt_u64(*uniq);
                self.str(diff);
            }
            Violation::UnexpectedChange {
                seq,
                trap,
                component,
                uniq,
                diff,
            } => {
                self.byte(1);
                self.opt_u64(*seq);
                self.str(trap);
                self.str(component);
                self.opt_u64(*uniq);
                self.str(diff);
            }
            Violation::NonInterference {
                seq,
                component,
                uniq,
                diff,
            } => {
                self.byte(2);
                self.opt_u64(*seq);
                self.str(component);
                self.opt_u64(*uniq);
                self.str(diff);
            }
            Violation::SeparationOverlap {
                seq,
                component,
                pfn,
                owner,
            } => {
                self.byte(3);
                self.opt_u64(*seq);
                self.str(component);
                self.u64(*pfn);
                self.str(owner);
            }
            Violation::AbstractionAnomaly {
                seq,
                context,
                anomaly,
            } => {
                self.byte(4);
                self.opt_u64(*seq);
                self.str(context);
                self.anomaly(anomaly);
            }
            Violation::HypPanic { seq, reason } => {
                self.byte(5);
                self.opt_u64(*seq);
                self.str(reason);
            }
            Violation::OracleSelfCheck {
                seq,
                context,
                detail,
            } => {
                self.byte(6);
                self.opt_u64(*seq);
                self.str(context);
                self.str(detail);
            }
            Violation::ShadowDivergence {
                seq,
                component,
                diff,
            } => {
                self.byte(7);
                self.opt_u64(*seq);
                self.str(component);
                self.str(diff);
            }
            Violation::OracleInternal {
                seq,
                component,
                payload,
            } => {
                self.byte(8);
                self.opt_u64(*seq);
                self.str(component);
                self.str(payload);
            }
            Violation::BreakBeforeMake {
                seq,
                trap,
                vmid,
                ia,
                nr,
            } => {
                self.byte(9);
                self.opt_u64(*seq);
                self.str(trap);
                self.u64(*vmid as u64);
                self.u64(*ia);
                self.u64(*nr);
            }
        }
    }

    fn event(&mut self, ev: &Event) {
        match ev {
            Event::Hvc { cpu, func, args } => {
                self.byte(0);
                self.usize(*cpu);
                self.u64(*func);
                self.usize(args.len());
                for a in args {
                    self.u64(*a);
                }
            }
            Event::WriteMem { pa, value } => {
                self.byte(1);
                self.u64(*pa);
                self.u64(*value);
            }
            Event::HostAccess { cpu, addr, access } => {
                self.byte(2);
                self.usize(*cpu);
                self.u64(*addr);
                self.byte(match access {
                    Access::Read => 0,
                    Access::Write => 1,
                    Access::Exec => 2,
                });
            }
            Event::PushGuestOp { handle, idx, op } => {
                self.byte(3);
                self.u64(*handle as u64);
                self.usize(*idx);
                match op {
                    GuestOp::Read(a) => {
                        self.byte(0);
                        self.u64(*a);
                    }
                    GuestOp::Write(a, v) => {
                        self.byte(1);
                        self.u64(*a);
                        self.u64(*v);
                    }
                    GuestOp::HvcShareHost(a) => {
                        self.byte(2);
                        self.u64(*a);
                    }
                    GuestOp::HvcUnshareHost(a) => {
                        self.byte(3);
                        self.u64(*a);
                    }
                    GuestOp::Wfi => self.byte(4),
                }
            }
            Event::TrapEnter { cpu } => {
                self.byte(4);
                self.usize(*cpu);
            }
            Event::TrapExit { cpu, name } => {
                self.byte(5);
                self.usize(*cpu);
                self.str(name);
            }
            Event::LockAcquired { cpu, comp } => {
                self.byte(6);
                self.usize(*cpu);
                self.component(*comp);
            }
            Event::LockReleasing { cpu, comp } => {
                self.byte(7);
                self.usize(*cpu);
                self.component(*comp);
            }
            Event::ReadOnce { cpu, tag, value } => {
                self.byte(8);
                self.usize(*cpu);
                self.str(tag);
                self.u64(*value);
            }
            Event::TablePageAlloc { comp, pfn } => {
                self.byte(9);
                self.component(*comp);
                self.u64(*pfn);
            }
            Event::TablePageFree { comp, pfn } => {
                self.byte(10);
                self.component(*comp);
                self.u64(*pfn);
            }
            Event::Chaos { cpu, kind } => {
                self.byte(11);
                self.usize(*cpu);
                self.byte(match kind {
                    ChaosKind::BitFlip => 0,
                    ChaosKind::TornReadOnce => 1,
                    ChaosKind::DroppedLock => 2,
                    ChaosKind::DupedLock => 3,
                    ChaosKind::DelayedHook => 4,
                    ChaosKind::AllocChaos => 5,
                    ChaosKind::StaleTlb => 6,
                });
            }
            Event::Check { cpu, name, outcome } => {
                self.byte(12);
                self.usize(*cpu);
                self.str(name);
                match outcome {
                    TrapOutcome::Clean => self.byte(0),
                    TrapOutcome::Violated(n) => {
                        self.byte(1);
                        self.usize(*n);
                    }
                    TrapOutcome::Unchecked(why) => {
                        self.byte(2);
                        self.str(why);
                    }
                }
            }
            Event::Violation(v) => {
                self.byte(13);
                self.violation(v);
            }
            Event::CorruptMem { pa, value } => {
                self.byte(14);
                self.u64(*pa);
                self.u64(*value);
            }
            Event::Tlbi {
                vmid,
                ia,
                nr,
                broadcast,
                cpu,
            } => {
                self.byte(15);
                self.u64(*vmid as u64);
                self.u64(*ia);
                self.u64(*nr);
                self.boolean(*broadcast);
                self.usize(*cpu);
            }
            Event::Dsb { cpu } => {
                self.byte(16);
                self.usize(*cpu);
            }
            Event::PteDowngrade { cpu, vmid, ia, nr } => {
                self.byte(17);
                self.usize(*cpu);
                self.u64(*vmid as u64);
                self.u64(*ia);
                self.u64(*nr);
            }
        }
    }
}

/// Encodes a trace into the `.pkvmtrace` byte format.
pub fn encode_trace(trace: &CampaignTrace) -> Vec<u8> {
    let mut w = Wr(Vec::new());
    w.0.extend_from_slice(MAGIC);
    w.u64(FORMAT_VERSION);
    // Machine shape.
    w.usize(trace.config.nr_cpus);
    w.usize(trace.config.dram.len());
    for (base, size) in &trace.config.dram {
        w.u64(*base);
        w.u64(*size);
    }
    w.usize(trace.config.mmio.len());
    for (base, size) in &trace.config.mmio {
        w.u64(*base);
        w.u64(*size);
    }
    w.u64(trace.config.hyp_pool_pages);
    // Oracle switches.
    w.boolean(trace.oracle_opts.check_noninterference);
    w.boolean(trace.oracle_opts.check_separation);
    w.boolean(trace.oracle_opts.incremental_abstraction);
    w.boolean(trace.oracle_opts.shadow_validation);
    w.usize(trace.oracle_opts.violation_cap);
    w.u64(trace.oracle_opts.trap_check_budget);
    w.u64(trace.oracle_opts.quarantine_threshold as u64);
    w.u64(trace.oracle_opts.quarantine_traps);
    w.boolean(trace.oracle_opts.check_break_before_make);
    // Faults and chaos.
    w.u64(trace.fault_bits as u64);
    match &trace.chaos {
        None => w.byte(0),
        Some(c) => {
            w.byte(1);
            w.u64(c.seed);
            w.f64(c.p_bit_flip);
            w.f64(c.p_torn_read_once);
            w.f64(c.p_drop_lock_event);
            w.f64(c.p_dup_lock_event);
            w.f64(c.p_delay_hook);
            w.f64(c.p_alloc_chaos);
            w.f64(c.p_stale_tlb);
        }
    }
    // Seeds.
    w.usize(trace.seeds.len());
    for s in &trace.seeds {
        w.u64(*s);
    }
    // The timeline, timestamps delta-encoded.
    w.usize(trace.events.len());
    let mut prev_t = 0u64;
    for rec in &trace.events {
        w.u64(rec.seq);
        w.u64(rec.lane as u64);
        w.opt_u64(rec.trap);
        w.u64(rec.t_ns.wrapping_sub(prev_t));
        prev_t = rec.t_ns;
        w.event(&rec.event);
    }
    w.0
}

// ---------------------------------------------------------------- decode

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Res<T> = Result<T, TraceFileError>;

impl<'a> Rd<'a> {
    fn byte(&mut self) -> Res<u8> {
        let b = *self.buf.get(self.pos).ok_or(TraceFileError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Res<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(TraceFileError::Malformed("varint overflows u64"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn usize(&mut self) -> Res<usize> {
        usize::try_from(self.u64()?).map_err(|_| TraceFileError::Malformed("usize out of range"))
    }

    fn u32(&mut self) -> Res<u32> {
        u32::try_from(self.u64()?).map_err(|_| TraceFileError::Malformed("u32 out of range"))
    }

    fn boolean(&mut self) -> Res<bool> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(TraceFileError::Malformed("bool out of range")),
        }
    }

    fn f64(&mut self) -> Res<f64> {
        if self.buf.len() - self.pos < 8 {
            return Err(TraceFileError::Truncated);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn str(&mut self) -> Res<String> {
        let len = self.usize()?;
        if self.buf.len() - self.pos < len {
            return Err(TraceFileError::Truncated);
        }
        let s = std::str::from_utf8(&self.buf[self.pos..self.pos + len])
            .map_err(|_| TraceFileError::Malformed("string is not UTF-8"))?;
        self.pos += len;
        Ok(s.to_string())
    }

    fn opt_u64(&mut self) -> Res<Option<u64>> {
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(TraceFileError::Malformed("option tag out of range")),
        }
    }

    fn component(&mut self) -> Res<Component> {
        Ok(match self.byte()? {
            0 => Component::Hyp,
            1 => Component::Host,
            2 => Component::VmTable,
            3 => Component::Vm(self.u32()?),
            _ => return Err(TraceFileError::Malformed("unknown component tag")),
        })
    }

    fn anomaly(&mut self) -> Res<Anomaly> {
        Ok(match self.byte()? {
            0 => Anomaly::ReservedDescriptor {
                table: self.u64()?,
                index: self.usize()?,
                level: u8::try_from(self.u64()?)
                    .map_err(|_| TraceFileError::Malformed("level out of range"))?,
            },
            1 => Anomaly::IllegalPageState { ia: self.u64()? },
            2 => Anomaly::HostNotIdentity {
                ia: self.u64()?,
                oa: self.u64()?,
            },
            3 => Anomaly::HostOutsideMemory { ia: self.u64()? },
            4 => Anomaly::HostBadDeviceAttrs { ia: self.u64()? },
            5 => Anomaly::TableOutsideMemory { table: self.u64()? },
            _ => return Err(TraceFileError::Malformed("unknown anomaly tag")),
        })
    }

    fn violation(&mut self) -> Res<Violation> {
        Ok(match self.byte()? {
            0 => Violation::SpecMismatch {
                seq: self.opt_u64()?,
                trap: self.str()?,
                component: self.str()?,
                uniq: self.opt_u64()?,
                diff: self.str()?,
            },
            1 => Violation::UnexpectedChange {
                seq: self.opt_u64()?,
                trap: self.str()?,
                component: self.str()?,
                uniq: self.opt_u64()?,
                diff: self.str()?,
            },
            2 => Violation::NonInterference {
                seq: self.opt_u64()?,
                component: self.str()?,
                uniq: self.opt_u64()?,
                diff: self.str()?,
            },
            3 => Violation::SeparationOverlap {
                seq: self.opt_u64()?,
                component: self.str()?,
                pfn: self.u64()?,
                owner: self.str()?,
            },
            4 => Violation::AbstractionAnomaly {
                seq: self.opt_u64()?,
                context: self.str()?,
                anomaly: self.anomaly()?,
            },
            5 => Violation::HypPanic {
                seq: self.opt_u64()?,
                reason: self.str()?,
            },
            6 => Violation::OracleSelfCheck {
                seq: self.opt_u64()?,
                context: self.str()?,
                detail: self.str()?,
            },
            7 => Violation::ShadowDivergence {
                seq: self.opt_u64()?,
                component: self.str()?,
                diff: self.str()?,
            },
            8 => Violation::OracleInternal {
                seq: self.opt_u64()?,
                component: self.str()?,
                payload: self.str()?,
            },
            9 => Violation::BreakBeforeMake {
                seq: self.opt_u64()?,
                trap: self.str()?,
                vmid: u16::try_from(self.u64()?)
                    .map_err(|_| TraceFileError::Malformed("vmid out of range"))?,
                ia: self.u64()?,
                nr: self.u64()?,
            },
            _ => return Err(TraceFileError::Malformed("unknown violation tag")),
        })
    }

    fn event(&mut self) -> Res<Event> {
        Ok(match self.byte()? {
            0 => {
                let cpu = self.usize()?;
                let func = self.u64()?;
                let n = self.usize()?;
                let mut args = Vec::new();
                for _ in 0..n {
                    args.push(self.u64()?);
                }
                Event::Hvc { cpu, func, args }
            }
            1 => Event::WriteMem {
                pa: self.u64()?,
                value: self.u64()?,
            },
            2 => Event::HostAccess {
                cpu: self.usize()?,
                addr: self.u64()?,
                access: match self.byte()? {
                    0 => Access::Read,
                    1 => Access::Write,
                    2 => Access::Exec,
                    _ => return Err(TraceFileError::Malformed("unknown access tag")),
                },
            },
            3 => Event::PushGuestOp {
                handle: self.u32()?,
                idx: self.usize()?,
                op: match self.byte()? {
                    0 => GuestOp::Read(self.u64()?),
                    1 => GuestOp::Write(self.u64()?, self.u64()?),
                    2 => GuestOp::HvcShareHost(self.u64()?),
                    3 => GuestOp::HvcUnshareHost(self.u64()?),
                    4 => GuestOp::Wfi,
                    _ => return Err(TraceFileError::Malformed("unknown guest-op tag")),
                },
            },
            4 => Event::TrapEnter { cpu: self.usize()? },
            5 => Event::TrapExit {
                cpu: self.usize()?,
                name: self.str()?,
            },
            6 => Event::LockAcquired {
                cpu: self.usize()?,
                comp: self.component()?,
            },
            7 => Event::LockReleasing {
                cpu: self.usize()?,
                comp: self.component()?,
            },
            8 => Event::ReadOnce {
                cpu: self.usize()?,
                tag: self.str()?,
                value: self.u64()?,
            },
            9 => Event::TablePageAlloc {
                comp: self.component()?,
                pfn: self.u64()?,
            },
            10 => Event::TablePageFree {
                comp: self.component()?,
                pfn: self.u64()?,
            },
            11 => Event::Chaos {
                cpu: self.usize()?,
                kind: match self.byte()? {
                    0 => ChaosKind::BitFlip,
                    1 => ChaosKind::TornReadOnce,
                    2 => ChaosKind::DroppedLock,
                    3 => ChaosKind::DupedLock,
                    4 => ChaosKind::DelayedHook,
                    5 => ChaosKind::AllocChaos,
                    6 => ChaosKind::StaleTlb,
                    _ => return Err(TraceFileError::Malformed("unknown chaos-kind tag")),
                },
            },
            12 => Event::Check {
                cpu: self.usize()?,
                name: self.str()?,
                outcome: match self.byte()? {
                    0 => TrapOutcome::Clean,
                    1 => TrapOutcome::Violated(self.usize()?),
                    2 => TrapOutcome::Unchecked(self.str()?),
                    _ => return Err(TraceFileError::Malformed("unknown outcome tag")),
                },
            },
            13 => Event::Violation(self.violation()?),
            14 => Event::CorruptMem {
                pa: self.u64()?,
                value: self.u64()?,
            },
            15 => Event::Tlbi {
                vmid: u16::try_from(self.u64()?)
                    .map_err(|_| TraceFileError::Malformed("vmid out of range"))?,
                ia: self.u64()?,
                nr: self.u64()?,
                broadcast: self.boolean()?,
                cpu: self.usize()?,
            },
            16 => Event::Dsb { cpu: self.usize()? },
            17 => Event::PteDowngrade {
                cpu: self.usize()?,
                vmid: u16::try_from(self.u64()?)
                    .map_err(|_| TraceFileError::Malformed("vmid out of range"))?,
                ia: self.u64()?,
                nr: self.u64()?,
            },
            _ => return Err(TraceFileError::Malformed("unknown event tag")),
        })
    }
}

/// Decodes a `.pkvmtrace` byte buffer back into a [`CampaignTrace`].
///
/// # Errors
///
/// Any malformed, truncated or version-mismatched input returns a
/// [`TraceFileError`]; this function never panics.
pub fn decode_trace(bytes: &[u8]) -> Res<CampaignTrace> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let mut r = Rd {
        buf: bytes,
        pos: MAGIC.len(),
    };
    let version = r.u64()?;
    if version != FORMAT_VERSION {
        return Err(TraceFileError::BadVersion(version));
    }
    let nr_cpus = r.usize()?;
    let mut dram = Vec::new();
    for _ in 0..r.usize()? {
        dram.push((r.u64()?, r.u64()?));
    }
    let mut mmio = Vec::new();
    for _ in 0..r.usize()? {
        mmio.push((r.u64()?, r.u64()?));
    }
    let hyp_pool_pages = r.u64()?;
    let config = MachineConfig {
        nr_cpus,
        dram,
        mmio,
        hyp_pool_pages,
    };
    let oracle_opts = OracleOpts::builder()
        .check_noninterference(r.boolean()?)
        .check_separation(r.boolean()?)
        .incremental_abstraction(r.boolean()?)
        .shadow_validation(r.boolean()?)
        .violation_cap(r.usize()?)
        .trap_check_budget(r.u64()?)
        .quarantine_threshold(r.u32()?)
        .quarantine_traps(r.u64()?)
        .check_break_before_make(r.boolean()?)
        .build();
    let fault_bits = r.u32()?;
    let chaos = match r.byte()? {
        0 => None,
        1 => Some(
            ChaosCfg::builder()
                .seed(r.u64()?)
                .bit_flip(r.f64()?)
                .torn_read_once(r.f64()?)
                .drop_lock_event(r.f64()?)
                .dup_lock_event(r.f64()?)
                .delay_hook(r.f64()?)
                .alloc_chaos(r.f64()?)
                .stale_tlb(r.f64()?)
                .build(),
        ),
        _ => return Err(TraceFileError::Malformed("chaos tag out of range")),
    };
    let mut seeds = Vec::new();
    for _ in 0..r.usize()? {
        seeds.push(r.u64()?);
    }
    let nr_events = r.usize()?;
    let mut events = Vec::new();
    let mut prev_t = 0u64;
    for _ in 0..nr_events {
        let seq = r.u64()?;
        let lane = r.u32()?;
        let trap = r.opt_u64()?;
        let t_ns = prev_t.wrapping_add(r.u64()?);
        prev_t = t_ns;
        let event = r.event()?;
        events.push(EventRecord {
            seq,
            lane,
            trap,
            t_ns,
            event,
        });
    }
    if r.pos != bytes.len() {
        return Err(TraceFileError::Malformed("trailing bytes after trace"));
    }
    Ok(CampaignTrace {
        config,
        oracle_opts,
        fault_bits,
        chaos,
        seeds,
        events,
    })
}

/// Process-wide switch: when set, [`atomic_write`] (and through it
/// [`save_trace`]) fsyncs the temp file before renaming it into place,
/// so a completed rename implies the bytes are durable, not merely in
/// the page cache. Off by default — the fleet's correctness only needs
/// rename atomicity (no torn files), not durability; long soaks on real
/// hosts that must survive power loss turn it on. Also enabled by the
/// `PKVMTRACE_FSYNC` environment variable (any value but `0`).
static FSYNC_BEFORE_RENAME: AtomicBool = AtomicBool::new(false);

/// Turns the fsync-before-rename knob on or off for this process.
pub fn set_fsync_before_rename(on: bool) {
    FSYNC_BEFORE_RENAME.store(on, Ordering::Relaxed);
}

/// Whether [`atomic_write`] fsyncs before renaming (the process-wide
/// knob, or the `PKVMTRACE_FSYNC` environment variable).
pub fn fsync_before_rename() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    FSYNC_BEFORE_RENAME.load(Ordering::Relaxed)
        || *ENV.get_or_init(|| std::env::var_os("PKVMTRACE_FSYNC").is_some_and(|v| v != *"0"))
}

/// Writes `bytes` to `path` atomically: the bytes land in a same-
/// directory temp file (named with this process's pid, so concurrent
/// writers in a shared directory never collide) which is then renamed
/// over `path`. A reader — or a `kill -9` of the writer — can therefore
/// never observe a torn file: either the old content (or no file) or
/// the complete new content, nothing in between. The temp file is
/// removed on failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    let res = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if fsync_before_rename() {
            f.sync_all()?;
        }
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if res.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

/// Writes `trace` to `path` in the `.pkvmtrace` format, atomically
/// (temp file + rename, see [`atomic_write`]): a crash mid-save never
/// leaves a torn trace for the next session to skip.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn save_trace<P: AsRef<Path>>(path: P, trace: &CampaignTrace) -> Res<()> {
    atomic_write(path.as_ref(), &encode_trace(trace))?;
    Ok(())
}

/// Reads a `.pkvmtrace` file back into a [`CampaignTrace`].
///
/// # Errors
///
/// Returns a [`TraceFileError`] for I/O failures and for any malformed,
/// truncated or version-mismatched content; never panics.
pub fn load_trace<P: AsRef<Path>>(path: P) -> Res<CampaignTrace> {
    decode_trace(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_at_the_boundaries() {
        let mut w = Wr(Vec::new());
        let probes = [0, 1, 127, 128, 0x3fff, 0x4000, u64::MAX];
        for v in probes {
            w.u64(v);
        }
        let mut r = Rd { buf: &w.0, pos: 0 };
        for v in probes {
            assert_eq!(r.u64().unwrap(), v);
        }
        assert_eq!(r.pos, w.0.len());
    }

    #[test]
    fn an_overlong_varint_is_malformed_not_a_panic() {
        let buf = [0xff; 11];
        let mut r = Rd { buf: &buf, pos: 0 };
        assert!(matches!(r.u64(), Err(TraceFileError::Malformed(_))));
    }

    #[test]
    fn atomic_write_leaves_no_temp_and_fails_cleanly() {
        let dir = std::env::temp_dir().join(format!("pkvm-aw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.pkvmtrace");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        // Overwrite is atomic too, and no temp file survives either way.
        atomic_write(&path, b"world").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"world");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // A failing write (missing parent) leaves nothing behind.
        let bad = dir.join("no-such-dir").join("y.pkvmtrace");
        assert!(atomic_write(&bad, b"z").is_err());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_foreign_buffers_fail_cleanly() {
        assert!(matches!(decode_trace(&[]), Err(TraceFileError::BadMagic)));
        assert!(matches!(
            decode_trace(b"ELF\x7f----------"),
            Err(TraceFileError::BadMagic)
        ));
        // Right magic, hostile version.
        let mut bytes = MAGIC.to_vec();
        bytes.push(99);
        assert!(matches!(
            decode_trace(&bytes),
            Err(TraceFileError::BadVersion(99))
        ));
    }
}
