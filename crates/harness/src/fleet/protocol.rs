//! The fleet's shared-directory protocol.
//!
//! Coordinator and workers communicate *only* through files in the fleet
//! root — no shared memory, no pipes, no locks — so a `kill -9` of any
//! process can never corrupt another's state. Every file is one of:
//!
//! - **append-only by name**: corpus seeds and crash reproducers are
//!   written once under a fresh name and never rewritten;
//! - **atomically replaced**: heartbeats, assignments, the fleet config
//!   and the stats snapshot go through [`crate::tracefile::atomic_write`]
//!   (temp file + rename), so readers see the old version or the new
//!   one, never a torn hybrid;
//! - **existence flags**: `stop` and per-worker `freeze` files carry no
//!   content at all.
//!
//! Readers are symmetric: a missing, truncated or malformed file decodes
//! to `None` and the reader falls back to its previous knowledge. The
//! protocol needs no locks because no file is ever mutated in place.
//!
//! ```text
//! <root>/
//!   fleet.cfg            worker-side knobs, written once by the coordinator
//!   stop                 existence = "all workers drain and exit"
//!   fleet-stats          periodic FleetStats snapshot (coordinator-crash resumable)
//!   merged/seed-*.pkvmtrace         the coordinator-merged corpus
//!   workers/NNN/corpus/seed-*.pkvmtrace   worker-local admitted seeds
//!   workers/NNN/crashes/crash-*.pkvmtrace minimized reproducers
//!   workers/NNN/heartbeat           progress counters (atomic)
//!   workers/NNN/assign              shard assignment (atomic)
//!   workers/NNN/freeze              existence = injected wedge (chaos)
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::tracefile::{atomic_write, FORMAT_VERSION, MAGIC};

/// Path arithmetic for one fleet root.
#[derive(Clone, Debug)]
pub struct FleetDirs {
    root: PathBuf,
}

impl FleetDirs {
    /// Wraps a fleet root directory (created by [`FleetDirs::create_all`]).
    pub fn new(root: impl Into<PathBuf>) -> FleetDirs {
        FleetDirs { root: root.into() }
    }

    /// The fleet root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The worker-side configuration file.
    pub fn config_file(&self) -> PathBuf {
        self.root.join("fleet.cfg")
    }

    /// The drain flag: its existence tells every worker to exit cleanly.
    pub fn stop_file(&self) -> PathBuf {
        self.root.join("stop")
    }

    /// The periodic [`crate::fleet::FleetStats`] snapshot.
    pub fn stats_file(&self) -> PathBuf {
        self.root.join("fleet-stats")
    }

    /// The coordinator-merged corpus directory.
    pub fn merged_dir(&self) -> PathBuf {
        self.root.join("merged")
    }

    /// One worker's private directory.
    pub fn worker_dir(&self, w: usize) -> PathBuf {
        self.root.join("workers").join(format!("{w:03}"))
    }

    /// One worker's corpus directory.
    pub fn corpus_dir(&self, w: usize) -> PathBuf {
        self.worker_dir(w).join("corpus")
    }

    /// One worker's crash-reproducer directory.
    pub fn crashes_dir(&self, w: usize) -> PathBuf {
        self.worker_dir(w).join("crashes")
    }

    /// One worker's heartbeat file.
    pub fn heartbeat_file(&self, w: usize) -> PathBuf {
        self.worker_dir(w).join("heartbeat")
    }

    /// One worker's shard-assignment file.
    pub fn assign_file(&self, w: usize) -> PathBuf {
        self.worker_dir(w).join("assign")
    }

    /// One worker's injected-wedge flag (fleet chaos).
    pub fn freeze_file(&self, w: usize) -> PathBuf {
        self.worker_dir(w).join("freeze")
    }

    /// Creates the whole directory tree for `workers` workers.
    pub fn create_all(&self, workers: usize) -> std::io::Result<()> {
        std::fs::create_dir_all(self.merged_dir())?;
        for w in 0..workers {
            std::fs::create_dir_all(self.corpus_dir(w))?;
            std::fs::create_dir_all(self.crashes_dir(w))?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------- kv codec

/// Encodes `key=value` lines (the protocol's human-greppable format).
pub fn encode_kv(pairs: &[(&str, String)]) -> String {
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(k);
        out.push('=');
        out.push_str(v);
        out.push('\n');
    }
    out
}

/// Parses `key=value` lines; malformed lines are ignored, not fatal.
pub fn parse_kv(text: &str) -> HashMap<String, String> {
    text.lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect()
}

fn kv_u64(map: &HashMap<String, String>, key: &str) -> Option<u64> {
    map.get(key)?.parse().ok()
}

// ------------------------------------------------------------ heartbeat

/// One crash family's first detection, as witnessed by a single worker:
/// the worker's cumulative `execs` and `steps` counters at the round the
/// family's first reproducer appeared. Workers never see wall clocks —
/// the coordinator stamps fleet time when it merges these.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Detection {
    /// The crash family (the `<kind>` from `crash-NNN-<kind>.pkvmtrace`).
    pub family: String,
    /// Worker-cumulative inputs executed when first observed.
    pub execs: u64,
    /// Worker-cumulative driver steps when first observed.
    pub steps: u64,
}

/// Extracts the crash family from a reproducer file name of the form
/// `crash-NNN-<kind>.pkvmtrace`; anything else is `None`.
pub fn crash_family(name: &str) -> Option<&str> {
    name.strip_prefix("crash-")
        .and_then(|n| n.strip_suffix(".pkvmtrace"))
        .and_then(|n| n.split_once('-'))
        .map(|(_, kind)| kind)
}

/// A worker's progress snapshot: cumulative counters, atomically
/// replaced after every round. The coordinator detects progress by the
/// `rounds` counter changing — never by the worker's own clock, so a
/// worker with a frozen clock (or a paused process) is still correctly
/// declared wedged by the coordinator's clock alone.
///
/// Counters are cumulative across worker *restarts*: a respawned worker
/// reloads its own last heartbeat and continues from it, so fleet totals
/// never move backwards when a worker dies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// Fuzzing rounds completed (the progress signal).
    pub rounds: u64,
    /// Inputs executed.
    pub execs: u64,
    /// Driver steps executed.
    pub steps: u64,
    /// Seeds in the worker's last in-memory corpus.
    pub corpus_seeds: u64,
    /// Coverage points the worker's last corpus reached.
    pub points: u64,
    /// Peer seeds skipped as corrupt during pull-sync.
    pub import_skips: u64,
    /// Persistence failures absorbed (full disk, unwritable dir).
    pub persist_errors: u64,
    /// Crash-reproducer files in the worker's crashes directory.
    pub crash_families: u64,
    /// Panics that escaped an execution's containment.
    pub escaped_panics: u64,
    /// First detection per crash family, in discovery order. Cumulative
    /// like the counters: a respawned worker reloads these with the rest
    /// of its heartbeat, so time-to-first-detection survives restarts.
    pub detections: Vec<Detection>,
}

impl Heartbeat {
    /// Serializes to `key=value` lines; detections as
    /// `detect=<execs>;<steps>;<family>` lines (the family last, so its
    /// own `;`s survive).
    pub fn encode(&self) -> String {
        let mut out = encode_kv(&[
            ("rounds", self.rounds.to_string()),
            ("execs", self.execs.to_string()),
            ("steps", self.steps.to_string()),
            ("corpus_seeds", self.corpus_seeds.to_string()),
            ("points", self.points.to_string()),
            ("import_skips", self.import_skips.to_string()),
            ("persist_errors", self.persist_errors.to_string()),
            ("crash_families", self.crash_families.to_string()),
            ("escaped_panics", self.escaped_panics.to_string()),
        ]);
        for d in &self.detections {
            out.push_str(&format!(
                "detect={};{};{}\n",
                d.execs,
                d.steps,
                d.family.replace('\n', " ")
            ));
        }
        out
    }

    /// Decodes from `key=value` lines; any missing field — or a torn
    /// `detect=` line — fails the whole decode (a torn heartbeat must
    /// not report zeros as progress).
    pub fn decode(text: &str) -> Option<Heartbeat> {
        let m = parse_kv(text);
        let mut hb = Heartbeat {
            rounds: kv_u64(&m, "rounds")?,
            execs: kv_u64(&m, "execs")?,
            steps: kv_u64(&m, "steps")?,
            corpus_seeds: kv_u64(&m, "corpus_seeds")?,
            points: kv_u64(&m, "points")?,
            import_skips: kv_u64(&m, "import_skips")?,
            persist_errors: kv_u64(&m, "persist_errors")?,
            crash_families: kv_u64(&m, "crash_families")?,
            escaped_panics: kv_u64(&m, "escaped_panics")?,
            detections: Vec::new(),
        };
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("detect=") else {
                continue;
            };
            let mut parts = rest.splitn(3, ';');
            let execs = parts.next()?.parse().ok()?;
            let steps = parts.next()?.parse().ok()?;
            let family = parts.next()?.to_string();
            hb.detections.push(Detection {
                family,
                execs,
                steps,
            });
        }
        Some(hb)
    }

    /// Atomically replaces the heartbeat file.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.encode().as_bytes())
    }

    /// Reads a heartbeat; missing or malformed files are `None`.
    pub fn read(path: &Path) -> Option<Heartbeat> {
        Heartbeat::decode(&std::fs::read_to_string(path).ok()?)
    }
}

// ----------------------------------------------------------- assignment

/// A worker's shard assignment. Shards are abstract seed-space indices:
/// round `r` of a worker holding shards `s` fuzzes under a seed derived
/// from `(fleet seed, s[r % len], r)`. Quarantining a worker moves its
/// shards onto a healthy peer's assignment, so the seed space keeps
/// being explored with one fewer process.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    /// The shard indices this worker owns.
    pub shards: Vec<u64>,
}

impl Assignment {
    /// Serializes to one `shards=a,b,c` line.
    pub fn encode(&self) -> String {
        let list: Vec<String> = self.shards.iter().map(u64::to_string).collect();
        encode_kv(&[("shards", list.join(","))])
    }

    /// Decodes; a missing or malformed file is `None` (the worker falls
    /// back to the shard matching its own id).
    pub fn decode(text: &str) -> Option<Assignment> {
        let m = parse_kv(text);
        let raw = m.get("shards")?;
        if raw.is_empty() {
            return Some(Assignment { shards: Vec::new() });
        }
        let mut shards = Vec::new();
        for part in raw.split(',') {
            shards.push(part.parse().ok()?);
        }
        Some(Assignment { shards })
    }

    /// Atomically replaces the assignment file.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.encode().as_bytes())
    }

    /// Reads an assignment; missing or malformed files are `None`.
    pub fn read(path: &Path) -> Option<Assignment> {
        Assignment::decode(&std::fs::read_to_string(path).ok()?)
    }
}

// ------------------------------------------------------- worker config

/// The knobs a worker needs to run rounds, written once by the
/// coordinator into `fleet.cfg`. A worker is restartable from just
/// `(root, id)`: everything else lives here or in its assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerCfg {
    /// Fleet-wide base seed.
    pub seed: u64,
    /// Driver-step budget per fuzzing round.
    pub round_steps: u64,
    /// Bootstrap inputs for an empty corpus.
    pub bootstrap_inputs: u64,
    /// Base tester-step length of bootstrap inputs.
    pub bootstrap_len: u64,
    /// Cap on driver events per input.
    pub max_input_len: u64,
    /// Arbitrary-call fraction for generated ops.
    pub invalid_fraction: f64,
    /// Faults injected into every execution.
    pub fault_bits: u32,
    /// Whether seed/crash writes fsync before rename.
    pub fsync: bool,
}

impl Default for WorkerCfg {
    fn default() -> Self {
        WorkerCfg {
            seed: 0xf1ee7,
            round_steps: 400,
            bootstrap_inputs: 2,
            bootstrap_len: 60,
            max_input_len: 640,
            invalid_fraction: 0.15,
            fault_bits: 0,
            fsync: false,
        }
    }
}

impl WorkerCfg {
    /// Serializes to `key=value` lines (the fraction as IEEE bits, so
    /// the round trip is exact).
    pub fn encode(&self) -> String {
        encode_kv(&[
            ("seed", self.seed.to_string()),
            ("round_steps", self.round_steps.to_string()),
            ("bootstrap_inputs", self.bootstrap_inputs.to_string()),
            ("bootstrap_len", self.bootstrap_len.to_string()),
            ("max_input_len", self.max_input_len.to_string()),
            (
                "invalid_fraction",
                self.invalid_fraction.to_bits().to_string(),
            ),
            ("fault_bits", u64::from(self.fault_bits).to_string()),
            ("fsync", u64::from(self.fsync).to_string()),
        ])
    }

    /// Decodes; any missing field fails the whole decode.
    pub fn decode(text: &str) -> Option<WorkerCfg> {
        let m = parse_kv(text);
        Some(WorkerCfg {
            seed: kv_u64(&m, "seed")?,
            round_steps: kv_u64(&m, "round_steps")?,
            bootstrap_inputs: kv_u64(&m, "bootstrap_inputs")?,
            bootstrap_len: kv_u64(&m, "bootstrap_len")?,
            max_input_len: kv_u64(&m, "max_input_len")?,
            invalid_fraction: f64::from_bits(kv_u64(&m, "invalid_fraction")?),
            fault_bits: u32::try_from(kv_u64(&m, "fault_bits")?).ok()?,
            fsync: kv_u64(&m, "fsync")? != 0,
        })
    }

    /// Atomically writes the config file.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.encode().as_bytes())
    }

    /// Reads the config; missing or malformed files are `None`.
    pub fn read(path: &Path) -> Option<WorkerCfg> {
        WorkerCfg::decode(&std::fs::read_to_string(path).ok()?)
    }
}

// ------------------------------------------------------------ utilities

/// FNV-1a over raw bytes — the content identity the merge loop dedups
/// by, so a seed ping-ponging worker → merged → worker is merged once.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes a deliberately torn seed file into `dir`: a valid magic and
/// format version followed by a dangling varint, exactly the shape a
/// `kill -9` between `write` and `rename` would have produced before
/// writes were atomic. The fleet chaos harness injects these to prove
/// every reader skips-and-counts instead of dying.
pub fn inject_torn_seed(dir: &Path, name: &str) -> std::io::Result<PathBuf> {
    let mut bytes = MAGIC.to_vec();
    bytes.push(FORMAT_VERSION as u8);
    // A varint whose continuation bit promises bytes that never come.
    bytes.extend_from_slice(&[0x83, 0x99, 0xff]);
    let path = dir.join(name);
    // Deliberately non-atomic: the point is a torn file on disk.
    std::fs::write(&path, &bytes)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_and_assignment_round_trip() {
        let hb = Heartbeat {
            rounds: 7,
            execs: 123,
            steps: 4567,
            corpus_seeds: 12,
            points: 88,
            import_skips: 2,
            persist_errors: 1,
            crash_families: 3,
            escaped_panics: 0,
            detections: vec![
                Detection {
                    family: "spec-mismatch".into(),
                    execs: 44,
                    steps: 1_200,
                },
                Detection {
                    family: "hyp-panic; with; semicolons".into(),
                    execs: 101,
                    steps: 3_000,
                },
            ],
        };
        assert_eq!(Heartbeat::decode(&hb.encode()), Some(hb.clone()));
        // A torn heartbeat (missing fields) decodes to None, not zeros.
        assert_eq!(Heartbeat::decode("rounds=7\nexecs=1\n"), None);
        assert_eq!(Heartbeat::decode("garbage"), None);
        // A torn detect line poisons the whole decode too.
        let torn = format!("{}detect=9;\n", hb.encode());
        assert_eq!(Heartbeat::decode(&torn), None);

        assert_eq!(
            crash_family("crash-007-hyp-panic @ teardown.pkvmtrace"),
            Some("hyp-panic @ teardown")
        );
        assert_eq!(crash_family("seed-000001.pkvmtrace"), None);
        assert_eq!(crash_family("crash-007.pkvmtrace"), None);

        let a = Assignment {
            shards: vec![0, 3, 9],
        };
        assert_eq!(Assignment::decode(&a.encode()), Some(a));
        assert_eq!(
            Assignment::decode("shards=\n"),
            Some(Assignment { shards: Vec::new() })
        );
        assert_eq!(Assignment::decode("shards=1,x"), None);
    }

    #[test]
    fn worker_cfg_round_trips_exactly() {
        let cfg = WorkerCfg {
            seed: 0xdead,
            round_steps: 321,
            bootstrap_inputs: 3,
            bootstrap_len: 77,
            max_input_len: 512,
            invalid_fraction: 0.137,
            fault_bits: 0b1010,
            fsync: true,
        };
        assert_eq!(WorkerCfg::decode(&cfg.encode()), Some(cfg));
        assert_eq!(WorkerCfg::decode(""), None);
    }

    #[test]
    fn torn_seed_fails_decode_but_not_the_scanner() {
        let dir = std::env::temp_dir().join(format!("pkvm-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = inject_torn_seed(&dir, "seed-000000.pkvmtrace").unwrap();
        assert!(crate::tracefile::load_trace(&p).is_err());
        let scan = crate::fuzz::scan_dir(&dir);
        assert_eq!((scan.loaded.len(), scan.skipped.len()), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
