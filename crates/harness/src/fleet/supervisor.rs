//! Worker supervision as a pure state machine.
//!
//! The supervisor owns no clock, no processes and no files: every
//! method takes `now_ms` explicitly and returns the [`Action`]s the
//! coordinator must carry out. That makes the whole policy — wedge
//! detection, exponential backoff with jitter, restart budgets,
//! quarantine — deterministically testable under a mocked clock, while
//! the coordinator stays a thin loop that feeds in heartbeats and exit
//! notifications and executes the returned actions.
//!
//! Policy summary:
//!
//! - **Progress**, not liveness, is the health signal: a worker is
//!   healthy while its heartbeat `rounds` counter keeps changing. The
//!   deadline runs on the *coordinator's* clock, so a worker whose own
//!   clock is frozen (or whose process is stopped) is still wedged.
//! - A wedged worker is **killed**, then treated like any other exit.
//! - Every exit schedules a **respawn** after an exponential backoff
//!   `min(cap, base·2^(k−1))` plus seeded jitter in `[0, base)`, where
//!   `k` counts restarts since the last observed progress.
//! - Progress **resets** the restart counter, so only a worker that
//!   keeps dying *without ever progressing* — a deterministic crasher —
//!   exhausts its budget and is **quarantined**. Quarantine is terminal:
//!   the coordinator redistributes the worker's shards and fuzzing
//!   continues with one fewer process.

use crate::rng::Rng;

/// Supervision policy knobs.
#[derive(Clone, Debug)]
pub struct SupervisionCfg {
    /// No heartbeat progress for this long (coordinator clock) ⇒ wedged.
    pub wedge_deadline_ms: u64,
    /// Base backoff delay; also the jitter range.
    pub backoff_base_ms: u64,
    /// Backoff ceiling before jitter.
    pub backoff_cap_ms: u64,
    /// Restarts-without-progress allowed before quarantine.
    pub restart_budget: u32,
    /// Seed for the jitter stream (deterministic per fleet seed).
    pub jitter_seed: u64,
}

impl Default for SupervisionCfg {
    fn default() -> Self {
        SupervisionCfg {
            wedge_deadline_ms: 15_000,
            backoff_base_ms: 200,
            backoff_cap_ms: 5_000,
            restart_budget: 3,
            jitter_seed: 0x005f_1ee7,
        }
    }
}

/// Where one worker stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerStatus {
    /// Alive and (as far as the deadline knows) making progress.
    Running,
    /// Declared wedged and killed; waiting for the exit notification.
    Stopping,
    /// Exited; waiting out the backoff before the next respawn.
    Backoff,
    /// Permanently retired: exhausted the restart budget without
    /// progress. Terminal.
    Quarantined,
}

/// What the coordinator must do, as decided by the supervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Kill this worker's process (it is wedged).
    Kill(usize),
    /// Spawn a fresh process for this worker.
    Respawn(usize),
    /// Retire this worker and redistribute its shards.
    Quarantine(usize),
}

#[derive(Clone, Debug)]
struct WorkerState {
    status: WorkerStatus,
    /// Last heartbeat `rounds` value seen (progress detector).
    last_rounds: Option<u64>,
    /// Coordinator-clock time of the last observed progress (or spawn).
    last_progress_ms: u64,
    /// Consecutive restarts without any progress in between.
    restarts_since_progress: u32,
    /// When the pending respawn fires (valid in `Backoff`).
    backoff_until_ms: u64,
}

/// The fleet's supervision state machine. See the module docs for the
/// policy; see [`Action`] for the coordinator's side of the contract.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisionCfg,
    workers: Vec<WorkerState>,
    jitter: Rng,
}

impl Supervisor {
    /// A supervisor for `workers` workers, all considered freshly
    /// spawned and healthy at `now_ms`.
    pub fn new(workers: usize, cfg: SupervisionCfg, now_ms: u64) -> Supervisor {
        let jitter = Rng::seed_from_u64(cfg.jitter_seed);
        Supervisor {
            cfg,
            workers: (0..workers)
                .map(|_| WorkerState {
                    status: WorkerStatus::Running,
                    last_rounds: None,
                    last_progress_ms: now_ms,
                    restarts_since_progress: 0,
                    backoff_until_ms: 0,
                })
                .collect(),
            jitter,
        }
    }

    /// The worker's current status.
    pub fn status(&self, w: usize) -> WorkerStatus {
        self.workers[w].status
    }

    /// When worker `w`'s pending respawn fires (meaningful in
    /// [`WorkerStatus::Backoff`]).
    pub fn backoff_until(&self, w: usize) -> u64 {
        self.workers[w].backoff_until_ms
    }

    /// How many restarts worker `w` has burned without progress.
    pub fn restarts_since_progress(&self, w: usize) -> u32 {
        self.workers[w].restarts_since_progress
    }

    /// Workers not quarantined.
    pub fn active(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&w| self.workers[w].status != WorkerStatus::Quarantined)
            .collect()
    }

    /// Feeds one observed heartbeat. Progress (a changed `rounds`
    /// counter) refreshes the deadline and — crucially — resets the
    /// restart budget: a worker that progresses between crashes is
    /// unlucky, not deterministic.
    pub fn heartbeat(&mut self, w: usize, rounds: u64, now_ms: u64) {
        let st = &mut self.workers[w];
        if st.status == WorkerStatus::Quarantined {
            return;
        }
        if st.last_rounds != Some(rounds) {
            st.last_rounds = Some(rounds);
            st.last_progress_ms = now_ms;
            st.restarts_since_progress = 0;
        }
    }

    /// Notifies the supervisor that worker `w`'s process exited (on its
    /// own, or after a [`Action::Kill`]). Returns the follow-up action:
    /// quarantine when the restart budget is exhausted, otherwise a
    /// backoff is scheduled (the respawn itself comes later from
    /// [`Supervisor::tick`]).
    pub fn process_exited(&mut self, w: usize, now_ms: u64) -> Option<Action> {
        let (base, cap, budget) = (
            self.cfg.backoff_base_ms.max(1),
            self.cfg.backoff_cap_ms,
            self.cfg.restart_budget,
        );
        let jitter = self.jitter.gen_range(0..base);
        let st = &mut self.workers[w];
        if st.status == WorkerStatus::Quarantined {
            return None;
        }
        st.restarts_since_progress += 1;
        if st.restarts_since_progress > budget {
            st.status = WorkerStatus::Quarantined;
            return Some(Action::Quarantine(w));
        }
        let k = st.restarts_since_progress;
        let exp = base.saturating_mul(1u64.checked_shl(k - 1).unwrap_or(u64::MAX));
        st.backoff_until_ms = now_ms + exp.min(cap) + jitter;
        st.status = WorkerStatus::Backoff;
        None
    }

    /// Advances the clock: declares wedged workers (returning `Kill`s)
    /// and fires due respawns. A respawned worker's deadline restarts
    /// from `now_ms`.
    pub fn tick(&mut self, now_ms: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        let deadline = self.cfg.wedge_deadline_ms;
        for (w, st) in self.workers.iter_mut().enumerate() {
            match st.status {
                WorkerStatus::Running => {
                    if now_ms.saturating_sub(st.last_progress_ms) >= deadline {
                        st.status = WorkerStatus::Stopping;
                        actions.push(Action::Kill(w));
                    }
                }
                WorkerStatus::Backoff => {
                    if now_ms >= st.backoff_until_ms {
                        st.status = WorkerStatus::Running;
                        st.last_progress_ms = now_ms;
                        st.last_rounds = None;
                        actions.push(Action::Respawn(w));
                    }
                }
                WorkerStatus::Stopping | WorkerStatus::Quarantined => {}
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisionCfg {
        SupervisionCfg {
            wedge_deadline_ms: 1_000,
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
            restart_budget: 2,
            jitter_seed: 42,
        }
    }

    #[test]
    fn progress_keeps_a_worker_running_forever() {
        let mut s = Supervisor::new(1, cfg(), 0);
        for t in 1..50u64 {
            s.heartbeat(0, t, t * 900);
            assert!(
                s.tick(t * 900).is_empty(),
                "wedged at t={t} despite progress"
            );
        }
        assert_eq!(s.status(0), WorkerStatus::Running);
    }

    #[test]
    fn a_stalled_rounds_counter_is_wedged_even_with_fresh_heartbeats() {
        let mut s = Supervisor::new(1, cfg(), 0);
        // Heartbeats keep arriving but `rounds` never changes — e.g. a
        // frozen worker whose last heartbeat file is simply still there.
        s.heartbeat(0, 5, 100);
        s.heartbeat(0, 5, 600);
        s.heartbeat(0, 5, 1_050);
        assert_eq!(s.tick(1_099), vec![]);
        assert_eq!(s.tick(1_100), vec![Action::Kill(0)]);
        assert_eq!(s.status(0), WorkerStatus::Stopping);
        // The kill is issued once, not every tick.
        assert_eq!(s.tick(2_000), vec![]);
    }

    #[test]
    fn backoff_is_exponential_jittered_and_deterministic() {
        let delays = |seed: u64| {
            let mut c = cfg();
            c.jitter_seed = seed;
            c.restart_budget = 10;
            let mut s = Supervisor::new(1, c, 0);
            let mut out = Vec::new();
            let mut now = 0;
            for _ in 0..3 {
                assert_eq!(s.process_exited(0, now), None);
                let until = s.backoff_until(0);
                out.push(until - now);
                assert_eq!(s.tick(until - 1), vec![]);
                assert_eq!(s.tick(until), vec![Action::Respawn(0)]);
                now = until;
            }
            out
        };
        let a = delays(1);
        // Exponential base: delay k lies in [base·2^(k−1), base·2^(k−1)+base).
        assert!((100..200).contains(&a[0]), "{a:?}");
        assert!((200..300).contains(&a[1]), "{a:?}");
        assert!((400..500).contains(&a[2]), "{a:?}");
        // Deterministic per seed, different across seeds (jitter).
        assert_eq!(a, delays(1));
        assert_ne!(delays(1), delays(2));
    }

    #[test]
    fn backoff_caps_at_the_ceiling() {
        let mut c = cfg();
        c.restart_budget = 40;
        let mut s = Supervisor::new(1, c, 0);
        let mut now = 0;
        for _ in 0..12 {
            s.process_exited(0, now);
            let until = s.backoff_until(0);
            assert!(until - now < 1_000 + 100, "cap exceeded: {}", until - now);
            s.tick(until);
            now = until;
        }
    }

    #[test]
    fn only_a_deterministic_crasher_is_quarantined() {
        // Crash, progress, crash, progress … never quarantines: progress
        // resets the budget.
        let mut s = Supervisor::new(1, cfg(), 0);
        let mut now = 0;
        for round in 0..10u64 {
            assert_eq!(s.process_exited(0, now), None, "round {round}");
            let until = s.backoff_until(0);
            s.tick(until);
            now = until + 10;
            s.heartbeat(0, round + 1, now);
            assert_eq!(s.restarts_since_progress(0), 0);
        }
        // Crashing with no progress in between exhausts the budget
        // (budget 2 ⇒ third exit quarantines).
        let mut s = Supervisor::new(2, cfg(), 0);
        let mut now = 0;
        for k in 1..=2u32 {
            assert_eq!(s.process_exited(1, now), None);
            assert_eq!(s.restarts_since_progress(1), k);
            let until = s.backoff_until(1);
            s.tick(until);
            now = until;
        }
        assert_eq!(s.process_exited(1, now), Some(Action::Quarantine(1)));
        assert_eq!(s.status(1), WorkerStatus::Quarantined);
        assert_eq!(s.active(), vec![0]);
        // Terminal: nothing revives it (worker 0, untouched and silent,
        // may legitimately wedge in the same tick — ignore its actions).
        s.heartbeat(1, 99, now + 1);
        assert_eq!(s.process_exited(1, now + 2), None);
        let touching_1 = s.tick(now + 100_000).into_iter().any(|a| {
            matches!(
                a,
                Action::Kill(1) | Action::Respawn(1) | Action::Quarantine(1)
            )
        });
        assert!(!touching_1);
        assert_eq!(s.status(1), WorkerStatus::Quarantined);
    }
}
