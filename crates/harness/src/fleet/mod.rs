//! The crash-tolerant fuzzing fleet (the "service" layer over [`crate::fuzz`]).
//!
//! A coordinator process spawns and supervises N fuzzing **worker
//! processes** — real OS processes, so a worker segfault, OOM-kill or
//! `kill -9` can never take the fleet down — and the only communication
//! channel is the shared-directory `.pkvmtrace` [`protocol`]: atomic
//! file replacement for control state, write-once files for corpus
//! seeds, existence flags for stop/freeze. There is no shared memory
//! and there are no locks.
//!
//! The design is crash-first, in both directions:
//!
//! - **Workers die freely.** The [`supervisor`] watches heartbeat
//!   *progress* (not liveness) on the coordinator's clock, kills wedged
//!   workers, respawns exits after exponential backoff with seeded
//!   jitter, and quarantines deterministic crashers — a worker that
//!   keeps dying without ever completing a round — redistributing their
//!   seed-space shards to healthy peers.
//! - **The coordinator dies freely.** All fleet state of record lives
//!   on disk: worker heartbeats carry cumulative counters, the merged
//!   corpus is content-addressed, and the periodic [`FleetStats`]
//!   snapshot is atomically replaced — so a restarted coordinator over
//!   the same root resumes the history instead of zeroing it.
//! - **Files corrupt freely.** Every reader treats a torn or malformed
//!   file as a skip-and-count condition: a corrupt peer seed is
//!   reported, never fatal.
//!
//! Corpus flow is pull-based: each worker round first *imports* merged
//! seeds it has not seen (validated before copy), then fuzzes its
//! current shard; the coordinator *merges* worker-local seeds into
//! `merged/` deduplicated by content hash. At shutdown the coordinator
//! audits the merged corpus — replay digest, lost-seed count, coverage
//! frontier — and can distill it to a frontier-preserving subset.
//!
//! The module also carries its own fault-injection harness
//! ([`FleetChaos`] plus the forced one-shot injections): the fleet is
//! fuzzing a hypervisor oracle, and the fleet itself is tested the same
//! way — by killing its workers, tearing its files and freezing its
//! clocks on purpose.

pub mod protocol;
pub mod stats;
pub mod supervisor;

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pkvm_hyp::faults::FaultSet;

use crate::fuzz::{self, footprint, Corpus, FuzzCfg, Fuzzer};
use crate::rng::Rng;
use crate::tracefile::{atomic_write, set_fsync_before_rename, validate_bytes};

pub use protocol::{
    content_hash, crash_family, inject_torn_seed, Assignment, Detection, FleetDirs, Heartbeat,
    WorkerCfg,
};
pub use stats::{CrashBucket, FleetDetection, FleetStats};
pub use supervisor::{Action, SupervisionCfg, Supervisor, WorkerStatus};

/// Probabilistic fault injection against the fleet itself, evaluated
/// once per coordinator poll round from a seeded stream (so a chaos
/// soak is reproducible per seed).
#[derive(Clone, Copy, Debug)]
pub struct FleetChaos {
    /// Seed for the chaos stream.
    pub seed: u64,
    /// Probability of killing a random live worker process (models a
    /// crash the supervisor must recover from).
    pub p_kill: f64,
    /// Probability of planting a torn seed file in a random worker's
    /// corpus (models a non-atomic write caught mid-flight).
    pub p_torn: f64,
    /// Probability of freezing a random worker (models a wedged or
    /// clock-frozen process; cleared when the supervisor kills it).
    pub p_freeze: f64,
}

impl Default for FleetChaos {
    fn default() -> Self {
        FleetChaos {
            seed: 0x000c_4a05,
            p_kill: 0.05,
            p_torn: 0.05,
            p_freeze: 0.03,
        }
    }
}

/// Fleet configuration. Construct with [`FleetCfg::builder`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct FleetCfg {
    /// The shared fleet root directory.
    pub root: PathBuf,
    /// Worker processes to run.
    pub workers: usize,
    /// Seed-space shards spread over the workers (≥ `workers`).
    pub shards: usize,
    /// Coordinator poll rounds before the fleet drains and exits.
    pub rounds: u64,
    /// Poll interval in milliseconds.
    pub poll_ms: u64,
    /// The knobs shipped to every worker via `fleet.cfg`.
    pub worker: WorkerCfg,
    /// Supervision policy.
    pub supervision: SupervisionCfg,
    /// Probabilistic fleet fault injection (`None` = off).
    pub chaos: Option<FleetChaos>,
    /// Deterministically kill one live worker at this poll round (the
    /// CI gate's forced crash).
    pub forced_kill_round: Option<u64>,
    /// Deterministically plant one torn corpus file at this poll round
    /// (the CI gate's forced torn write).
    pub forced_torn_round: Option<u64>,
    /// Worker executable (`None` = this executable).
    pub worker_exe: Option<PathBuf>,
    /// Arguments before `<root> <id>` in the worker command line.
    pub worker_args: Vec<String>,
    /// Distill the merged corpus to a frontier-preserving subset at
    /// shutdown.
    pub distill: bool,
    /// Re-measure the merged corpus's coverage frontier in the final
    /// audit (one replay per merged seed; disable for long soaks).
    pub audit_frontier: bool,
    /// How long workers get to drain after the stop flag appears.
    pub shutdown_grace_ms: u64,
}

impl Default for FleetCfg {
    fn default() -> Self {
        FleetCfg {
            root: PathBuf::from("fleet-root"),
            workers: 2,
            shards: 4,
            rounds: 10,
            poll_ms: 100,
            worker: WorkerCfg::default(),
            supervision: SupervisionCfg::default(),
            chaos: None,
            forced_kill_round: None,
            forced_torn_round: None,
            worker_exe: None,
            worker_args: vec!["worker".into()],
            distill: false,
            audit_frontier: true,
            shutdown_grace_ms: 10_000,
        }
    }
}

impl FleetCfg {
    /// Starts a builder from the defaults.
    pub fn builder() -> FleetCfgBuilder {
        FleetCfgBuilder(FleetCfg::default())
    }
}

/// Builder for [`FleetCfg`].
#[derive(Clone, Debug, Default)]
pub struct FleetCfgBuilder(FleetCfg);

impl FleetCfgBuilder {
    /// Sets the fleet root directory.
    pub fn root(mut self, root: impl Into<PathBuf>) -> Self {
        self.0.root = root.into();
        self
    }

    /// Sets the worker-process count.
    pub fn workers(mut self, n: usize) -> Self {
        self.0.workers = n.max(1);
        self
    }

    /// Sets the shard count (raised to the worker count if lower).
    pub fn shards(mut self, n: usize) -> Self {
        self.0.shards = n;
        self
    }

    /// Sets the coordinator poll-round budget.
    pub fn rounds(mut self, n: u64) -> Self {
        self.0.rounds = n;
        self
    }

    /// Sets the poll interval.
    pub fn poll_ms(mut self, ms: u64) -> Self {
        self.0.poll_ms = ms.max(1);
        self
    }

    /// Sets the worker knobs.
    pub fn worker(mut self, w: WorkerCfg) -> Self {
        self.0.worker = w;
        self
    }

    /// Sets the supervision policy.
    pub fn supervision(mut self, s: SupervisionCfg) -> Self {
        self.0.supervision = s;
        self
    }

    /// Enables probabilistic fleet chaos.
    pub fn chaos(mut self, c: FleetChaos) -> Self {
        self.0.chaos = Some(c);
        self
    }

    /// Forces one worker kill at poll round `r`.
    pub fn forced_kill_round(mut self, r: u64) -> Self {
        self.0.forced_kill_round = Some(r);
        self
    }

    /// Forces one torn corpus file at poll round `r`.
    pub fn forced_torn_round(mut self, r: u64) -> Self {
        self.0.forced_torn_round = Some(r);
        self
    }

    /// Sets the worker executable and its leading arguments.
    pub fn worker_command(mut self, exe: impl Into<PathBuf>, args: &[&str]) -> Self {
        self.0.worker_exe = Some(exe.into());
        self.0.worker_args = args.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Distills the merged corpus at shutdown.
    pub fn distill(mut self, on: bool) -> Self {
        self.0.distill = on;
        self
    }

    /// Enables or disables the frontier re-measurement in the audit.
    pub fn audit_frontier(mut self, on: bool) -> Self {
        self.0.audit_frontier = on;
        self
    }

    /// Sets the drain deadline at shutdown.
    pub fn shutdown_grace_ms(mut self, ms: u64) -> Self {
        self.0.shutdown_grace_ms = ms;
        self
    }

    /// Finishes the builder.
    pub fn build(mut self) -> FleetCfg {
        self.0.shards = self.0.shards.max(self.0.workers);
        self.0
    }
}

/// The coordinator's final report: the last stats snapshot plus the
/// shutdown audit of the merged corpus.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// The final [`FleetStats`] snapshot.
    pub stats: FleetStats,
    /// Merged seeds the audit replayed.
    pub replay_seeds: usize,
    /// FNV digest over the per-seed replay verdicts — identical in any
    /// process replaying the same merged corpus.
    pub replay_digest: u64,
    /// Decodable worker-local seeds whose content never reached the
    /// merged corpus (must be zero: admitted coverage is never lost).
    pub lost_seeds: u64,
    /// Distinct coverage points the merged corpus reaches, when the
    /// audit re-measured them.
    pub frontier_points: Option<usize>,
    /// Merged seeds left after distillation, when enabled.
    pub distilled_to: Option<usize>,
    /// `true` when every worker drained by itself within the grace
    /// period (none had to be killed at shutdown).
    pub clean_shutdown: bool,
}

impl FleetReport {
    /// The machine-checkable verdict line the CI gate compares across
    /// processes (same shape as the fuzz gate's `corpus-verdict:`).
    pub fn verdict_line(&self) -> String {
        format!(
            "fleet-verdict: {} seeds {:016x}",
            self.replay_seeds, self.replay_digest
        )
    }

    /// One-paragraph human summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = self.stats.render();
        let _ = writeln!(
            out,
            "  audit: {} merged seeds, {} lost, clean shutdown: {}",
            self.replay_seeds, self.lost_seeds, self.clean_shutdown,
        );
        if let Some(p) = self.frontier_points {
            let _ = writeln!(out, "  frontier: {p} coverage points");
        }
        if let Some(d) = self.distilled_to {
            let _ = writeln!(out, "  distilled to {d} seeds");
        }
        let _ = writeln!(out, "{}", self.verdict_line());
        out
    }
}

/// Derives a worker round's fuzzing seed from (fleet seed, shard,
/// lifetime round counter) — distinct streams per shard and per round,
/// reproducible across worker restarts.
fn mix_seed(base: u64, shard: u64, round: u64) -> u64 {
    Rng::seed_from_u64(
        base ^ shard.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ round.wrapping_mul(0xff51_afd7_ed55_8ccd),
    )
    .gen_u64()
}

// ================================================================ worker

/// One fuzzing worker's process state: attachable from just
/// `(root, id)` — everything else comes from `fleet.cfg`, the shard
/// assignment and the worker's own last heartbeat, so a respawned
/// worker continues where its predecessor died.
pub struct Worker {
    dirs: FleetDirs,
    id: usize,
    cfg: WorkerCfg,
    hb: Heartbeat,
    import_skipped: HashSet<String>,
}

impl Worker {
    /// Attaches to a fleet root, restoring cumulative counters from the
    /// worker's previous incarnation. `None` when the fleet config is
    /// missing or malformed.
    pub fn attach(root: impl Into<PathBuf>, id: usize) -> Option<Worker> {
        let dirs = FleetDirs::new(root);
        let cfg = WorkerCfg::read(&dirs.config_file())?;
        if cfg.fsync {
            set_fsync_before_rename(true);
        }
        let hb = Heartbeat::read(&dirs.heartbeat_file(id)).unwrap_or_default();
        let _ = std::fs::create_dir_all(dirs.corpus_dir(id));
        let _ = std::fs::create_dir_all(dirs.crashes_dir(id));
        Some(Worker {
            dirs,
            id,
            cfg,
            hb,
            import_skipped: HashSet::new(),
        })
    }

    /// Cumulative counters so far.
    pub fn heartbeat(&self) -> &Heartbeat {
        &self.hb
    }

    /// Pulls merged seeds this worker has not imported yet. Each
    /// candidate is decode-validated *before* the copy; a corrupt peer
    /// seed is skipped and counted, never fatal. Imports land as
    /// `seed-m<id>.pkvmtrace` — the `m` infix keeps them out of the
    /// local id counter and out of the coordinator's merge scan.
    pub fn pull_sync(&mut self) {
        let merged = self.dirs.merged_dir();
        let corpus = self.dirs.corpus_dir(self.id);
        let Ok(entries) = std::fs::read_dir(&merged) else {
            return;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("seed-")
                .and_then(|s| s.strip_suffix(".pkvmtrace"))
            else {
                continue;
            };
            let local = corpus.join(format!("seed-m{stem}.pkvmtrace"));
            if local.exists() {
                continue;
            }
            let ok = std::fs::read(entry.path())
                .ok()
                .filter(|bytes| validate_bytes(bytes).is_ok())
                .and_then(|bytes| atomic_write(&local, &bytes).ok())
                .is_some();
            if !ok && self.import_skipped.insert(name.to_string()) {
                self.hb.import_skips += 1;
            }
        }
    }

    /// Runs one fuzzing round on the worker's current shard: pull-sync,
    /// reload the local corpus, fuzz for the round budget, fold the
    /// report into the cumulative heartbeat and atomically publish it.
    pub fn round(&mut self) {
        self.pull_sync();
        let assign = Assignment::read(&self.dirs.assign_file(self.id)).unwrap_or(Assignment {
            shards: vec![self.id as u64],
        });
        if assign.shards.is_empty() {
            // Nothing assigned (mid-redistribution); an idle round still
            // counts as progress — the worker is healthy, just unused.
            self.hb.rounds += 1;
            let _ = self.hb.write(&self.dirs.heartbeat_file(self.id));
            return;
        }
        let shard = assign.shards[(self.hb.rounds as usize) % assign.shards.len()];
        let fc = FuzzCfg::builder()
            .seed(mix_seed(self.cfg.seed, shard, self.hb.rounds))
            .step_budget(self.cfg.round_steps)
            .bootstrap_inputs(self.cfg.bootstrap_inputs.max(1) as usize)
            .bootstrap_len(self.cfg.bootstrap_len)
            .max_input_len(self.cfg.max_input_len.max(1) as usize)
            .invalid_fraction(self.cfg.invalid_fraction)
            .corpus_dir(self.dirs.corpus_dir(self.id))
            .crashes_dir(self.dirs.crashes_dir(self.id))
            .faults(&FaultSet::from_bits(self.cfg.fault_bits))
            .build();
        let r = Fuzzer::new(fc).run();
        self.hb.rounds += 1;
        self.hb.execs += r.execs;
        self.hb.steps += r.steps;
        self.hb.corpus_seeds = r.corpus_size as u64;
        self.hb.points = r.points_covered as u64;
        self.hb.persist_errors += r.persist_errors;
        self.hb.escaped_panics += r.escaped_panics;
        self.hb.crash_families = count_files(&self.dirs.crashes_dir(self.id), "crash-");
        self.record_detections();
        let _ = self.hb.write(&self.dirs.heartbeat_file(self.id));
    }

    /// Scans this worker's crashes directory for families whose first
    /// reproducer appeared this round and stamps them with the worker's
    /// cumulative execs/steps. Known families are left alone — a
    /// first-detection witness never moves once written, so it survives
    /// worker respawns along with the rest of the heartbeat.
    fn record_detections(&mut self) {
        let Ok(entries) = std::fs::read_dir(self.dirs.crashes_dir(self.id)) else {
            return;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let Some(family) = name.to_str().and_then(crash_family) else {
                continue;
            };
            if self.hb.detections.iter().any(|d| d.family == family) {
                continue;
            }
            self.hb.detections.push(Detection {
                family: family.to_string(),
                execs: self.hb.execs,
                steps: self.hb.steps,
            });
        }
    }

    /// `true` while the fleet's stop flag is absent.
    pub fn should_run(&self) -> bool {
        !self.dirs.stop_file().exists()
    }

    /// `true` while this worker's freeze flag (fleet chaos) exists.
    pub fn frozen(&self) -> bool {
        self.dirs.freeze_file(self.id).exists()
    }
}

/// A worker process's entry point: attach, then run rounds until the
/// stop flag appears. While frozen (fleet chaos) the worker sleeps
/// without heartbeat progress — indistinguishable from a genuine wedge,
/// which is the point. Returns the process exit code.
pub fn worker_main(root: impl Into<PathBuf>, id: usize) -> i32 {
    let Some(mut w) = Worker::attach(root, id) else {
        return 2;
    };
    while w.should_run() {
        if w.frozen() {
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        w.round();
    }
    0
}

// ================================================================= merge

/// The coordinator's merge state: the content hashes already merged
/// (rebuilt from the merged directory, so a restarted coordinator never
/// re-merges) and the next merged file id.
pub struct MergeState {
    known: HashSet<u64>,
    next_id: u64,
    /// Corrupt or duplicate candidates skipped so far (this
    /// coordinator's lifetime).
    pub merge_skips: u64,
    /// Seeds merged so far (this coordinator's lifetime).
    pub merged: u64,
}

impl MergeState {
    /// Rebuilds merge state from what the merged directory already
    /// holds.
    pub fn new(merged_dir: &Path) -> MergeState {
        let mut known = HashSet::new();
        let mut next_id = 0;
        if let Ok(entries) = std::fs::read_dir(merged_dir) {
            for entry in entries.filter_map(|e| e.ok()) {
                if let Ok(bytes) = std::fs::read(entry.path()) {
                    known.insert(content_hash(&bytes));
                }
                if let Some(id) = entry
                    .file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix("seed-"))
                    .and_then(|n| n.strip_suffix(".pkvmtrace"))
                    .and_then(|n| n.parse::<u64>().ok())
                {
                    next_id = next_id.max(id + 1);
                }
            }
        }
        MergeState {
            known,
            next_id,
            merge_skips: 0,
            merged: 0,
        }
    }

    /// `true` when this exact content is already merged.
    pub fn knows(&self, bytes: &[u8]) -> bool {
        self.known.contains(&content_hash(bytes))
    }

    /// Sweeps the given workers' corpus directories once, merging every
    /// new decodable seed into `merged/` (bytes copied verbatim, so
    /// content identity is preserved) and skip-counting corrupt or
    /// already-known ones. Imported `seed-m*` files are ignored — they
    /// *came* from the merged corpus. Returns how many seeds this sweep
    /// merged.
    pub fn merge_once(&mut self, dirs: &FleetDirs, workers: &[usize]) -> u64 {
        let mut added = 0;
        for &w in workers {
            let Ok(entries) = std::fs::read_dir(dirs.corpus_dir(w)) else {
                continue;
            };
            for entry in entries.filter_map(|e| e.ok()) {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if !name.starts_with("seed-")
                    || name.starts_with("seed-m")
                    || !name.ends_with(".pkvmtrace")
                {
                    continue;
                }
                let Ok(bytes) = std::fs::read(entry.path()) else {
                    continue;
                };
                let hash = content_hash(&bytes);
                if !self.known.insert(hash) {
                    continue;
                }
                if validate_bytes(&bytes).is_err() {
                    // Torn or corrupt — remembered by hash, reported
                    // once, never merged and never fatal.
                    self.merge_skips += 1;
                    continue;
                }
                let dest = dirs
                    .merged_dir()
                    .join(format!("seed-{:06}.pkvmtrace", self.next_id));
                match atomic_write(&dest, &bytes) {
                    Ok(()) => {
                        self.next_id += 1;
                        added += 1;
                        self.merged += 1;
                    }
                    Err(_) => {
                        // Can't persist into merged/ right now (full
                        // disk?). Forget the hash so a later sweep
                        // retries instead of silently dropping the seed.
                        self.known.remove(&hash);
                        self.merge_skips += 1;
                    }
                }
            }
        }
        added
    }
}

// =========================================================== coordinator

fn count_files(dir: &Path, prefix: &str) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".pkvmtrace"))
                })
                .count() as u64
        })
        .unwrap_or(0)
}

/// Scans every worker's crashes directory and buckets reproducers by
/// the signature kind embedded in the filename
/// (`crash-NNN-<kind>.pkvmtrace`), preserving `first_execs` from the
/// previous snapshot for known buckets.
fn crash_buckets(
    cfg: &FleetCfg,
    dirs: &FleetDirs,
    prev: &FleetStats,
    execs: u64,
) -> Vec<CrashBucket> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for w in 0..cfg.workers {
        if let Ok(entries) = std::fs::read_dir(dirs.crashes_dir(w)) {
            for entry in entries.filter_map(|e| e.ok()) {
                let name = entry.file_name();
                let Some(kind) = name.to_str().and_then(crash_family).map(str::to_string) else {
                    continue;
                };
                *counts.entry(kind).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .map(|(name, count)| {
            let first_execs = prev
                .crash_buckets
                .iter()
                .find(|b| b.name == name)
                .map_or(execs, |b| b.first_execs);
            CrashBucket {
                name,
                count,
                first_execs,
            }
        })
        .collect()
}

/// Spawns one worker process. A spawn failure yields `None` — the
/// supervisor treats it like an instant exit, so a broken worker binary
/// degrades into backoffs and eventually quarantine, not a coordinator
/// death.
fn spawn_worker(cfg: &FleetCfg, w: usize) -> Option<Child> {
    let exe = cfg
        .worker_exe
        .clone()
        .or_else(|| std::env::current_exe().ok())?;
    Command::new(exe)
        .args(&cfg.worker_args)
        .arg(&cfg.root)
        .arg(w.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .ok()
}

/// Moves a quarantined worker's shards onto the remaining active
/// workers, round-robin, and rewrites every affected assignment
/// atomically.
pub fn redistribute_shards(dirs: &FleetDirs, from: usize, active: &[usize]) {
    let orphaned = Assignment::read(&dirs.assign_file(from))
        .unwrap_or_default()
        .shards;
    let _ = Assignment::default().write(&dirs.assign_file(from));
    if active.is_empty() || orphaned.is_empty() {
        return;
    }
    let mut assigns: Vec<Assignment> = active
        .iter()
        .map(|&w| {
            Assignment::read(&dirs.assign_file(w)).unwrap_or(Assignment {
                shards: vec![w as u64],
            })
        })
        .collect();
    for (i, shard) in orphaned.into_iter().enumerate() {
        let a = &mut assigns[i % active.len()];
        if !a.shards.contains(&shard) {
            a.shards.push(shard);
        }
    }
    for (&w, a) in active.iter().zip(&assigns) {
        let _ = a.write(&dirs.assign_file(w));
    }
}

/// Aggregates the fleet snapshot from the latest heartbeats (cumulative
/// per worker across restarts, so plain sums are restart-safe).
fn aggregate(cfg: &FleetCfg, dirs: &FleetDirs, stats: &mut FleetStats) {
    let mut execs = 0;
    let mut steps = 0;
    let mut import_skips = 0;
    let mut persist_errors = 0;
    let mut escaped = 0;
    for w in 0..cfg.workers {
        if let Some(hb) = Heartbeat::read(&dirs.heartbeat_file(w)) {
            execs += hb.execs;
            steps += hb.steps;
            import_skips += hb.import_skips;
            persist_errors += hb.persist_errors;
            escaped += hb.escaped_panics;
            stats.observe_detections(&hb.detections, stats.elapsed_ms);
        }
    }
    stats.execs = execs;
    stats.steps = steps;
    stats.import_skips = import_skips;
    stats.persist_errors = persist_errors;
    stats.escaped_panics = escaped;
    stats.merged_seeds = count_files(&dirs.merged_dir(), "seed-");
    let buckets = crash_buckets(cfg, dirs, stats, execs);
    stats.crash_buckets = buckets;
}

/// Runs the fleet: spawn, supervise, merge, snapshot, drain, audit.
/// Returns the final report. The coordinator itself is restartable:
/// rerunning over the same root resumes the on-disk history.
pub fn run(cfg: &FleetCfg) -> FleetReport {
    let dirs = FleetDirs::new(&cfg.root);
    let _ = dirs.create_all(cfg.workers);
    let _ = std::fs::remove_file(dirs.stop_file());
    let _ = cfg.worker.write(&dirs.config_file());
    if cfg.worker.fsync {
        set_fsync_before_rename(true);
    }
    // Seed the shard assignments, keeping any survivor from a previous
    // coordinator incarnation.
    for w in 0..cfg.workers {
        if Assignment::read(&dirs.assign_file(w)).is_none() {
            let shards = (0..cfg.shards as u64)
                .filter(|s| *s as usize % cfg.workers == w)
                .collect();
            let _ = Assignment { shards }.write(&dirs.assign_file(w));
        }
    }

    let mut stats = FleetStats::load(&dirs.stats_file()).unwrap_or_default();
    let merge_skips_base = stats.merge_skips;
    let mut merge = MergeState::new(&dirs.merged_dir());
    let mut sup = Supervisor::new(
        cfg.workers,
        SupervisionCfg {
            jitter_seed: cfg.supervision.jitter_seed ^ cfg.worker.seed,
            ..cfg.supervision.clone()
        },
        0,
    );
    let mut chaos_rng = Rng::seed_from_u64(cfg.chaos.map_or(0, |c| c.seed));
    let start = Instant::now();
    let mut children: Vec<Option<Child>> = (0..cfg.workers).map(|w| spawn_worker(cfg, w)).collect();
    let mut last_now = 0u64;

    for round in 0..cfg.rounds {
        std::thread::sleep(Duration::from_millis(cfg.poll_ms));
        let now = start.elapsed().as_millis() as u64;

        // Observe heartbeats.
        for w in sup.active() {
            if let Some(hb) = Heartbeat::read(&dirs.heartbeat_file(w)) {
                sup.heartbeat(w, hb.rounds, now);
            }
        }

        // Fault injection — forced one-shots first (the CI gate), then
        // the seeded probabilistic stream.
        let live: Vec<usize> = (0..cfg.workers)
            .filter(|&w| children[w].is_some())
            .collect();
        if cfg.forced_kill_round == Some(round) {
            if let Some(&w) = live.first() {
                if let Some(ch) = children[w].as_mut() {
                    let _ = ch.kill();
                }
            }
        }
        if cfg.forced_torn_round == Some(round) {
            let w = live.first().copied().unwrap_or(0);
            let _ = inject_torn_seed(&dirs.corpus_dir(w), "seed-t-forced.pkvmtrace");
        }
        if let Some(chaos) = &cfg.chaos {
            if !live.is_empty() && chaos_rng.gen_bool(chaos.p_kill) {
                let w = live[chaos_rng.gen_range(0..live.len() as u64) as usize];
                if let Some(ch) = children[w].as_mut() {
                    let _ = ch.kill();
                }
            }
            if chaos_rng.gen_bool(chaos.p_torn) {
                let w = chaos_rng.gen_range(0..cfg.workers as u64) as usize;
                let _ =
                    inject_torn_seed(&dirs.corpus_dir(w), &format!("seed-t{round:06}.pkvmtrace"));
            }
            if !live.is_empty() && chaos_rng.gen_bool(chaos.p_freeze) {
                let w = live[chaos_rng.gen_range(0..live.len() as u64) as usize];
                let _ = std::fs::write(dirs.freeze_file(w), b"");
            }
        }

        // Reap exits; a dead worker either backs off or — after burning
        // its restart budget with no progress — is quarantined and its
        // shards move to the survivors.
        for (w, child) in children.iter_mut().enumerate() {
            let exited = child
                .as_mut()
                .is_some_and(|ch| matches!(ch.try_wait(), Ok(Some(_))));
            if exited {
                *child = None;
                if let Some(Action::Quarantine(w)) = sup.process_exited(w, now) {
                    stats.quarantined += 1;
                    redistribute_shards(&dirs, w, &sup.active());
                }
            }
        }

        // Supervision: kill the wedged, respawn the due.
        for action in sup.tick(now) {
            match action {
                Action::Kill(w) => {
                    stats.kills += 1;
                    // A frozen worker is wedged on purpose; un-freeze it
                    // so the respawned process gets a fair start.
                    let _ = std::fs::remove_file(dirs.freeze_file(w));
                    if let Some(ch) = children[w].as_mut() {
                        let _ = ch.kill();
                    }
                }
                Action::Respawn(w) => {
                    stats.respawns += 1;
                    children[w] = spawn_worker(cfg, w);
                    if children[w].is_none() {
                        if let Some(Action::Quarantine(w)) = sup.process_exited(w, now) {
                            stats.quarantined += 1;
                            redistribute_shards(&dirs, w, &sup.active());
                        }
                    }
                }
                Action::Quarantine(_) => {}
            }
        }

        // Merge, aggregate, snapshot.
        merge.merge_once(&dirs, &sup.active());
        stats.rounds += 1;
        stats.elapsed_ms += now - last_now;
        stats.merge_skips = merge_skips_base + merge.merge_skips;
        last_now = now;
        aggregate(cfg, &dirs, &mut stats);
        let _ = stats.save(&dirs.stats_file());
    }

    // Drain: raise the stop flag, give workers the grace period, kill
    // stragglers (an unclean drain is reported, not hidden).
    let _ = atomic_write(&dirs.stop_file(), b"stop\n");
    let deadline = Instant::now() + Duration::from_millis(cfg.shutdown_grace_ms);
    let mut clean_shutdown = true;
    loop {
        let mut alive = false;
        for slot in children.iter_mut() {
            if let Some(ch) = slot.as_mut() {
                if matches!(ch.try_wait(), Ok(Some(_))) {
                    *slot = None;
                } else {
                    alive = true;
                }
            }
        }
        if !alive {
            break;
        }
        if Instant::now() >= deadline {
            clean_shutdown = false;
            for slot in children.iter_mut().filter_map(|s| s.as_mut()) {
                let _ = slot.kill();
                let _ = slot.wait();
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Final merge over *every* worker — quarantined ones included: a
    // deterministic crasher's coverage is still coverage.
    let all: Vec<usize> = (0..cfg.workers).collect();
    merge.merge_once(&dirs, &all);
    stats.merge_skips = merge_skips_base + merge.merge_skips;
    aggregate(cfg, &dirs, &mut stats);

    // Audit: every decodable worker seed must exist in merged/, by
    // content.
    let mut lost_seeds = 0;
    for w in 0..cfg.workers {
        let scan = fuzz::scan_dir(&dirs.corpus_dir(w));
        for (path, _) in &scan.loaded {
            match std::fs::read(path) {
                Ok(bytes) if !merge.knows(&bytes) => lost_seeds += 1,
                _ => {}
            }
        }
    }

    // Optional distillation: re-measure each merged seed's footprint,
    // keep a frontier-preserving subset, delete the rest.
    let fc = FuzzCfg::builder()
        .faults(&FaultSet::from_bits(cfg.worker.fault_bits))
        .build();
    let mut distilled_to = None;
    let mut frontier_points = None;
    if cfg.distill || cfg.audit_frontier {
        let mut corpus = Corpus::new(None);
        let mut admitted: Vec<(u64, PathBuf)> = Vec::new();
        let mut measured = true;
        for (path, trace) in fuzz::corpus::load_dir(&dirs.merged_dir()) {
            match footprint(&fc, &trace) {
                Some((points, sig)) => {
                    if let Some(id) = corpus.consider(trace, points, sig, None) {
                        admitted.push((id, path));
                    } else if cfg.distill {
                        // Added no coverage beyond the seeds already
                        // kept: redundant by construction.
                        let _ = std::fs::remove_file(&path);
                    }
                }
                None => measured = false, // escaped containment: keep the file, skip the math
            }
        }
        if cfg.audit_frontier {
            frontier_points = Some(corpus.points_covered());
        }
        if cfg.distill && measured {
            let kept: HashSet<u64> = corpus.distill().into_iter().collect();
            for (id, path) in &admitted {
                if !kept.contains(id) {
                    let _ = std::fs::remove_file(path);
                }
            }
            distilled_to = Some(kept.len().min(admitted.len()));
        }
        stats.merged_seeds = count_files(&dirs.merged_dir(), "seed-");
    }

    let (replay_seeds, replay_digest) = fuzz::replay_digest(&dirs.merged_dir());
    stats.elapsed_ms += (start.elapsed().as_millis() as u64).saturating_sub(last_now);
    let _ = stats.save(&dirs.stats_file());

    FleetReport {
        stats,
        replay_seeds,
        replay_digest,
        lost_seeds,
        frontier_points,
        distilled_to,
        clean_shutdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_separates_shards_and_rounds() {
        assert_eq!(mix_seed(1, 2, 3), mix_seed(1, 2, 3));
        assert_ne!(mix_seed(1, 2, 3), mix_seed(1, 3, 3));
        assert_ne!(mix_seed(1, 2, 3), mix_seed(1, 2, 4));
        assert_ne!(mix_seed(1, 2, 3), mix_seed(2, 2, 3));
    }

    #[test]
    fn builder_raises_shards_to_worker_count() {
        let cfg = FleetCfg::builder().workers(4).shards(2).build();
        assert_eq!(cfg.shards, 4);
    }
}
