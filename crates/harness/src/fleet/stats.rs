//! The fleet's aggregated statistics snapshot.
//!
//! The coordinator folds worker heartbeats and its own supervision and
//! merge counters into a [`FleetStats`] and atomically rewrites the
//! `fleet-stats` file every poll round. Because the snapshot carries
//! cumulative totals (and the per-worker heartbeats carry their own), a
//! coordinator that crashes and restarts over the same root resumes
//! from the snapshot instead of zero — fleet history survives the
//! death of its bookkeeper like everything else in the protocol.

use std::path::Path;

use crate::fleet::protocol::{encode_kv, parse_kv, Detection};
use crate::tracefile::atomic_write;

/// One deduplicated crash family, fleet-wide.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashBucket {
    /// The family's rendered signature.
    pub name: String,
    /// Reproducer files observed for this signature.
    pub count: u64,
    /// Fleet `execs` total when first observed.
    pub first_execs: u64,
}

/// Fleet-wide time-to-first-detection for one crash family: the
/// *earliest* worker-side witness across the fleet (fewest worker
/// execs), stamped with the fleet clock when the coordinator first
/// merged it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetDetection {
    /// The crash family.
    pub family: String,
    /// Fewest worker-cumulative execs any worker needed to find it.
    pub first_execs: u64,
    /// The same worker's cumulative driver steps at that point.
    pub first_steps: u64,
    /// Fleet wall-clock milliseconds when the coordinator first merged
    /// this family (monotone across coordinator restarts).
    pub first_ms: u64,
}

/// The periodically-serialized fleet snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetStats {
    /// Coordinator poll rounds completed (across coordinator restarts).
    pub rounds: u64,
    /// Inputs executed, summed over worker heartbeats.
    pub execs: u64,
    /// Driver steps executed, summed over worker heartbeats.
    pub steps: u64,
    /// Seeds currently in the merged corpus.
    pub merged_seeds: u64,
    /// Corrupt or duplicate candidate files skipped during merges.
    pub merge_skips: u64,
    /// Peer seeds workers skipped as corrupt during pull-sync.
    pub import_skips: u64,
    /// Persistence failures absorbed fleet-wide.
    pub persist_errors: u64,
    /// Worker processes killed for wedging.
    pub kills: u64,
    /// Worker processes respawned.
    pub respawns: u64,
    /// Workers permanently quarantined.
    pub quarantined: u64,
    /// Panics that escaped containment, fleet-wide (expected zero).
    pub escaped_panics: u64,
    /// Wall-clock milliseconds the fleet has run (across restarts).
    pub elapsed_ms: u64,
    /// Deduplicated crash families, in discovery order.
    pub crash_buckets: Vec<CrashBucket>,
    /// Per-family time-to-first-detection, sorted by family name.
    pub detections: Vec<FleetDetection>,
}

impl FleetStats {
    /// Serializes to `key=value` lines; crash families as
    /// `bucket=<count>;<first_execs>;<name>` lines (the name last, so
    /// its own `;`s survive).
    pub fn encode(&self) -> String {
        let mut out = encode_kv(&[
            ("rounds", self.rounds.to_string()),
            ("execs", self.execs.to_string()),
            ("steps", self.steps.to_string()),
            ("merged_seeds", self.merged_seeds.to_string()),
            ("merge_skips", self.merge_skips.to_string()),
            ("import_skips", self.import_skips.to_string()),
            ("persist_errors", self.persist_errors.to_string()),
            ("kills", self.kills.to_string()),
            ("respawns", self.respawns.to_string()),
            ("quarantined", self.quarantined.to_string()),
            ("escaped_panics", self.escaped_panics.to_string()),
            ("elapsed_ms", self.elapsed_ms.to_string()),
        ]);
        for b in &self.crash_buckets {
            out.push_str(&format!(
                "bucket={};{};{}\n",
                b.count,
                b.first_execs,
                b.name.replace('\n', " ")
            ));
        }
        for d in &self.detections {
            out.push_str(&format!(
                "detect={};{};{};{}\n",
                d.first_execs,
                d.first_steps,
                d.first_ms,
                d.family.replace('\n', " ")
            ));
        }
        out
    }

    /// Decodes a snapshot; a torn or malformed file is `None` (the
    /// coordinator starts a fresh history rather than a wrong one).
    pub fn decode(text: &str) -> Option<FleetStats> {
        let m = parse_kv(text);
        let get = |k: &str| m.get(k)?.parse::<u64>().ok();
        let mut stats = FleetStats {
            rounds: get("rounds")?,
            execs: get("execs")?,
            steps: get("steps")?,
            merged_seeds: get("merged_seeds")?,
            merge_skips: get("merge_skips")?,
            import_skips: get("import_skips")?,
            persist_errors: get("persist_errors")?,
            kills: get("kills")?,
            respawns: get("respawns")?,
            quarantined: get("quarantined")?,
            escaped_panics: get("escaped_panics")?,
            elapsed_ms: get("elapsed_ms")?,
            crash_buckets: Vec::new(),
            detections: Vec::new(),
        };
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("bucket=") {
                let mut parts = rest.splitn(3, ';');
                let count = parts.next()?.parse().ok()?;
                let first_execs = parts.next()?.parse().ok()?;
                let name = parts.next()?.to_string();
                stats.crash_buckets.push(CrashBucket {
                    name,
                    count,
                    first_execs,
                });
            } else if let Some(rest) = line.strip_prefix("detect=") {
                let mut parts = rest.splitn(4, ';');
                let first_execs = parts.next()?.parse().ok()?;
                let first_steps = parts.next()?.parse().ok()?;
                let first_ms = parts.next()?.parse().ok()?;
                let family = parts.next()?.to_string();
                stats.detections.push(FleetDetection {
                    family,
                    first_execs,
                    first_steps,
                    first_ms,
                });
            }
        }
        Some(stats)
    }

    /// Merges one worker's first-detection witnesses into the fleet
    /// view: an unseen family is stamped with the fleet clock `now_ms`;
    /// a known family keeps its original stamp but adopts a cheaper
    /// witness (fewer worker execs) if one appears. The list stays
    /// sorted by family so snapshots are deterministic regardless of
    /// heartbeat arrival order.
    pub fn observe_detections(&mut self, seen: &[Detection], now_ms: u64) {
        for d in seen {
            match self.detections.iter_mut().find(|f| f.family == d.family) {
                Some(f) => {
                    if d.execs < f.first_execs {
                        f.first_execs = d.execs;
                        f.first_steps = d.steps;
                    }
                }
                None => self.detections.push(FleetDetection {
                    family: d.family.clone(),
                    first_execs: d.execs,
                    first_steps: d.steps,
                    first_ms: now_ms,
                }),
            }
        }
        self.detections.sort_by(|a, b| a.family.cmp(&b.family));
    }

    /// Atomically replaces the snapshot file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.encode().as_bytes())
    }

    /// Loads a snapshot; missing or malformed files are `None`.
    pub fn load(path: &Path) -> Option<FleetStats> {
        FleetStats::decode(&std::fs::read_to_string(path).ok()?)
    }

    /// Fleet-wide execution rate.
    pub fn execs_per_sec(&self) -> f64 {
        if self.elapsed_ms == 0 {
            0.0
        } else {
            self.execs as f64 * 1000.0 / self.elapsed_ms as f64
        }
    }

    /// One-paragraph human summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} rounds, {} execs ({:.0}/s), {} driver steps in {:.1}s",
            self.rounds,
            self.execs,
            self.execs_per_sec(),
            self.steps,
            self.elapsed_ms as f64 / 1000.0,
        );
        let _ = writeln!(
            out,
            "  merged corpus {} seeds ({} merge skips, {} import skips, {} persist errors)",
            self.merged_seeds, self.merge_skips, self.import_skips, self.persist_errors,
        );
        let _ = writeln!(
            out,
            "  supervision: {} kills, {} respawns, {} quarantined; {} escaped panics",
            self.kills, self.respawns, self.quarantined, self.escaped_panics,
        );
        let _ = writeln!(out, "  crash families: {}", self.crash_buckets.len());
        for b in &self.crash_buckets {
            let _ = writeln!(
                out,
                "    {} — {} reproducers, first at exec {}",
                b.name, b.count, b.first_execs
            );
        }
        if !self.detections.is_empty() {
            let _ = writeln!(out, "  time to first detection:");
            for d in &self.detections {
                let _ = writeln!(
                    out,
                    "    {} — {} worker execs ({} steps), {:.1}s of fleet time",
                    d.family,
                    d.first_execs,
                    d.first_steps,
                    d.first_ms as f64 / 1000.0,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_including_buckets() {
        let s = FleetStats {
            rounds: 12,
            execs: 3456,
            steps: 99_999,
            merged_seeds: 40,
            merge_skips: 3,
            import_skips: 2,
            persist_errors: 1,
            kills: 2,
            respawns: 5,
            quarantined: 1,
            escaped_panics: 0,
            elapsed_ms: 8_000,
            crash_buckets: vec![
                CrashBucket {
                    name: "spec-mismatch @ vmemmap [spec/host_share_hyp/check]".into(),
                    count: 4,
                    first_execs: 120,
                },
                CrashBucket {
                    name: "hyp-panic; with; semicolons".into(),
                    count: 1,
                    first_execs: 900,
                },
            ],
            detections: vec![FleetDetection {
                family: "spec-mismatch @ vmemmap".into(),
                first_execs: 120,
                first_steps: 4_400,
                first_ms: 2_500,
            }],
        };
        assert_eq!(FleetStats::decode(&s.encode()), Some(s.clone()));
        assert!((s.execs_per_sec() - 432.0).abs() < 1e-9);
        let r = s.render();
        assert!(r.contains("quarantined") && r.contains("hyp-panic"), "{r}");
        assert!(r.contains("time to first detection"), "{r}");
        // Torn snapshots decode to None, never to zeroed history.
        assert_eq!(FleetStats::decode("rounds=12\nexecs=3"), None);
    }

    #[test]
    fn detections_merge_keeps_earliest_witness_and_first_stamp() {
        let mut s = FleetStats::default();
        s.observe_detections(
            &[Detection {
                family: "b-family".into(),
                execs: 500,
                steps: 9_000,
            }],
            1_000,
        );
        // A second worker found the same family cheaper, plus a new one;
        // the fleet stamp of the known family must NOT move forward.
        s.observe_detections(
            &[
                Detection {
                    family: "b-family".into(),
                    execs: 120,
                    steps: 2_000,
                },
                Detection {
                    family: "a-family".into(),
                    execs: 900,
                    steps: 30_000,
                },
            ],
            7_000,
        );
        assert_eq!(
            s.detections,
            vec![
                FleetDetection {
                    family: "a-family".into(),
                    first_execs: 900,
                    first_steps: 30_000,
                    first_ms: 7_000,
                },
                FleetDetection {
                    family: "b-family".into(),
                    first_execs: 120,
                    first_steps: 2_000,
                    first_ms: 1_000,
                },
            ]
        );
        // A later, more expensive witness changes nothing.
        let before = s.detections.clone();
        s.observe_detections(
            &[Detection {
                family: "b-family".into(),
                execs: 999,
                steps: 1,
            }],
            9_000,
        );
        assert_eq!(s.detections, before);
    }
}
