//! The fleet's aggregated statistics snapshot.
//!
//! The coordinator folds worker heartbeats and its own supervision and
//! merge counters into a [`FleetStats`] and atomically rewrites the
//! `fleet-stats` file every poll round. Because the snapshot carries
//! cumulative totals (and the per-worker heartbeats carry their own), a
//! coordinator that crashes and restarts over the same root resumes
//! from the snapshot instead of zero — fleet history survives the
//! death of its bookkeeper like everything else in the protocol.

use std::path::Path;

use crate::fleet::protocol::{encode_kv, parse_kv};
use crate::tracefile::atomic_write;

/// One deduplicated crash family, fleet-wide.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashBucket {
    /// The family's rendered signature.
    pub name: String,
    /// Reproducer files observed for this signature.
    pub count: u64,
    /// Fleet `execs` total when first observed.
    pub first_execs: u64,
}

/// The periodically-serialized fleet snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetStats {
    /// Coordinator poll rounds completed (across coordinator restarts).
    pub rounds: u64,
    /// Inputs executed, summed over worker heartbeats.
    pub execs: u64,
    /// Driver steps executed, summed over worker heartbeats.
    pub steps: u64,
    /// Seeds currently in the merged corpus.
    pub merged_seeds: u64,
    /// Corrupt or duplicate candidate files skipped during merges.
    pub merge_skips: u64,
    /// Peer seeds workers skipped as corrupt during pull-sync.
    pub import_skips: u64,
    /// Persistence failures absorbed fleet-wide.
    pub persist_errors: u64,
    /// Worker processes killed for wedging.
    pub kills: u64,
    /// Worker processes respawned.
    pub respawns: u64,
    /// Workers permanently quarantined.
    pub quarantined: u64,
    /// Panics that escaped containment, fleet-wide (expected zero).
    pub escaped_panics: u64,
    /// Wall-clock milliseconds the fleet has run (across restarts).
    pub elapsed_ms: u64,
    /// Deduplicated crash families, in discovery order.
    pub crash_buckets: Vec<CrashBucket>,
}

impl FleetStats {
    /// Serializes to `key=value` lines; crash families as
    /// `bucket=<count>;<first_execs>;<name>` lines (the name last, so
    /// its own `;`s survive).
    pub fn encode(&self) -> String {
        let mut out = encode_kv(&[
            ("rounds", self.rounds.to_string()),
            ("execs", self.execs.to_string()),
            ("steps", self.steps.to_string()),
            ("merged_seeds", self.merged_seeds.to_string()),
            ("merge_skips", self.merge_skips.to_string()),
            ("import_skips", self.import_skips.to_string()),
            ("persist_errors", self.persist_errors.to_string()),
            ("kills", self.kills.to_string()),
            ("respawns", self.respawns.to_string()),
            ("quarantined", self.quarantined.to_string()),
            ("escaped_panics", self.escaped_panics.to_string()),
            ("elapsed_ms", self.elapsed_ms.to_string()),
        ]);
        for b in &self.crash_buckets {
            out.push_str(&format!(
                "bucket={};{};{}\n",
                b.count,
                b.first_execs,
                b.name.replace('\n', " ")
            ));
        }
        out
    }

    /// Decodes a snapshot; a torn or malformed file is `None` (the
    /// coordinator starts a fresh history rather than a wrong one).
    pub fn decode(text: &str) -> Option<FleetStats> {
        let m = parse_kv(text);
        let get = |k: &str| m.get(k)?.parse::<u64>().ok();
        let mut stats = FleetStats {
            rounds: get("rounds")?,
            execs: get("execs")?,
            steps: get("steps")?,
            merged_seeds: get("merged_seeds")?,
            merge_skips: get("merge_skips")?,
            import_skips: get("import_skips")?,
            persist_errors: get("persist_errors")?,
            kills: get("kills")?,
            respawns: get("respawns")?,
            quarantined: get("quarantined")?,
            escaped_panics: get("escaped_panics")?,
            elapsed_ms: get("elapsed_ms")?,
            crash_buckets: Vec::new(),
        };
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("bucket=") else {
                continue;
            };
            let mut parts = rest.splitn(3, ';');
            let count = parts.next()?.parse().ok()?;
            let first_execs = parts.next()?.parse().ok()?;
            let name = parts.next()?.to_string();
            stats.crash_buckets.push(CrashBucket {
                name,
                count,
                first_execs,
            });
        }
        Some(stats)
    }

    /// Atomically replaces the snapshot file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.encode().as_bytes())
    }

    /// Loads a snapshot; missing or malformed files are `None`.
    pub fn load(path: &Path) -> Option<FleetStats> {
        FleetStats::decode(&std::fs::read_to_string(path).ok()?)
    }

    /// Fleet-wide execution rate.
    pub fn execs_per_sec(&self) -> f64 {
        if self.elapsed_ms == 0 {
            0.0
        } else {
            self.execs as f64 * 1000.0 / self.elapsed_ms as f64
        }
    }

    /// One-paragraph human summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} rounds, {} execs ({:.0}/s), {} driver steps in {:.1}s",
            self.rounds,
            self.execs,
            self.execs_per_sec(),
            self.steps,
            self.elapsed_ms as f64 / 1000.0,
        );
        let _ = writeln!(
            out,
            "  merged corpus {} seeds ({} merge skips, {} import skips, {} persist errors)",
            self.merged_seeds, self.merge_skips, self.import_skips, self.persist_errors,
        );
        let _ = writeln!(
            out,
            "  supervision: {} kills, {} respawns, {} quarantined; {} escaped panics",
            self.kills, self.respawns, self.quarantined, self.escaped_panics,
        );
        let _ = writeln!(out, "  crash families: {}", self.crash_buckets.len());
        for b in &self.crash_buckets {
            let _ = writeln!(
                out,
                "    {} — {} reproducers, first at exec {}",
                b.name, b.count, b.first_execs
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_including_buckets() {
        let s = FleetStats {
            rounds: 12,
            execs: 3456,
            steps: 99_999,
            merged_seeds: 40,
            merge_skips: 3,
            import_skips: 2,
            persist_errors: 1,
            kills: 2,
            respawns: 5,
            quarantined: 1,
            escaped_panics: 0,
            elapsed_ms: 8_000,
            crash_buckets: vec![
                CrashBucket {
                    name: "spec-mismatch @ vmemmap [spec/host_share_hyp/check]".into(),
                    count: 4,
                    first_execs: 120,
                },
                CrashBucket {
                    name: "hyp-panic; with; semicolons".into(),
                    count: 1,
                    first_execs: 900,
                },
            ],
        };
        assert_eq!(FleetStats::decode(&s.encode()), Some(s.clone()));
        assert!((s.execs_per_sec() - 432.0).abs() < 1e-9);
        let r = s.render();
        assert!(r.contains("quarantined") && r.contains("hyp-panic"), "{r}");
        // Torn snapshots decode to None, never to zeroed history.
        assert_eq!(FleetStats::decode("rounds=12\nexecs=3"), None);
    }
}
