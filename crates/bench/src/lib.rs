//! Shared fixtures for the evaluation benchmarks and the report binary.
//!
//! Each bench target regenerates one table/figure of the paper's
//! evaluation; the mapping from experiment id (E1..E9, F2, F6, A1) to
//! target is in `DESIGN.md`, and `EXPERIMENTS.md` records paper-vs-measured.

pub mod minibench;

use std::sync::Arc;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::attrs::{Attrs, Perms, Stage};
use pkvm_aarch64::memory::{MemRegion, PhysMem};
use pkvm_ghost::oracle::Oracle;
use pkvm_hyp::faults::FaultSet;
use pkvm_hyp::machine::{Machine, MachineConfig};
use pkvm_hyp::owner::PageState;
use pkvm_hyp::pgtable::{kvm_pgtable_walk, KvmPgtable, MapWalker, PoolOps, WalkState};
use pkvm_hyp::pool::HypPool;

/// Boots a machine with or without the oracle installed.
pub fn boot(with_oracle: bool) -> (Arc<Machine>, Option<Arc<Oracle>>) {
    let config = MachineConfig::default();
    if with_oracle {
        let oracle = Oracle::builder(&config).build();
        let m = Machine::boot(config, oracle.clone(), Arc::new(FaultSet::none()));
        (m, Some(oracle))
    } else {
        (
            Machine::boot(
                config,
                Arc::new(pkvm_hyp::hooks::NoHooks),
                Arc::new(FaultSet::none()),
            ),
            None,
        )
    }
}

/// A standalone stage 2 table with `nr_pages` individually-mapped pages
/// (worst case for interpretation) rooted in fresh memory.
pub fn build_page_table(nr_pages: u64) -> (PhysMem, PhysAddr) {
    let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x1000_0000)]);
    let mut pool = HypPool::new(PhysAddr::new(0x4800_0000 - 0x80_0000), 2048);
    let root = pool.alloc_page().unwrap();
    mem.zero_page(root).unwrap();
    let pgt = KvmPgtable {
        root,
        stage: Stage::Stage2,
    };
    let attrs = Attrs::normal(Perms::RWX).with_sw(PageState::Owned.to_sw());
    let mut mm = PoolOps(&mut pool);
    let mut ws = WalkState::new(&mem, &mut mm);
    let mut w = MapWalker {
        stage: Stage::Stage2,
        phys_base: PhysAddr::new(0x4000_0000),
        ia_base: 0x4000_0000,
        attrs,
        force_pages: true,
        corrupt_block_oa: false,
    };
    kvm_pgtable_walk(&pgt, &mut ws, 0x4000_0000, nr_pages * PAGE_SIZE, &mut w).unwrap();
    (mem, root)
}

/// A standalone stage 2 table covering `nr_pages` with maximal block
/// mappings (best case for interpretation).
pub fn build_block_table(nr_pages: u64) -> (PhysMem, PhysAddr) {
    let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x4000_0000)]);
    let mut pool = HypPool::new(PhysAddr::new(0x8000_0000 - 0x80_0000), 2048);
    let root = pool.alloc_page().unwrap();
    mem.zero_page(root).unwrap();
    let pgt = KvmPgtable {
        root,
        stage: Stage::Stage2,
    };
    let attrs = Attrs::normal(Perms::RWX).with_sw(PageState::Owned.to_sw());
    let mut mm = PoolOps(&mut pool);
    let mut ws = WalkState::new(&mem, &mut mm);
    let mut w = MapWalker {
        stage: Stage::Stage2,
        phys_base: PhysAddr::new(0x4000_0000),
        ia_base: 0x4000_0000,
        attrs,
        force_pages: false,
        corrupt_block_oa: false,
    };
    kvm_pgtable_walk(&pgt, &mut ws, 0x4000_0000, nr_pages * PAGE_SIZE, &mut w).unwrap();
    (mem, root)
}
