//! The evaluation report: regenerates the paper's non-timing tables.
//!
//! Prints, in order: E5 (handwritten-test composition), E6 (coverage),
//! E4 (ghost memory impact), E7/E8 (the bug-detection matrix), E9
//! (specification size), and quick wall-clock versions of E1/E2/E3 (the
//! statistically-rigorous versions live in the Criterion benches).
//!
//! Run with `cargo run --release -p pkvm-bench --bin report`.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use pkvm_aarch64::walk::Access;
use pkvm_bench::boot;
use pkvm_ghost::oracle::Oracle;
use pkvm_harness::bugs::{self, Detection};
use pkvm_harness::coverage::{self, CoverageSummary};
use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};
use pkvm_harness::scenarios;
use pkvm_hyp::faults::FaultSet;
use pkvm_hyp::machine::{Machine, MachineConfig};

fn heading(s: &str) {
    println!("\n=== {s} ===");
}

fn main() {
    // ------------------------------------------------ E5: the test suite
    heading("E5: handwritten test suite (paper: 41 tests, 19 error-free, 22 error, a handful concurrent)");
    coverage::reset();
    let suite = scenarios::run_all(true);
    println!(
        "measured: {} tests, {} error-free, {} error, {} concurrent; oracle failures: {}",
        suite.total,
        suite.ok_kind,
        suite.err_kind,
        suite.concurrent,
        suite.oracle_failures.len()
    );

    // ----------------------------------------------------- E6: coverage
    heading("E6: coverage (paper: 100% of reachable impl lines for host_share_hyp; spec 92% = 459/497 lines)");
    println!("after the handwritten suite:");
    print!("{}", CoverageSummary::collect().render());
    let proxy = Proxy::builder().boot();
    let mut tester = RandomTester::new(proxy, RandomCfg::default());
    tester.run(5000);
    assert!(tester.proxy.all_clear());
    println!("after 5000 additional random steps:");
    print!("{}", CoverageSummary::collect().render());

    // ------------------------------------------------ E4: memory impact
    heading("E4: ghost memory impact (paper: ~18 MB, dominated by page-table representations)");
    let config = MachineConfig::default();
    let oracle = Oracle::builder(&config).build();
    let machine = Machine::boot(config, oracle.clone(), Arc::new(FaultSet::none()));
    // Populate with a *fragmented* workload (alternating pages, so the
    // maplets cannot coalesce — the paper's memory is likewise dominated
    // by page-table representations).
    for i in 0..512u64 {
        let _ = machine.host_access(0, 0x4000_0000 + i * 0x2_0000, Access::Read);
    }
    for i in 0..512u64 {
        assert_eq!(
            machine.hvc(
                0,
                pkvm_hyp::hypercalls::HVC_HOST_SHARE_HYP,
                &[0x40300 + 2 * i]
            ),
            0
        );
    }
    assert!(oracle.is_clean());
    println!(
        "measured: ~{:.1} KiB of reified ghost state after boot + 512 host faults + 512 fragmented shares",
        oracle.approx_ghost_bytes() as f64 / 1024.0
    );
    println!(
        "          (grows with mapping fragmentation and activity, as in the paper; their 18 MB\n\
         \x20          covers a full Android boot on tables three orders of magnitude larger)"
    );

    // -------------------------------------- E7/E8: bug detection matrix
    heading("E7/E8: bug detection (paper: 5 real pKVM bugs; synthetic bugs all found)");
    println!("{:<28} {:>8}  detection", "injected fault", "real bug");
    let mut missed = 0;
    for r in bugs::sweep() {
        let real = r
            .real_bug
            .map(|n| format!("#{n}"))
            .unwrap_or_else(|| "-".into());
        let det = match r.detection {
            Detection::Oracle => "oracle",
            Detection::ContentCheck => "content check",
            Detection::Missed => {
                missed += 1;
                "MISSED"
            }
        };
        println!("{:<28} {:>8}  {}", r.fault.name(), real, det);
    }
    println!("missed: {missed}");

    // --------------------------------------------- E9: specification size
    heading("E9: specification size (paper: impl ~11k LoC; spec ~14k = 2600 hypercall/trap + 1300 recording + 4500 ADTs + boilerplate)");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let count = |paths: &[&str]| -> usize {
        paths
            .iter()
            .map(|p| {
                let path = root.join(p);
                if path.is_dir() {
                    walk_loc(&path)
                } else {
                    file_loc(&path)
                }
            })
            .sum()
    };
    let rows = [
        (
            "hypervisor implementation (pkvm-hyp)",
            count(&["crates/pkvm/src"]),
        ),
        (
            "architecture substrate (pkvm-aarch64)",
            count(&["crates/aarch64/src"]),
        ),
        (
            "spec: hypercall/trap functions",
            count(&["crates/core/src/spec"]),
        ),
        (
            "spec: abstraction + recording",
            count(&[
                "crates/core/src/abstraction.rs",
                "crates/core/src/oracle.rs",
                "crates/core/src/calldata.rs",
            ]),
        ),
        (
            "spec: abstract datatypes",
            count(&[
                "crates/core/src/maplet.rs",
                "crates/core/src/mapping.rs",
                "crates/core/src/state.rs",
            ]),
        ),
        (
            "spec: checking/diffing boilerplate",
            count(&[
                "crates/core/src/check.rs",
                "crates/core/src/diff.rs",
                "crates/core/src/lib.rs",
            ]),
        ),
        (
            "test infrastructure (pkvm-harness)",
            count(&["crates/harness/src"]),
        ),
    ];
    for (name, loc) in rows {
        println!("{name:<42} {loc:>6} LoC (non-test)");
    }

    // ------------------------------------ E1/E2/E3: quick wall-clock cut
    heading("E1: boot overhead (paper: 3.2x; 1.49s -> 4.76s under QEMU)");
    let t = Instant::now();
    for _ in 0..20 {
        let _ = boot(false);
    }
    let bare = t.elapsed();
    let t = Instant::now();
    for _ in 0..20 {
        let _ = boot(true);
    }
    let checked = t.elapsed();
    println!(
        "measured: {:?} -> {:?} per boot = {:.2}x",
        bare / 20,
        checked / 20,
        checked.as_secs_f64() / bare.as_secs_f64()
    );

    heading("E2: handwritten-suite overhead (paper: 11.5x; 1.07s -> 12.3s)");
    let t = Instant::now();
    let _ = scenarios::run_all(false);
    let bare = t.elapsed();
    let t = Instant::now();
    let _ = scenarios::run_all(true);
    let checked = t.elapsed();
    println!(
        "measured: {:.3}s -> {:.3}s = {:.2}x",
        bare.as_secs_f64(),
        checked.as_secs_f64(),
        checked.as_secs_f64() / bare.as_secs_f64()
    );

    heading(
        "E3: random-tester throughput (paper: ~200,000 hypercalls/hour in QEMU on a Mac Mini M2)",
    );
    let proxy = Proxy::builder().boot();
    let mut tester = RandomTester::new(proxy, RandomCfg::builder().seed(99).build());
    let t = Instant::now();
    tester.run(20_000);
    let dt = t.elapsed();
    assert!(tester.proxy.all_clear());
    println!(
        "measured: {} hypercalls in {:.2}s = {:.0} hypercalls/hour (simulation, no QEMU)",
        tester.stats.calls,
        dt.as_secs_f64(),
        tester.stats.calls as f64 / dt.as_secs_f64() * 3600.0
    );
}

/// Non-test lines of one file: everything above the `#[cfg(test)]` marker.
fn file_loc(path: &Path) -> usize {
    let Ok(src) = std::fs::read_to_string(path) else {
        return 0;
    };
    src.lines()
        .take_while(|l| !l.contains("#[cfg(test)]"))
        .count()
}

fn walk_loc(dir: &Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                total += walk_loc(&p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                total += file_loc(&p);
            }
        }
    }
    total
}
