//! Minimal in-tree benchmark harness with a criterion-shaped API.
//!
//! The workspace builds hermetically (no crates.io), so the bench targets
//! run on this instead of criterion. It mirrors exactly the subset the
//! targets use — `benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, `Throughput::Elements`, `sample_size` — and
//! prints per-benchmark median/mean wall time plus derived throughput.
//!
//! Set `PKVM_BENCH_QUICK=1` for a smoke run (one short sample per bench,
//! as used by `ci.sh`); timings are then indicative only.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level driver handed to each registered bench function.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::var_os("PKVM_BENCH_QUICK").is_some_and(|v| v != "0"),
        }
    }
}

impl Criterion {
    /// Opens a named group; results print as `group/bench`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            crit: self,
            name: name.to_string(),
            sample_size: 0,
            throughput: None,
        }
    }

    /// Runs a bench outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.benchmark_group("").bench_function(name, f);
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (pages, steps, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; accepted for API parity, the
/// harness reruns setup per iteration either way (setup time excluded).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A parameterised benchmark name.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: &str, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Just the parameter.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Requests roughly `n` samples (clamped; quick mode runs one).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut f: F) {
        let samples = if self.crit.quick {
            1
        } else {
            self.sample_size.clamp(10, 100)
        };
        let budget = if self.crit.quick {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(300)
        };
        let mut b = Bencher {
            samples,
            budget,
            times: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        self.report(&id.into_bench_id(), &b);
    }

    /// Times `f` under `id`, passing `input` through (criterion parity).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (printing is incremental; this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        if b.times.is_empty() {
            println!("{full:<44} (no measurements)");
            return;
        }
        let mut ns: Vec<f64> = b.times.iter().map(|d| d.as_secs_f64() * 1e9).collect();
        ns.sort_by(f64::total_cmp);
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:>12}/s", si(n as f64 / (median * 1e-9))),
            Some(Throughput::Bytes(n)) => format!("  {:>11}B/s", si(n as f64 / (median * 1e-9))),
            None => String::new(),
        };
        println!(
            "{full:<44} median {:>10}  mean {:>10}  ({} samples x {} iters){rate}",
            fmt_ns(median),
            fmt_ns(mean),
            b.times.len(),
            b.iters_per_sample,
        );
    }
}

/// Accepts both `&str` and [`BenchmarkId`] names.
pub trait IntoBenchId {
    /// The rendered name.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.0
    }
}

/// The per-benchmark timing loop.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    times: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording per-iteration wall time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.run(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            t0.elapsed()
        });
    }

    /// Times `routine` on fresh input from `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                total += t0.elapsed();
            }
            total
        });
    }

    // Calibrates an iteration count against the time budget, then takes
    // `samples` timed samples of that many iterations each.
    fn run(&mut self, mut sample: impl FnMut(u64) -> Duration) {
        let once = sample(1); // warmup + calibration
        let per_sample = self.budget.as_secs_f64() / self.samples.max(1) as f64;
        let iters = (per_sample / once.as_secs_f64().max(1e-9)).clamp(1.0, 1e6) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.samples {
            self.times.push(sample(iters) / iters as u32);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} Gelem", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} Melem", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} Kelem", rate / 1e3)
    } else {
        format!("{rate:.1} elem")
    }
}

/// Registers bench functions under a group name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::minibench::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Emits `main` running the registered groups, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("t");
        let mut calls = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("t");
        g.bench_with_input(BenchmarkId::new("consume", 3), &3u64, |b, &n| {
            b.iter_batched(
                || vec![0u8; n as usize],
                |v| {
                    assert_eq!(v.len(), 3);
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("insert", 16).into_bench_id(), "insert/16");
        assert_eq!(BenchmarkId::from_parameter(512).into_bench_id(), "512");
    }
}
