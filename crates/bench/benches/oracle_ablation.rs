//! Ablation: what each piece of the oracle costs.
//!
//! The paper's design stacks three runtime checks — the per-trap ternary
//! spec check, the non-interference check at every lock acquisition, and
//! the separation-footprint check (§4.4). This bench measures a
//! share/unshare pair under: no oracle at all, the full oracle, and the
//! oracle with each §4.4 invariant disabled, quantifying the design
//! choices `DESIGN.md` calls out.

use pkvm_bench::minibench::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use pkvm_ghost::oracle::{Oracle, OracleOpts};
use pkvm_hyp::faults::FaultSet;
use pkvm_hyp::hooks::NoHooks;
use pkvm_hyp::hypercalls::{HVC_HOST_SHARE_HYP, HVC_HOST_UNSHARE_HYP};
use pkvm_hyp::machine::{Machine, MachineConfig};

fn pair(m: &Machine) {
    assert_eq!(m.hvc(0, HVC_HOST_SHARE_HYP, &[0x40100]), 0);
    assert_eq!(m.hvc(0, HVC_HOST_UNSHARE_HYP, &[0x40100]), 0);
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_share_unshare_pair");

    let bare = Machine::boot(
        MachineConfig::default(),
        Arc::new(NoHooks),
        Arc::new(FaultSet::none()),
    );
    g.bench_function("no_oracle", |b| b.iter(|| pair(&bare)));

    for (name, opts) in [
        ("full_oracle", OracleOpts::default()),
        (
            "no_noninterference",
            OracleOpts::builder().check_noninterference(false).build(),
        ),
        (
            "no_separation",
            OracleOpts::builder().check_separation(false).build(),
        ),
        (
            "spec_check_only",
            OracleOpts::builder()
                .check_noninterference(false)
                .check_separation(false)
                .build(),
        ),
        (
            "incremental_abstraction",
            OracleOpts::builder().incremental_abstraction(true).build(),
        ),
        (
            "shadow_validation",
            OracleOpts::builder().shadow_validation(true).build(),
        ),
    ] {
        let config = MachineConfig::default();
        let oracle = Oracle::new(&config, opts);
        let m = Machine::boot(config, oracle.clone(), Arc::new(FaultSet::none()));
        g.bench_function(name, |b| b.iter(|| pair(&m)));
        assert!(oracle.is_clean());
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
