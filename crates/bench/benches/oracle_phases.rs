//! F6: the instrumentation-and-checking timeline, phase by phase.
//!
//! Fig. 6 of the paper decomposes a checked hypercall into: recording the
//! pre/post abstractions at the lock points ((1)-(6)), computing the
//! expected post-state with the spec function (7), and comparing (8).
//! This bench times each phase in isolation for a `host_share_hyp`, on a
//! machine with a realistically-populated host stage 2.

use pkvm_bench::minibench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pkvm_aarch64::esr::Esr;
use pkvm_aarch64::sysreg::GprFile;
use pkvm_aarch64::walk::Access;
use pkvm_bench::boot;
use pkvm_ghost::calldata::GhostCallData;
use pkvm_ghost::{abstract_host, abstract_hyp, check_trap, compute_post, GhostState, SpecVerdict};
use pkvm_hyp::hypercalls::{HVC_HOST_SHARE_HYP, HVC_HOST_UNSHARE_HYP};

fn bench_phases(c: &mut Criterion) {
    let (machine, oracle) = boot(true);
    let oracle = oracle.expect("oracle installed");
    // Populate the host stage 2 with mapped-on-demand state and some
    // shares so the abstractions have realistic size.
    for i in 0..16u64 {
        machine
            .host_access(0, 0x4100_0000 + i * 0x20_0000, Access::Read)
            .unwrap();
        assert_eq!(machine.hvc(0, HVC_HOST_SHARE_HYP, &[0x40200 + i]), 0);
    }
    assert!(oracle.is_clean());
    let host_root = machine.state.host_pgt.lock().root;
    let hyp_root = machine.state.hyp_pgt.lock().root;

    let mut g = c.benchmark_group("F6_phases");

    // Phase (1)-(6): recording = computing component abstractions.
    g.bench_function("record_abstractions", |b| {
        b.iter(|| {
            let mut anomalies = Vec::new();
            let host = abstract_host(&machine.mem, host_root, &oracle.globals, &mut anomalies);
            let hyp = abstract_hyp(&machine.mem, hyp_root, &mut anomalies);
            assert!(anomalies.is_empty());
            black_box((host, hyp))
        })
    });

    // Build a pre-state + call data for a share of a fresh page.
    let make_pre = || {
        let mut anomalies = Vec::new();
        let mut pre = GhostState::blank(&oracle.globals);
        pre.host = Some(abstract_host(
            &machine.mem,
            host_root,
            &oracle.globals,
            &mut anomalies,
        ));
        pre.pkvm = Some(abstract_hyp(&machine.mem, hyp_root, &mut anomalies));
        let mut regs = GprFile::default();
        regs.set(0, HVC_HOST_SHARE_HYP);
        regs.set(1, 0x40900);
        pre.locals.entry(0).or_default().regs = regs;
        let mut call = GhostCallData::new(0, Esr::hvc64(0), None, regs);
        call.regs_post.set(1, 0);
        (pre, call)
    };
    let (pre, call) = make_pre();

    // Phase (7): computing the expected post-state.
    g.bench_function("compute_spec_post", |b| {
        b.iter(|| {
            let mut post = GhostState::blank(&oracle.globals);
            let verdict = compute_post(&pre, &call, &mut post);
            assert_eq!(verdict, SpecVerdict::Checked);
            black_box(post)
        })
    });

    // Phase (8): the ternary comparison (computed == recorded here).
    let mut computed = GhostState::blank(&oracle.globals);
    assert_eq!(
        compute_post(&pre, &call, &mut computed),
        SpecVerdict::Checked
    );
    let recorded = computed.clone();
    g.bench_function("ternary_compare", |b| {
        b.iter(|| {
            let outcome = check_trap("host_share_hyp", &pre, &recorded, &computed);
            assert!(outcome.violations.is_empty());
            black_box(outcome)
        })
    });

    // The whole pipeline, as driven by a real trap.
    g.bench_function("full_checked_trap", |b| {
        b.iter(|| {
            assert_eq!(machine.hvc(0, HVC_HOST_SHARE_HYP, &[0x40880]), 0);
            assert_eq!(machine.hvc(0, HVC_HOST_UNSHARE_HYP, &[0x40880]), 0);
        })
    });
    assert!(oracle.is_clean());
    g.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
