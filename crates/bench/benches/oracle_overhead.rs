//! E1 and E2: the runtime overhead of the ghost specification.
//!
//! The paper reports (§6 Performance, on a Xeon Gold 6240 under QEMU):
//! boot 3.2x slower with the spec (1.49 s -> 4.76 s) and the handwritten
//! test suite 11.5x slower (1.07 s -> 12.3 s). These benches measure the
//! same two ratios in the simulation — boot with/without the oracle, the
//! 41-scenario suite with/without the oracle — plus the per-hypercall
//! overhead that drives them.

use pkvm_bench::minibench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pkvm_bench::boot;
use pkvm_harness::scenarios;
use pkvm_hyp::hypercalls::{HVC_HOST_SHARE_HYP, HVC_HOST_UNSHARE_HYP};

fn bench_boot(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1_boot");
    g.sample_size(20);
    g.bench_function("without_oracle", |b| b.iter(|| black_box(boot(false))));
    g.bench_function("with_oracle", |b| b.iter(|| black_box(boot(true))));
    g.finish();
}

fn bench_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_handwritten_suite");
    g.sample_size(10);
    g.bench_function("without_oracle", |b| {
        b.iter(|| black_box(scenarios::run_all(false)))
    });
    g.bench_function("with_oracle", |b| {
        b.iter(|| black_box(scenarios::run_all(true)))
    });
    g.finish();
}

fn bench_hypercall(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_share_unshare_pair");
    let (bare, _) = boot(false);
    g.bench_function("without_oracle", |b| {
        b.iter(|| {
            assert_eq!(bare.hvc(0, HVC_HOST_SHARE_HYP, &[0x40100]), 0);
            assert_eq!(bare.hvc(0, HVC_HOST_UNSHARE_HYP, &[0x40100]), 0);
        })
    });
    let (checked, oracle) = boot(true);
    g.bench_function("with_oracle", |b| {
        b.iter(|| {
            assert_eq!(checked.hvc(0, HVC_HOST_SHARE_HYP, &[0x40100]), 0);
            assert_eq!(checked.hvc(0, HVC_HOST_UNSHARE_HYP, &[0x40100]), 0);
        })
    });
    assert!(oracle.unwrap().is_clean());
    g.finish();
}

criterion_group!(benches, bench_boot, bench_suite, bench_hypercall);
criterion_main!(benches);
