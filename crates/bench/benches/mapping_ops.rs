//! A1 (ablation): the coalescing finite-range-map ADT.
//!
//! The paper implements abstract mappings as "ordered linked lists of
//! maximally coalesced maplets" and calls the structure "sufficiently
//! performant" (§3.1). This bench quantifies that design choice: the
//! costs of insertion, lookup, removal, equality and diff at increasing
//! map sizes, for both fragmented (alternating) and coalescible
//! (contiguous) workloads.

use pkvm_bench::minibench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::attrs::{MemType, Perms};
use pkvm_ghost::maplet::{AbsAttrs, Maplet, MapletTarget};
use pkvm_ghost::Mapping;
use pkvm_hyp::owner::PageState;

fn maplet(page: u64, oa_page: u64) -> Maplet {
    Maplet {
        ia: page * PAGE_SIZE,
        nr_pages: 1,
        target: MapletTarget::Mapped {
            oa: oa_page * PAGE_SIZE,
            attrs: AbsAttrs {
                perms: Perms::RWX,
                memtype: MemType::Normal,
                state: Some(PageState::Owned),
            },
        },
    }
}

/// A maximally-fragmented mapping: alternating pages, nothing coalesces.
fn fragmented(n: u64) -> Mapping {
    let mut m = Mapping::new();
    for i in 0..n {
        m.insert(maplet(i * 2, i * 2));
    }
    m
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("A1_insert");
    for n in [16u64, 128, 1024] {
        g.bench_with_input(BenchmarkId::new("fragmented", n), &n, |b, &n| {
            b.iter(|| black_box(fragmented(n)))
        });
        g.bench_with_input(BenchmarkId::new("contiguous", n), &n, |b, &n| {
            b.iter(|| {
                // Identity-contiguous inserts coalesce to one maplet.
                let mut m = Mapping::new();
                for i in 0..n {
                    m.insert(maplet(i, i));
                }
                assert_eq!(m.len(), 1);
                black_box(m)
            })
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("A1_lookup");
    for n in [16u64, 128, 1024] {
        let m = fragmented(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut hits = 0;
                for i in 0..n * 2 {
                    if m.lookup(i * PAGE_SIZE).is_some() {
                        hits += 1;
                    }
                }
                assert_eq!(hits, n);
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn bench_remove(c: &mut Criterion) {
    let mut g = c.benchmark_group("A1_remove");
    for n in [16u64, 128, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || fragmented(n),
                |mut m| {
                    for i in 0..n {
                        m.remove(i * 2 * PAGE_SIZE, 1);
                    }
                    assert!(m.is_empty());
                    black_box(m)
                },
                pkvm_bench::minibench::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_equality_and_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("A1_equality_diff");
    for n in [128u64, 1024] {
        let a = fragmented(n);
        let mut b2 = a.clone();
        b2.insert(maplet(5, 999)); // one disagreement
        g.bench_with_input(BenchmarkId::new("equality", n), &n, |b, _| {
            b.iter(|| black_box(a == a.clone()))
        });
        g.bench_with_input(BenchmarkId::new("diff", n), &n, |b, _| {
            b.iter(|| {
                let d = a.diff(&b2);
                assert_eq!(d.len(), 1);
                black_box(d)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_lookup,
    bench_remove,
    bench_equality_and_diff
);
criterion_main!(benches);
