//! E3: random-tester throughput.
//!
//! The paper ran its random tester at about 200,000 hypercalls per hour
//! in QEMU on a Mac Mini M2 (§5). This bench measures steps/second of
//! the model-guided tester with and without the oracle installed; the
//! report binary converts the with-oracle figure to hypercalls/hour for
//! the EXPERIMENTS.md comparison.

use pkvm_bench::minibench::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pkvm_ghost::oracle::OracleOpts;
use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};

const STEPS: u64 = 1000;

fn run(with_oracle: bool, seed: u64) -> u64 {
    run_opts(with_oracle, OracleOpts::default(), seed)
}

fn run_opts(with_oracle: bool, opts: OracleOpts, seed: u64) -> u64 {
    let proxy = Proxy::builder()
        .with_oracle(with_oracle)
        .oracle_opts(opts)
        .boot();
    let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(seed).build());
    t.run(STEPS);
    assert!(t.proxy.violations().is_empty());
    t.stats.calls
}

fn bench_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_random_tester");
    g.sample_size(10);
    g.throughput(Throughput::Elements(STEPS));
    let mut seed = 0u64;
    g.bench_function("with_oracle", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run(true, seed))
        })
    });
    g.bench_function("without_oracle", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run(false, seed))
        })
    });
    g.bench_function("with_incremental_oracle", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_opts(
                true,
                OracleOpts::builder().incremental_abstraction(true).build(),
                seed,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_random);
criterion_main!(benches);
