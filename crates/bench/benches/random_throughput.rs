//! E3: random-tester throughput.
//!
//! The paper ran its random tester at about 200,000 hypercalls per hour
//! in QEMU on a Mac Mini M2 (§5). This bench measures steps/second of
//! the model-guided tester with and without the oracle installed; the
//! report binary converts the with-oracle figure to hypercalls/hour for
//! the EXPERIMENTS.md comparison.

//! The multi-worker rows measure the parallel campaign at a fixed *total*
//! step budget split across workers, so elements/second compare directly:
//! the 4-worker aggregate over the 1-worker figure is the scaling factor.

use pkvm_bench::minibench::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pkvm_ghost::oracle::OracleOpts;
use pkvm_harness::campaign::{run as run_campaign, CampaignCfg};
use pkvm_harness::proxy::Proxy;
use pkvm_harness::random::{RandomCfg, RandomTester};

const STEPS: u64 = 1000;

/// Total steps of every campaign row, split evenly across its workers.
const CAMPAIGN_STEPS: u64 = 4000;

fn campaign(workers: usize, with_oracle: bool, record: bool, seed: u64) -> u64 {
    let report = run_campaign(
        &CampaignCfg::builder()
            .workers(workers)
            .steps_per_worker(CAMPAIGN_STEPS / workers as u64)
            .base_seed(seed)
            .with_oracle(with_oracle)
            .record_trace(record)
            .build(),
    );
    assert!(report.is_clean(), "{:?}", report.violations);
    report.total_calls()
}

fn run(with_oracle: bool, seed: u64) -> u64 {
    run_opts(with_oracle, OracleOpts::default(), seed)
}

fn run_opts(with_oracle: bool, opts: OracleOpts, seed: u64) -> u64 {
    let proxy = Proxy::builder()
        .with_oracle(with_oracle)
        .oracle_opts(opts)
        .boot();
    let mut t = RandomTester::new(proxy, RandomCfg::builder().seed(seed).build());
    t.run(STEPS);
    assert!(t.proxy.violations().is_empty());
    t.stats.calls
}

fn bench_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_random_tester");
    g.sample_size(10);
    g.throughput(Throughput::Elements(STEPS));
    let mut seed = 0u64;
    g.bench_function("with_oracle", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run(true, seed))
        })
    });
    g.bench_function("without_oracle", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run(false, seed))
        })
    });
    g.bench_function("with_incremental_oracle", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_opts(
                true,
                OracleOpts::builder().incremental_abstraction(true).build(),
                seed,
            ))
        })
    });
    g.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_campaign");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CAMPAIGN_STEPS));
    let mut seed = 0x9e37_79b9u64;
    for workers in [1usize, 4] {
        g.bench_function(format!("{workers}_workers_with_oracle"), |b| {
            b.iter(|| {
                seed += 1;
                black_box(campaign(workers, true, false, seed))
            })
        });
        g.bench_function(format!("{workers}_workers_without_oracle"), |b| {
            b.iter(|| {
                seed += 1;
                black_box(campaign(workers, false, false, seed))
            })
        });
    }
    // Event-stream recording overhead: the same 4-worker oracle campaign
    // with the full timeline retained. Compare against
    // `4_workers_with_oracle` — recording must stay within ~10%.
    g.bench_function("4_workers_with_oracle_recorded", |b| {
        b.iter(|| {
            seed += 1;
            black_box(campaign(4, true, true, seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_random, bench_campaign);
criterion_main!(benches);
