//! E3: random-tester throughput.
//!
//! The paper ran its random tester at about 200,000 hypercalls per hour
//! in QEMU on a Mac Mini M2 (§5). This bench measures steps/second of
//! the model-guided tester with and without the oracle installed; the
//! report binary converts the with-oracle figure to hypercalls/hour for
//! the EXPERIMENTS.md comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pkvm_harness::proxy::{Proxy, ProxyOpts};
use pkvm_harness::random::{RandomCfg, RandomTester};

const STEPS: u64 = 1000;

fn run(with_oracle: bool, seed: u64) -> u64 {
    let proxy = Proxy::boot(ProxyOpts {
        with_oracle,
        ..Default::default()
    });
    let mut t = RandomTester::new(
        proxy,
        RandomCfg {
            seed,
            ..Default::default()
        },
    );
    t.run(STEPS);
    assert!(t.proxy.violations().is_empty());
    t.stats.calls
}

fn bench_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_random_tester");
    g.sample_size(10);
    g.throughput(Throughput::Elements(STEPS));
    let mut seed = 0u64;
    g.bench_function("with_oracle", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run(true, seed))
        })
    });
    g.bench_function("without_oracle", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run(false, seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_random);
criterion_main!(benches);
