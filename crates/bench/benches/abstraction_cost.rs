//! F2: the cost of the abstraction function (`interpret_pgtable`).
//!
//! The ghost interpretation is a complete table traversal, unlike the
//! range-limited hardware and software walks (§3.2); this is the dominant
//! per-lock-event cost and, per the paper, what dominates the spec's
//! memory and time overhead. We sweep table population (page-grain
//! mappings) and contrast with block-mapped tables of the same span,
//! where coalescing makes the abstraction cheap.

use pkvm_bench::minibench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pkvm_aarch64::addr::PhysAddr;
use pkvm_aarch64::attrs::Stage;
use pkvm_bench::{build_block_table, build_page_table};
use pkvm_ghost::{interpret_pgtable, interpret_pgtable_with_meta, AbsCache, CacheKey};

fn bench_interpret_pages(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_interpret_page_grain");
    for nr_pages in [64u64, 512, 4096, 16384] {
        let (mem, root) = build_page_table(nr_pages);
        g.throughput(Throughput::Elements(nr_pages));
        g.bench_with_input(BenchmarkId::from_parameter(nr_pages), &nr_pages, |b, _| {
            b.iter(|| {
                let mut anomalies = Vec::new();
                let abs = interpret_pgtable(&mem, Stage::Stage2, root, &mut anomalies);
                assert_eq!(abs.mapping.nr_pages(), nr_pages);
                black_box(abs)
            })
        });
    }
    g.finish();
}

fn bench_interpret_blocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_interpret_block_grain");
    for nr_pages in [512u64, 4096, 65536] {
        let (mem, root) = build_block_table(nr_pages);
        g.throughput(Throughput::Elements(nr_pages));
        g.bench_with_input(BenchmarkId::from_parameter(nr_pages), &nr_pages, |b, _| {
            b.iter(|| {
                let mut anomalies = Vec::new();
                let abs = interpret_pgtable(&mem, Stage::Stage2, root, &mut anomalies);
                assert_eq!(abs.mapping.nr_pages(), nr_pages);
                black_box(abs)
            })
        });
    }
    g.finish();
}

/// The incremental-abstraction headline: after a small-delta critical
/// section (one PTE written in a populated table), re-abstraction via the
/// cache replays one subtree instead of re-walking everything. Contrast
/// `full/N` with `incremental/N` at equal population.
fn bench_small_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_small_delta_reabstraction");
    for nr_pages in [4096u64, 16384] {
        let (mem, root) = build_page_table(nr_pages);
        mem.write_log().set_enabled(true);

        // Locate one leaf-level table node and its first descriptor; the
        // per-iteration "critical section" rewrites that descriptor (same
        // value — the write alone dirties the page).
        let mut anomalies = Vec::new();
        let (_, meta) = interpret_pgtable_with_meta(&mem, Stage::Stage2, root, &mut anomalies);
        assert!(anomalies.is_empty());
        let (&leaf_pfn, _) = meta
            .iter()
            .find(|(_, &(level, _))| level == 3)
            .expect("page-grain table has leaf tables");
        let leaf = PhysAddr::from_pfn(leaf_pfn);
        let pte = mem.read_pte(leaf, 0).unwrap();

        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("full", nr_pages), &nr_pages, |b, _| {
            b.iter(|| {
                mem.write_pte(leaf, 0, pte).unwrap();
                let mut a = Vec::new();
                black_box(interpret_pgtable(&mem, Stage::Stage2, root, &mut a))
            })
        });

        let mut cache = AbsCache::new();
        let mut a = Vec::new();
        cache.interp(&mem, Stage::Stage2, root, CacheKey::Host, &mut a); // warm
        g.bench_with_input(
            BenchmarkId::new("incremental", nr_pages),
            &nr_pages,
            |b, _| {
                b.iter(|| {
                    mem.write_pte(leaf, 0, pte).unwrap();
                    let mut a = Vec::new();
                    black_box(cache.interp(&mem, Stage::Stage2, root, CacheKey::Host, &mut a))
                })
            },
        );
        assert!(
            cache.stats.incremental > 0 && cache.stats.full_walks() <= 1,
            "cache did not serve incrementally: {:?}",
            cache.stats
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_interpret_pages,
    bench_interpret_blocks,
    bench_small_delta
);
criterion_main!(benches);
