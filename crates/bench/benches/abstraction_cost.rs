//! F2: the cost of the abstraction function (`interpret_pgtable`).
//!
//! The ghost interpretation is a complete table traversal, unlike the
//! range-limited hardware and software walks (§3.2); this is the dominant
//! per-lock-event cost and, per the paper, what dominates the spec's
//! memory and time overhead. We sweep table population (page-grain
//! mappings) and contrast with block-mapped tables of the same span,
//! where coalescing makes the abstraction cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pkvm_aarch64::attrs::Stage;
use pkvm_bench::{build_block_table, build_page_table};
use pkvm_ghost::interpret_pgtable;

fn bench_interpret_pages(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_interpret_page_grain");
    for nr_pages in [64u64, 512, 4096, 16384] {
        let (mem, root) = build_page_table(nr_pages);
        g.throughput(Throughput::Elements(nr_pages));
        g.bench_with_input(BenchmarkId::from_parameter(nr_pages), &nr_pages, |b, _| {
            b.iter(|| {
                let mut anomalies = Vec::new();
                let abs = interpret_pgtable(&mem, Stage::Stage2, root, &mut anomalies);
                assert_eq!(abs.mapping.nr_pages(), nr_pages);
                black_box(abs)
            })
        });
    }
    g.finish();
}

fn bench_interpret_blocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_interpret_block_grain");
    for nr_pages in [512u64, 4096, 65536] {
        let (mem, root) = build_block_table(nr_pages);
        g.throughput(Throughput::Elements(nr_pages));
        g.bench_with_input(BenchmarkId::from_parameter(nr_pages), &nr_pages, |b, _| {
            b.iter(|| {
                let mut anomalies = Vec::new();
                let abs = interpret_pgtable(&mem, Stage::Stage2, root, &mut anomalies);
                assert_eq!(abs.mapping.nr_pages(), nr_pages);
                black_box(abs)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_interpret_pages, bench_interpret_blocks);
criterion_main!(benches);
