//! The stable, one-import surface of the ghost specification.
//!
//! `use pkvm_ghost::prelude::*;` brings in everything a typical oracle
//! user touches — building an [`Oracle`], reading its [`TrapRecord`]
//! trace and [`Violation`]s, and inspecting [`GhostState`] — without
//! reaching into individual modules. Additions here are additive; code
//! importing the prelude keeps compiling as the crate grows.

pub use crate::abscache::CacheStats;
pub use crate::check::Violation;
pub use crate::checker::{CheckMode, Checker, StatsSnapshot, Verdict};
pub use crate::oracle::{
    Oracle, OracleBuilder, OracleOpts, OracleOptsBuilder, ResilienceSnapshot, TrapOutcome,
    TrapRecord,
};
pub use crate::spec::SpecVerdict;
pub use crate::state::GhostState;
