//! The `Checker` API: where, and when, the oracle's checks run.
//!
//! The oracle's work splits into two halves. The *front half* runs on the
//! mutator thread, inside the [`GhostHooks`](pkvm_hyp::hooks::GhostHooks)
//! callbacks: it emits the hook's event into the stream, computes the
//! component abstraction **while the component's lock is held** (the one
//! thing that cannot be deferred — the paper's recording discipline), and
//! packages both into a [`CheckMsg`]. The *back half* applies the message:
//! it maintains the shared ghost copy and the per-trap pre/post records,
//! runs the non-interference and separation checks, and at trap exit
//! computes the spec and compares (`Oracle::apply_msg`).
//!
//! [`CheckMode`] selects where the back half runs:
//!
//! - [`CheckMode::Inline`]: the hook applies the message synchronously
//!   before returning — bit-identical to the classic fully synchronous
//!   oracle (same verdicts, same violation sequence ids).
//! - [`CheckMode::Pipelined`]: messages flow through a bounded channel to
//!   a checker thread that applies them behind the execution frontier.
//!   The mutator keeps running; it blocks only when the channel is full
//!   (backpressure — memory stays bounded by `channel_cap`), at an
//!   explicit [`Checker::barrier`], or at [`Verdict::wait`].
//!
//! The checker thread holds only a [`Weak`] reference to the oracle and
//! the channel's receiving end, so dropping the last external handle tears
//! the pipeline down: the oracle (and with it the sender) is dropped, the
//! channel disconnects, and the thread exits. Messages still in flight at
//! that point are discarded — call [`Verdict::wait`] before dropping the
//! oracle if the run's verdict matters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Weak};

use pkvm_aarch64::sysreg::GprFile;
use pkvm_hyp::hooks::Component;

use crate::calldata::GhostCallData;
use crate::check::Violation;
use crate::oracle::{ComponentValue, Oracle, ResilienceSnapshot, TrapRecord};
use crate::state::GhostCpu;

/// Where the oracle's back half (ghost-copy maintenance and spec checks)
/// runs, relative to the hypervisor code that triggered it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckMode {
    /// Check synchronously inside each hook (the classic oracle). The
    /// hypervisor thread pays the full check cost per event, but every
    /// accessor is up to date the moment a hook returns. Required when
    /// the caller inspects oracle state *between* individual operations
    /// (e.g. the quickstart's per-trap diff).
    #[default]
    Inline,
    /// Check on a dedicated thread behind the execution frontier. Hooks
    /// only abstract-and-forward; the mutator synchronises with the
    /// checker at [`Verdict::wait`]/[`Checker::barrier`] or when the
    /// bounded channel exerts backpressure.
    Pipelined {
        /// Requested checker threads. The check core is order-dependent
        /// (one shared ghost copy, version stamps, deferred seeding), so
        /// the current implementation consumes with one ordered worker
        /// regardless; the knob is accepted for forward compatibility.
        workers: usize,
        /// Bound on in-flight messages. A stalled checker blocks the
        /// mutator once this many messages are queued, so memory is
        /// bounded by the cap instead of growing with the run. Messages
        /// travel in per-trap batches, so the bound holds at batch
        /// granularity (the cap may be exceeded by at most one batch).
        channel_cap: usize,
    },
}

impl CheckMode {
    /// The pipelined mode with default sizing (one worker, 1024-message
    /// channel).
    pub fn pipelined() -> CheckMode {
        CheckMode::Pipelined {
            workers: 1,
            channel_cap: 1024,
        }
    }

    /// `true` for [`CheckMode::Pipelined`].
    pub fn is_pipelined(&self) -> bool {
        matches!(self, CheckMode::Pipelined { .. })
    }
}

/// A completion gate carried by [`CheckMsg::Barrier`]: the poster blocks
/// on the condvar; the checker flips the flag and notifies once every
/// earlier message has been applied.
pub(crate) type BarrierGate = Arc<(StdMutex<bool>, Condvar)>;

/// One unit of back-half work: everything the check core needs that had
/// to be captured on the mutator thread (lock-held abstractions, register
/// files, read-once values), keyed by the primary event's stream seq.
///
/// Variant sizes are deliberately unequal: messages are moved exactly
/// once into a batch `Vec` and consumed in place, so boxing the big
/// trap payloads would trade one memcpy for a per-trap allocation on
/// the hot path for no benefit.
#[allow(clippy::large_enum_variant)]
pub(crate) enum CheckMsg {
    /// `trap_enter` ran: reset the per-CPU record.
    TrapEnter {
        cpu: usize,
        /// Stream seq of the `TrapEnter` event (the trap's identity).
        seq: u64,
        call: GhostCallData,
        cpu_state: GhostCpu,
    },
    /// `trap_exit` ran: finish the recording and run the ternary check.
    TrapExit {
        cpu: usize,
        trap: Option<u64>,
        name: String,
        cpu_state: GhostCpu,
        regs_post: GprFile,
        /// The per-trap budget ran out mid-trap: skip the check.
        degraded: bool,
    },
    /// A lock acquisition, with the abstraction computed under the lock.
    LockAcquired {
        cpu: usize,
        trap: Option<u64>,
        comp: Component,
        value: ComponentValue,
        /// Abstraction anomalies / shadow divergences collected while
        /// abstracting (reported by the back half, in order).
        reports: Vec<Violation>,
        check_ni: bool,
    },
    /// A lock release, with the abstraction computed under the lock.
    LockReleasing {
        cpu: usize,
        trap: Option<u64>,
        comp: Component,
        value: ComponentValue,
        reports: Vec<Violation>,
    },
    /// A degraded lock event (quarantine or budget): evict the component
    /// from the shared copy instead of recording anything.
    Evict {
        cpu: usize,
        trap: Option<u64>,
        comp: Component,
        /// Quarantine eviction also marks the component interleaved for
        /// the running trap; budget eviction does not (the whole trap's
        /// check is already being skipped).
        quarantine: bool,
    },
    /// A `READ_ONCE` value for the running trap's call data.
    ReadOnce {
        cpu: usize,
        tag: &'static str,
        value: u64,
    },
    /// Separation-footprint tracking.
    TablePageAlloc {
        cpu: usize,
        trap: Option<u64>,
        comp: Component,
        pfn: u64,
    },
    /// Separation-footprint tracking.
    TablePageFree { comp: Component, pfn: u64 },
    /// A live mapping was unmapped or tightened (the "break" of
    /// break-before-make). `seq` is the downgrade event's stream seq —
    /// the anchor a later [`Violation::BreakBeforeMake`] carries.
    PteDowngrade {
        cpu: usize,
        seq: u64,
        vmid: u16,
        ia: u64,
        nr: u64,
    },
    /// A TLB invalidation was issued; clears matching pending breaks
    /// (broadcast only — a local TLBI cannot retire a break other CPUs
    /// may still hold stale).
    Tlbi {
        cpu: usize,
        vmid: u16,
        ia: u64,
        nr: u64,
        broadcast: bool,
    },
    /// A barrier completing outstanding TLBIs on this CPU.
    Dsb { cpu: usize },
    /// A page range crossed an ownership-transfer edge; `seq` is the
    /// transfer event's stream seq (the anchor a protocol violation
    /// carries).
    Transfer {
        cpu: usize,
        trap: Option<u64>,
        seq: u64,
        edge: pkvm_hyp::hooks::TransferEdge,
        pfn: u64,
        nr: u64,
        dirty: bool,
    },
    /// A firmware region was donated (`vm_load_firmware` succeeded).
    FirmwareDonate {
        handle: u32,
        uniq: u64,
        pfn: u64,
        nr: u64,
    },
    /// The host's stage 2 regained a page range; `seq` is the regain
    /// event's stream seq (the anchor a firmware-protection violation
    /// carries).
    HostRegain {
        cpu: usize,
        trap: Option<u64>,
        seq: u64,
        pfn: u64,
        nr: u64,
    },
    /// Violations produced on the mutator side (hypervisor panics,
    /// contained front-half panics). Routed through the pipeline so every
    /// report lands in checker order — the derived sequence numbering
    /// stays identical across check modes.
    Report {
        cpu: usize,
        trap: Option<u64>,
        violations: Vec<Violation>,
    },
    /// Sync point: signal the gate once all earlier messages are applied.
    Barrier(BarrierGate),
}

/// The sending half of the pipelined checker, owned by the oracle.
///
/// Messages are *batched*: they accumulate in a buffer and go to the
/// channel `flush_max` at a time (or earlier, at a barrier). A trap
/// emits a handful of messages, and paying the channel's send/wakeup
/// synchronisation once per dozens of messages instead of once per
/// message is what keeps the pipelined mode's per-event overhead low.
/// Batching never reorders: batches preserve send order and the checker
/// applies them in arrival order, so the derived sequence numbering is
/// untouched.
pub(crate) struct Pipeline {
    tx: SyncSender<Vec<CheckMsg>>,
    /// Messages awaiting the next flush (not yet counted as sent).
    buf: StdMutex<Vec<CheckMsg>>,
    /// Flush the buffer once it holds this many messages, even mid-trap,
    /// so `channel_cap`'s memory bound holds at batch granularity.
    flush_max: usize,
    /// Messages handed to the channel (blocks counting as sent once the
    /// send returns).
    sent: AtomicU64,
    /// Messages fully applied by the checker thread.
    applied: AtomicU64,
}

impl Pipeline {
    pub(crate) fn new(tx: SyncSender<Vec<CheckMsg>>, flush_max: usize) -> Pipeline {
        Pipeline {
            tx,
            buf: StdMutex::new(Vec::new()),
            flush_max: flush_max.max(1),
            sent: AtomicU64::new(0),
            applied: AtomicU64::new(0),
        }
    }

    /// Queues one message. A full buffer flushes the batch to the
    /// channel; the flush blocks while the channel is at capacity (the
    /// backpressure bound). Messages buffered below the threshold ride
    /// with the next flush or barrier — the checker lags the execution
    /// frontier by design, and [`Verdict::wait`]/[`Checker::barrier`]
    /// are the sync points. A flush after the checker thread died
    /// (shutdown race) is dropped silently.
    pub(crate) fn send(&self, msg: CheckMsg) {
        let batch = {
            let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
            buf.push(msg);
            if buf.len() < self.flush_max {
                return;
            }
            std::mem::take(&mut *buf)
        };
        self.flush(batch);
    }

    fn flush(&self, batch: Vec<CheckMsg>) {
        let n = batch.len() as u64;
        if n > 0 && self.tx.send(batch).is_ok() {
            self.sent.fetch_add(n, Ordering::Release);
        }
    }

    pub(crate) fn note_applied(&self) {
        self.applied.fetch_add(1, Ordering::Release);
    }

    /// (sent, applied) message counts: the execution frontier vs the
    /// check frontier.
    pub(crate) fn frontier(&self) -> (u64, u64) {
        (
            self.sent.load(Ordering::Acquire),
            self.applied.load(Ordering::Acquire),
        )
    }

    /// Posts a barrier and blocks until the checker signals it. The
    /// barrier rides in the same batch as any buffered messages, so
    /// everything emitted before it is applied before the gate opens.
    pub(crate) fn barrier(&self) {
        let gate: BarrierGate = Arc::new((StdMutex::new(false), Condvar::new()));
        let mut batch = {
            let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *buf)
        };
        batch.push(CheckMsg::Barrier(gate.clone()));
        let n = batch.len() as u64;
        if self.tx.send(batch).is_err() {
            // Checker already gone (oracle being torn down): every earlier
            // message has either been applied or discarded; nothing to
            // wait for.
            return;
        }
        self.sent.fetch_add(n, Ordering::Release);
        let (lock, cvar) = &*gate;
        let mut done = lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = cvar.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The checker thread's main loop: drain the channel, applying messages
/// in arrival order. Holds only a `Weak` oracle so the pipeline cannot
/// keep the oracle alive; once the last strong reference drops, the
/// sender disconnects and the loop exits.
pub(crate) fn checker_loop(oracle: Weak<Oracle>, rx: Receiver<Vec<CheckMsg>>) {
    while let Ok(batch) = rx.recv() {
        let Some(o) = oracle.upgrade() else { break };
        for msg in batch {
            o.apply_counted(msg);
        }
        // Drain whatever queued while we worked before re-upgrading.
        while let Ok(next) = rx.try_recv() {
            for msg in next {
                o.apply_counted(msg);
            }
        }
    }
}

/// A handle over a running oracle's checking machinery: mode inspection
/// and explicit synchronisation. Obtain via `Oracle::checker`.
#[derive(Clone)]
pub struct Checker {
    oracle: Arc<Oracle>,
}

impl Checker {
    pub(crate) fn new(oracle: Arc<Oracle>) -> Checker {
        Checker { oracle }
    }

    /// The mode this oracle checks in.
    pub fn mode(&self) -> CheckMode {
        self.oracle.check_mode()
    }

    /// Blocks until every event emitted so far has been checked. A no-op
    /// in [`CheckMode::Inline`] (there is never a lag).
    pub fn barrier(&self) {
        self.oracle.barrier();
    }

    /// (emitted, checked) message counts — the distance between the
    /// execution frontier and the check frontier. `(0, 0)` in inline
    /// mode, where the two frontiers coincide by construction.
    pub fn frontier(&self) -> (u64, u64) {
        self.oracle.frontier()
    }

    /// Messages currently queued between the two frontiers.
    pub fn in_flight(&self) -> u64 {
        let (sent, applied) = self.frontier();
        sent.saturating_sub(applied)
    }
}

/// A plain-value snapshot of the oracle's counters, taken at one instant.
/// The replacement for scraping `Oracle`'s atomic `stats` field directly:
/// a snapshot through [`Verdict::stats`] (after [`Verdict::wait`]) is
/// coherent in both check modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StatsSnapshot {
    /// Traps whose spec was computed and checked.
    pub traps_checked: u64,
    /// Traps skipped under the loose specification.
    pub traps_unchecked: u64,
    /// Component abstractions computed (lock events).
    pub abstractions: u64,
    /// Individual `READ_ONCE` values recorded.
    pub read_onces: u64,
    /// Per-component checks skipped as interleaved.
    pub interleaved_skips: u64,
    /// Oracle-internal panics contained.
    pub contained_panics: u64,
    /// Hook events skipped under quarantine.
    pub quarantined_skips: u64,
    /// Quarantined components recovered.
    pub quarantine_recoveries: u64,
    /// Violation reports dropped at the bounded log.
    pub violations_dropped: u64,
    /// Traps skipped because the per-trap budget ran out.
    pub degraded_traps: u64,
    /// Lock events degraded to evictions under budget pressure.
    pub budget_degraded_events: u64,
}

impl StatsSnapshot {
    /// The resilience counters of this snapshot.
    pub fn resilience(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            contained_panics: self.contained_panics,
            quarantined_skips: self.quarantined_skips,
            quarantine_recoveries: self.quarantine_recoveries,
            violations_dropped: self.violations_dropped,
            degraded_traps: self.degraded_traps,
            budget_degraded_events: self.budget_degraded_events,
            interleaved_skips: self.interleaved_skips,
        }
    }
}

/// The result handle of a checked run. Wraps the oracle; [`Verdict::wait`]
/// synchronises with the checker (pipelined mode's only mandatory sync
/// point), after which the accessors serve the settled verdict.
#[derive(Clone)]
pub struct Verdict {
    oracle: Arc<Oracle>,
}

impl Verdict {
    pub(crate) fn new(oracle: Arc<Oracle>) -> Verdict {
        Verdict { oracle }
    }

    /// Blocks until every event emitted so far has been checked, then
    /// returns `self` for chaining. Call once at the end of a run (or
    /// test case) before reading the verdict.
    pub fn wait(&self) -> &Verdict {
        self.oracle.barrier();
        self
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.oracle.violations()
    }

    /// Number of violations recorded so far (one relaxed atomic load).
    pub fn violation_count(&self) -> u64 {
        self.oracle.violation_count()
    }

    /// `true` when no violations have been recorded.
    pub fn all_clear(&self) -> bool {
        self.violation_count() == 0
    }

    /// A snapshot of the oracle's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.oracle.stats_snapshot()
    }

    /// The resilience counters (containment/degradation machinery).
    pub fn resilience(&self) -> ResilienceSnapshot {
        self.stats().resilience()
    }

    /// The most recent checked traps (bounded; newest last).
    pub fn trace(&self) -> Vec<TrapRecord> {
        self.oracle.trace()
    }

    /// The underlying oracle, for accessors the handle does not mirror.
    pub fn oracle(&self) -> &Arc<Oracle> {
        &self.oracle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_mode_defaults_to_inline() {
        assert_eq!(CheckMode::default(), CheckMode::Inline);
        assert!(!CheckMode::Inline.is_pipelined());
        assert!(CheckMode::pipelined().is_pipelined());
    }

    #[test]
    fn stats_snapshot_resilience_mirrors_the_counters() {
        let s = StatsSnapshot {
            contained_panics: 1,
            quarantined_skips: 2,
            degraded_traps: 3,
            ..Default::default()
        };
        let r = s.resilience();
        assert_eq!(r.contained_panics, 1);
        assert_eq!(r.quarantined_skips, 2);
        assert_eq!(r.degraded_traps, 3);
        assert!(r.degraded());
        assert!(!StatsSnapshot::default().resilience().degraded());
    }
}
