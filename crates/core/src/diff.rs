//! Printing and diffing ghost states (§4.2.2).
//!
//! Runtime recording of reified ghost datatypes makes *diffing* two
//! abstract states possible, which the paper found "invaluable in error
//! reporting and debugging of both code and spec". The output format
//! follows the paper's example: one line per changed maplet or register,
//! prefixed `+`/`-`.

use std::fmt::Write as _;

use crate::maplet::MapletTarget;
use crate::mapping::Mapping;
use crate::state::{GhostCpu, GhostState, GhostVcpu, GhostVm};

fn target_str(t: &MapletTarget) -> String {
    match t {
        MapletTarget::Mapped { oa, attrs } => format!("phys:{oa:#x} {attrs}"),
        MapletTarget::Annotated { owner } => format!("owner={owner}"),
    }
}

/// Appends the diff of two mappings under a component label.
fn diff_mapping(out: &mut String, label: &str, a: &Mapping, b: &Mapping) {
    for (ia, left, right) in a.diff(b) {
        match (left, right) {
            (Some(l), None) => {
                let _ = writeln!(out, "  {label} -ia:{ia:#x} {}", target_str(&l));
            }
            (None, Some(r)) => {
                let _ = writeln!(out, "  {label} +ia:{ia:#x} {}", target_str(&r));
            }
            (Some(l), Some(r)) => {
                let _ = writeln!(out, "  {label} -ia:{ia:#x} {}", target_str(&l));
                let _ = writeln!(out, "  {label} +ia:{ia:#x} {}", target_str(&r));
            }
            (None, None) => {}
        }
    }
}

fn diff_cpu(out: &mut String, cpu: usize, a: &GhostCpu, b: &GhostCpu) {
    let mut removed = String::new();
    let mut added = String::new();
    for i in 0..8 {
        if a.regs.get(i) != b.regs.get(i) {
            let _ = write!(removed, " r{i}={:x}", a.regs.get(i));
            let _ = write!(added, " r{i}={:x}", b.regs.get(i));
        }
    }
    if !removed.is_empty() {
        let _ = writeln!(out, "  regs[{cpu}] -{removed}");
        let _ = writeln!(out, "  regs[{cpu}] +{added}");
    }
    if a.loaded != b.loaded {
        let _ = writeln!(
            out,
            "  loaded[{cpu}] -{:?}",
            a.loaded.as_ref().map(|l| (l.handle, l.idx))
        );
        let _ = writeln!(
            out,
            "  loaded[{cpu}] +{:?}",
            b.loaded.as_ref().map(|l| (l.handle, l.idx))
        );
    }
}

fn diff_vm(out: &mut String, a: &GhostVm, b: &GhostVm) {
    let h = a.handle;
    diff_mapping(
        out,
        &format!("vm[{h:#x}].pgt"),
        &a.pgt.mapping,
        &b.pgt.mapping,
    );
    if a.donated != b.donated {
        let _ = writeln!(
            out,
            "  vm[{h:#x}].donated -{:x?} +{:x?}",
            a.donated, b.donated
        );
    }
    if a.firmware != b.firmware {
        let _ = writeln!(
            out,
            "  vm[{h:#x}].firmware -{:x?} +{:x?}",
            a.firmware, b.firmware
        );
    }
    for (i, (va, vb)) in a.vcpus.iter().zip(b.vcpus.iter()).enumerate() {
        if va != vb {
            let _ = writeln!(
                out,
                "  vm[{h:#x}].vcpu[{i}] -{} +{}",
                vcpu_str(va),
                vcpu_str(vb)
            );
        }
    }
    if a.vcpus.len() != b.vcpus.len() {
        let _ = writeln!(
            out,
            "  vm[{h:#x}].nr_vcpus -{} +{}",
            a.vcpus.len(),
            b.vcpus.len()
        );
    }
}

fn vcpu_str(v: &GhostVcpu) -> String {
    match v {
        GhostVcpu::Uninit => "uninit".into(),
        GhostVcpu::Present { regs, memcache } => {
            format!("present(r0={:x}, mc={})", regs.get(0), memcache.len())
        }
        GhostVcpu::Loaded { on } => format!("loaded(cpu{on})"),
    }
}

/// Renders the difference between two (partial) ghost states, component by
/// component. Components present on only one side are reported as
/// added/removed wholesale; equal components produce no output. An empty
/// string means the states agree everywhere both are defined.
pub fn diff_states(a: &GhostState, b: &GhostState) -> String {
    let mut out = String::new();
    match (&a.host, &b.host) {
        (Some(x), Some(y)) => {
            diff_mapping(&mut out, "host.annot", &x.annot, &y.annot);
            diff_mapping(&mut out, "host.share", &x.shared, &y.shared);
        }
        (Some(_), None) => out.push_str("  host: component dropped\n"),
        (None, Some(_)) => out.push_str("  host: component appeared\n"),
        (None, None) => {}
    }
    match (&a.pkvm, &b.pkvm) {
        (Some(x), Some(y)) => diff_mapping(&mut out, "pkvm.pgt", &x.pgt.mapping, &y.pgt.mapping),
        (Some(_), None) => out.push_str("  pkvm: component dropped\n"),
        (None, Some(_)) => out.push_str("  pkvm: component appeared\n"),
        (None, None) => {}
    }
    match (&a.vm_table, &b.vm_table) {
        (Some(x), Some(y)) if x != y => {
            let _ = writeln!(out, "  vm_table -{x:x?}");
            let _ = writeln!(out, "  vm_table +{y:x?}");
        }
        (Some(_), None) => out.push_str("  vm_table: component dropped\n"),
        (None, Some(_)) => out.push_str("  vm_table: component appeared\n"),
        _ => {}
    }
    for (h, va) in &a.vms {
        match b.vms.get(h) {
            Some(vb) => diff_vm(&mut out, va, vb),
            None => {
                let _ = writeln!(out, "  vm[{h:#x}]: component dropped");
            }
        }
    }
    for h in b.vms.keys() {
        if !a.vms.contains_key(h) {
            let _ = writeln!(out, "  vm[{h:#x}]: component appeared");
        }
    }
    for (c, la) in &a.locals {
        match b.locals.get(c) {
            Some(lb) => diff_cpu(&mut out, *c, la, lb),
            None => {
                let _ = writeln!(out, "  locals[{c}]: component dropped");
            }
        }
    }
    for c in b.locals.keys() {
        if !a.locals.contains_key(c) {
            let _ = writeln!(out, "  locals[{c}]: component appeared");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maplet::{AbsAttrs, Maplet};
    use crate::state::{GhostGlobals, GhostHost};
    use pkvm_aarch64::attrs::{MemType, Perms};
    use pkvm_hyp::owner::PageState;

    fn state_with_host() -> GhostState {
        let mut s = GhostState::blank(&GhostGlobals::default());
        s.host = Some(GhostHost::default());
        s
    }

    #[test]
    fn equal_states_diff_empty() {
        let a = state_with_host();
        assert_eq!(diff_states(&a, &a.clone()), "");
    }

    #[test]
    fn added_share_shows_plus_line() {
        let a = state_with_host();
        let mut b = a.clone();
        b.host.as_mut().unwrap().shared.insert(Maplet {
            ia: 0x0001_01b1_8000,
            nr_pages: 1,
            target: MapletTarget::Mapped {
                oa: 0x0001_01b1_8000,
                attrs: AbsAttrs {
                    perms: Perms::RWX,
                    memtype: MemType::Normal,
                    state: Some(PageState::SharedOwned),
                },
            },
        });
        let d = diff_states(&a, &b);
        assert!(d.contains("host.share +"), "{d}");
        assert!(d.contains("SO RWX M"), "{d}");
    }

    #[test]
    fn register_changes_show_both_sides() {
        let mut a = GhostState::blank(&GhostGlobals::default());
        a.write_gpr(0, 0, 0xc600_000d);
        let mut b = a.clone();
        b.write_gpr(0, 0, 0);
        let d = diff_states(&a, &b);
        assert!(d.contains("regs[0] - r0=c600000d"), "{d}");
        assert!(d.contains("regs[0] + r0=0"), "{d}");
    }

    #[test]
    fn component_presence_changes_reported() {
        let a = state_with_host();
        let b = GhostState::blank(&GhostGlobals::default());
        assert!(diff_states(&a, &b).contains("host: component dropped"));
        assert!(diff_states(&b, &a).contains("host: component appeared"));
    }
}
