//! Pretty-printing of ghost states.
//!
//! The paper's ghost infrastructure includes printing machinery (with its
//! own lock, to keep EL2 UART output coherent); reified ghost datatypes
//! make states printable and diffable, "invaluable in error reporting and
//! debugging of both code and spec" (§4.2.2). Diffing lives in
//! [`crate::diff`]; this module renders whole states, in the same
//! `ia -> phys, state, perms, memtype` notation.

use std::fmt::Write as _;

use crate::maplet::MapletTarget;
use crate::mapping::Mapping;
use crate::state::{GhostState, GhostVcpu};

fn render_mapping(out: &mut String, label: &str, m: &Mapping) {
    if m.is_empty() {
        let _ = writeln!(out, "  {label}: (empty)");
        return;
    }
    let _ = writeln!(
        out,
        "  {label}: {} maplet(s), {} page(s)",
        m.len(),
        m.nr_pages()
    );
    for maplet in m.iter() {
        match maplet.target {
            MapletTarget::Mapped { oa, attrs } => {
                let _ = writeln!(
                    out,
                    "    ia:{:#014x}+{:<5} -> phys:{:#x} {}",
                    maplet.ia, maplet.nr_pages, oa, attrs
                );
            }
            MapletTarget::Annotated { owner } => {
                let _ = writeln!(
                    out,
                    "    ia:{:#014x}+{:<5} owner={}",
                    maplet.ia, maplet.nr_pages, owner
                );
            }
        }
    }
}

/// Renders a (partial) ghost state, component by component; absent
/// components print as `--` so partiality is visible.
pub fn render_state(s: &GhostState) -> String {
    let mut out = String::new();
    match &s.host {
        Some(h) => {
            out.push_str("host:\n");
            render_mapping(&mut out, "annot", &h.annot);
            render_mapping(&mut out, "share", &h.shared);
        }
        None => out.push_str("host: --\n"),
    }
    match &s.pkvm {
        Some(p) => {
            out.push_str("pkvm:\n");
            render_mapping(&mut out, "pgt", &p.pgt.mapping);
        }
        None => out.push_str("pkvm: --\n"),
    }
    match &s.vm_table {
        Some(t) => {
            let _ = writeln!(out, "vm_table: {t:x?}");
        }
        None => out.push_str("vm_table: --\n"),
    }
    for (h, vm) in &s.vms {
        let _ = writeln!(
            out,
            "vm[{h:#x}]: slot {} {} donated={:x?}",
            vm.slot,
            if vm.protected {
                "protected"
            } else {
                "unprotected"
            },
            vm.donated
        );
        render_mapping(&mut out, "pgt", &vm.pgt.mapping);
        for (i, v) in vm.vcpus.iter().enumerate() {
            match v {
                GhostVcpu::Uninit => {
                    let _ = writeln!(out, "  vcpu[{i}]: uninit");
                }
                GhostVcpu::Present { regs, memcache } => {
                    let _ = writeln!(
                        out,
                        "  vcpu[{i}]: present r0={:#x} r1={:#x} mc={}",
                        regs.get(0),
                        regs.get(1),
                        memcache.len()
                    );
                }
                GhostVcpu::Loaded { on } => {
                    let _ = writeln!(out, "  vcpu[{i}]: loaded on cpu{on}");
                }
            }
        }
    }
    for (cpu, l) in &s.locals {
        let _ = write!(
            out,
            "locals[{cpu}]: r0={:#x} r1={:#x} r2={:#x} r3={:#x}",
            l.regs.get(0),
            l.regs.get(1),
            l.regs.get(2),
            l.regs.get(3)
        );
        match &l.loaded {
            Some(lv) => {
                let _ = writeln!(out, " loaded=({:#x},{})", lv.handle, lv.idx);
            }
            None => out.push('\n'),
        }
    }
    out
}

impl std::fmt::Display for GhostState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&render_state(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maplet::{AbsAttrs, Maplet};
    use crate::state::{GhostGlobals, GhostHost};
    use pkvm_aarch64::attrs::{MemType, Perms};
    use pkvm_hyp::owner::{OwnerId, PageState};

    #[test]
    fn blank_state_shows_partiality() {
        let s = GhostState::blank(&GhostGlobals::default());
        let r = render_state(&s);
        assert!(r.contains("host: --"));
        assert!(r.contains("pkvm: --"));
        assert!(r.contains("vm_table: --"));
    }

    #[test]
    fn mappings_render_in_paper_notation() {
        let mut s = GhostState::blank(&GhostGlobals::default());
        let mut h = GhostHost::default();
        h.shared.insert(Maplet {
            ia: 0x0001_01b1_8000,
            nr_pages: 1,
            target: MapletTarget::Mapped {
                oa: 0x0001_01b1_8000,
                attrs: AbsAttrs {
                    perms: Perms::RWX,
                    memtype: MemType::Normal,
                    state: Some(PageState::SharedOwned),
                },
            },
        });
        h.annot.insert(Maplet {
            ia: 0x4400_0000,
            nr_pages: 2048,
            target: MapletTarget::Annotated {
                owner: OwnerId::HYP,
            },
        });
        s.host = Some(h);
        let r = s.to_string();
        assert!(r.contains("SO RWX M"), "{r}");
        assert!(r.contains("owner=hyp"), "{r}");
        assert!(r.contains("2048"), "{r}");
    }
}
