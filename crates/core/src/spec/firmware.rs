//! Specification of `vm_load_firmware`: the pvmfw-style protected boot.
//!
//! Android's protected boot donates a firmware image to a protected VM
//! *before any vCPU runs*: the host hands over a contiguous page range,
//! the hypervisor hides it from the host's stage 2 and maps it into the
//! guest as owned memory. The host must never regain access for the VM's
//! lifetime — the per-event half of that property is specified here; the
//! lifetime half (spanning teardown and handle reuse) is the oracle's
//! firmware-protection tracker.

use pkvm_aarch64::addr::{PAGE_SHIFT, PAGE_SIZE};
use pkvm_hyp::error::Errno;
use pkvm_hyp::handlers::MAX_FIRMWARE_PAGES;
use pkvm_hyp::owner::{OwnerId, PageState};
use pkvm_hyp::vm::Handle;

use crate::calldata::GhostCallData;
use crate::maplet::{Maplet, MapletTarget};
use crate::state::{GhostState, GhostVcpu};

use super::{
    abs_guest_attrs, epilogue_host_call, impl_reported_enomem, is_owned_exclusively_by_host,
    SpecVerdict,
};

/// Executable specification of `__pkvm_vm_load_firmware`.
///
/// Error precedence mirrors the handler exactly: `EINVAL` (bad bounds,
/// before any lock) → `ENOENT` (stale handle) → `EPERM` (unprotected VM,
/// before the VM lock) → `EBUSY` (a vCPU exists) → `EPERM` (a page is not
/// transferable) → success.
pub fn vm_load_firmware(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/vm_load_firmware/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let handle = g_pre.read_gpr(cpu, 1) as Handle;
    let pfn = g_pre.read_gpr(cpu, 2);
    let gfn = g_pre.read_gpr(cpu, 3);
    let nr = g_pre.read_gpr(cpu, 4);
    let phys = pfn << PAGE_SHIFT;

    if nr == 0 || nr > MAX_FIRMWARE_PAGES || gfn >= 1 << 36 {
        crate::spec::spec_hit("spec/vm_load_firmware/einval");
        epilogue_host_call(g_pre, call, g_post, Errno::EINVAL.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let table_pre = g_pre.vm_table.as_ref().expect("vm_table locked by handler");
    if !table_pre.iter().any(|&(h, _)| h == handle) {
        crate::spec::spec_hit("spec/vm_load_firmware/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let Some(vm_pre) = g_pre.vms.get(&handle) else {
        // The handler bails before the VM lock only for an unprotected VM
        // (`protected` is immutable metadata): accept that one error
        // parametrically, since the ghost cannot see the flag here.
        if call.ret() == Errno::EPERM.to_ret() {
            crate::spec::spec_hit("spec/vm_load_firmware/eperm");
            epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
            return SpecVerdict::Checked;
        }
        crate::spec::spec_hit("spec/vm_load_firmware/unchecked2");
        return SpecVerdict::Unchecked("vm not recorded");
    };
    if !vm_pre.protected {
        crate::spec::spec_hit("spec/vm_load_firmware/eperm");
        epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    // "Before any vCPU runs": the whole point of protected boot is that
    // the firmware is in place before the guest can observe anything.
    if !vm_pre.vcpus.iter().all(|v| matches!(v, GhostVcpu::Uninit)) {
        crate::spec::spec_hit("spec/vm_load_firmware/ebusy");
        epilogue_host_call(g_pre, call, g_post, Errno::EBUSY.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let host_pre = g_pre.host.as_ref().expect("host locked by handler");
    for i in 0..nr {
        let pa = phys + i * PAGE_SIZE;
        let gipa = (gfn + i) << PAGE_SHIFT;
        if !is_owned_exclusively_by_host(host_pre, g_pre, pa)
            || vm_pre.pgt.mapping.lookup(gipa).is_some()
        {
            crate::spec::spec_hit("spec/vm_load_firmware/eperm2");
            epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
            return SpecVerdict::Checked;
        }
    }

    g_post.copy_host_from(g_pre);
    g_post.copy_vm_table_from(g_pre);
    g_post.copy_vm_from(g_pre, handle);
    g_post
        .host
        .as_mut()
        .expect("initialised")
        .annot
        .insert_new(Maplet {
            ia: phys,
            nr_pages: nr,
            target: MapletTarget::Annotated {
                owner: OwnerId::guest(vm_pre.slot),
            },
        });
    let vm = g_post.vms.get_mut(&handle).expect("initialised");
    vm.pgt.mapping.insert_new(Maplet {
        ia: gfn << PAGE_SHIFT,
        nr_pages: nr,
        target: MapletTarget::Mapped {
            oa: phys,
            attrs: abs_guest_attrs(PageState::Owned),
        },
    });
    vm.firmware.extend((0..nr).map(|i| pfn + i));
    crate::spec::spec_hit("spec/vm_load_firmware/ok");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    SpecVerdict::Checked
}
