//! Specifications of `vcpu_load`, `vcpu_put`, and `vcpu_run`.
//!
//! Loading transfers ownership of a vCPU's metadata from its VM lock to
//! the hardware thread (§3.1's "additional subtlety"): the spec moves the
//! ghost vCPU from the VM component into the thread-local component, and
//! putting moves it back. `vcpu_run` is parameterised on what the guest
//! did — the scripted step and any guest-read values arrive as call data.

use pkvm_aarch64::addr::{page_align_down, PAGE_SHIFT};
use pkvm_hyp::error::Errno;
use pkvm_hyp::hypercalls::exit;
use pkvm_hyp::owner::{OwnerId, PageState};
use pkvm_hyp::vm::Handle;

use crate::calldata::GhostCallData;
use crate::maplet::{Maplet, MapletTarget};
use crate::state::{GhostLoadedVcpu, GhostState, GhostVcpu};

use super::{abs_host_attrs, epilogue_host_call, impl_reported_enomem, SpecVerdict};

/// Executable specification of `__pkvm_vcpu_load`.
pub fn vcpu_load(g_pre: &GhostState, call: &GhostCallData, g_post: &mut GhostState) -> SpecVerdict {
    let cpu = call.cpu;
    let handle = g_pre.read_gpr(cpu, 1) as Handle;
    let idx = g_pre.read_gpr(cpu, 2) as usize;
    let local_pre = g_pre.locals.get(&cpu).expect("local recorded");

    if local_pre.loaded.is_some() {
        crate::spec::spec_hit("spec/vcpu_load/ebusy");
        epilogue_host_call(g_pre, call, g_post, Errno::EBUSY.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let table_pre = g_pre.vm_table.as_ref().expect("vm_table locked by handler");
    if !table_pre.iter().any(|&(h, _)| h == handle) {
        crate::spec::spec_hit("spec/vcpu_load/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    // A bad index is rejected from immutable metadata before the VM lock.
    if call.ret() == Errno::EINVAL.to_ret() {
        crate::spec::spec_hit("spec/vcpu_load/einval");
        epilogue_host_call(g_pre, call, g_post, Errno::EINVAL.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let Some(vm_pre) = g_pre.vms.get(&handle) else {
        crate::spec::spec_hit("spec/vcpu_load/unchecked");
        return SpecVerdict::Unchecked("vm not recorded");
    };
    match vm_pre.vcpus.get(idx) {
        Some(GhostVcpu::Present { regs, memcache }) => {
            g_post.copy_vm_table_from(g_pre);
            g_post.copy_vm_from(g_pre, handle);
            let vm = g_post.vms.get_mut(&handle).expect("initialised");
            vm.vcpus[idx] = GhostVcpu::Loaded { on: cpu };
            crate::spec::spec_hit("spec/vcpu_load/ok");
            epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
            let l = g_post.locals.get_mut(&cpu).expect("epilogue wrote it");
            l.loaded = Some(GhostLoadedVcpu {
                handle,
                idx,
                regs: *regs,
                memcache: memcache.clone(),
            });
            SpecVerdict::Checked
        }
        Some(GhostVcpu::Loaded { .. }) => {
            crate::spec::spec_hit("spec/vcpu_load/ebusy2");
            epilogue_host_call(g_pre, call, g_post, Errno::EBUSY.to_ret(), 0, 0);
            SpecVerdict::Checked
        }
        // Loading an uninitialised vCPU must fail: the check real bug 3
        // was missing.
        Some(GhostVcpu::Uninit) | None => {
            crate::spec::spec_hit("spec/vcpu_load/enoent2");
            epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
            SpecVerdict::Checked
        }
    }
}

/// Executable specification of `__pkvm_vcpu_put`.
pub fn vcpu_put(g_pre: &GhostState, call: &GhostCallData, g_post: &mut GhostState) -> SpecVerdict {
    let cpu = call.cpu;
    let local_pre = g_pre.locals.get(&cpu).expect("local recorded");
    let Some(loaded) = &local_pre.loaded else {
        crate::spec::spec_hit("spec/vcpu_put/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    };
    crate::spec::spec_hit("spec/vcpu_put/ok");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    g_post
        .locals
        .get_mut(&cpu)
        .expect("epilogue wrote it")
        .loaded = None;
    g_post.copy_vm_table_from(g_pre);
    // If the VM still exists, the vCPU's state returns to it; if it was
    // torn down while loaded the state is simply dropped.
    if let Some(vm_pre) = g_pre.vms.get(&loaded.handle) {
        g_post.copy_vm_from(g_pre, loaded.handle);
        let vm = g_post.vms.get_mut(&loaded.handle).expect("initialised");
        if vm_pre.vcpus.get(loaded.idx).is_some() {
            vm.vcpus[loaded.idx] = GhostVcpu::Present {
                regs: loaded.regs,
                memcache: loaded.memcache.clone(),
            };
        }
    }
    SpecVerdict::Checked
}

/// Executable specification of `__pkvm_vcpu_get_reg`: a pure read of the
/// thread-local loaded-vCPU ghost state, returned in `x2`.
pub fn vcpu_get_reg(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    let cpu = call.cpu;
    let n = g_pre.read_gpr(cpu, 1);
    let local_pre = g_pre.locals.get(&cpu).expect("local recorded");
    let Some(loaded) = &local_pre.loaded else {
        crate::spec::spec_hit("spec/vcpu_get_reg/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    };
    if n >= 31 {
        crate::spec::spec_hit("spec/vcpu_get_reg/einval");
        epilogue_host_call(g_pre, call, g_post, Errno::EINVAL.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    crate::spec::spec_hit("spec/vcpu_get_reg/ok");
    let value = loaded.regs.get(n as usize);
    epilogue_host_call(g_pre, call, g_post, 0, value, 0);
    SpecVerdict::Checked
}

/// Executable specification of `__pkvm_vcpu_set_reg`: updates the
/// thread-local loaded-vCPU ghost state.
pub fn vcpu_set_reg(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    let cpu = call.cpu;
    let n = g_pre.read_gpr(cpu, 1);
    let value = g_pre.read_gpr(cpu, 2);
    let local_pre = g_pre.locals.get(&cpu).expect("local recorded");
    if local_pre.loaded.is_none() {
        crate::spec::spec_hit("spec/vcpu_set_reg/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    if n >= 31 {
        crate::spec::spec_hit("spec/vcpu_set_reg/einval");
        epilogue_host_call(g_pre, call, g_post, Errno::EINVAL.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    crate::spec::spec_hit("spec/vcpu_set_reg/ok");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    let l = g_post.locals.get_mut(&cpu).expect("epilogue wrote it");
    l.loaded
        .as_mut()
        .expect("checked above")
        .regs
        .set(n as usize, value);
    SpecVerdict::Checked
}

/// Executable specification of `__kvm_vcpu_run`: one scripted guest step.
///
/// The guest's behaviour is environment input (§4.3): the step kind and
/// its address arrive as recorded call data, and the spec computes the
/// protection-state consequences — in particular the guest-initiated
/// share/unshare transitions.
pub fn vcpu_run(g_pre: &GhostState, call: &GhostCallData, g_post: &mut GhostState) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/vcpu_run/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let local_pre = g_pre.locals.get(&cpu).expect("local recorded");
    let Some(loaded) = &local_pre.loaded else {
        crate::spec::spec_hit("spec/vcpu_run/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    };
    let handle = loaded.handle;
    let (Some(op), Some(gipa)) = (
        call.read_once("vcpu_run/op"),
        call.read_once("vcpu_run/ipa"),
    ) else {
        crate::spec::spec_hit("spec/vcpu_run/unchecked2");
        return SpecVerdict::Unchecked("missing guest-step call data");
    };

    match op {
        // WFI or an empty script: a pure exit.
        0 => {
            crate::spec::spec_hit("spec/vcpu_run/exit_wfi");
            epilogue_host_call(g_pre, call, g_post, exit::WFI, 0, 0);
            SpecVerdict::Checked
        }
        // Guest read/write: either the access succeeded (CONTINUE; a read
        // deposits the loaded value in the guest's x0) or it aborted
        // (MEM_ABORT with the IPA and write flag reported to the host).
        1 | 2 => {
            let Some(vm_pre) = g_pre.vms.get(&handle) else {
                crate::spec::spec_hit("spec/vcpu_run/unchecked3");
                return SpecVerdict::Unchecked("vm not recorded");
            };
            let translated = vm_pre.pgt.mapping.lookup(gipa);
            let readable = matches!(
                translated,
                Some(MapletTarget::Mapped { attrs, .. }) if attrs.perms.r
            );
            let writable = matches!(
                translated,
                Some(MapletTarget::Mapped { attrs, .. }) if attrs.perms.w
            );
            let ok = if op == 1 { readable } else { writable };
            if ok {
                crate::spec::spec_hit("spec/vcpu_run/exit_continue");
                epilogue_host_call(g_pre, call, g_post, exit::CONTINUE, 0, 0);
                if op == 1 {
                    let Some(value) = call.read_once("vcpu_run/read_value") else {
                        crate::spec::spec_hit("spec/vcpu_run/unchecked4");
                        return SpecVerdict::Unchecked("missing guest-read call data");
                    };
                    let l = g_post.locals.get_mut(&cpu).expect("epilogue wrote it");
                    let lv = l.loaded.as_mut().expect("loaded checked above");
                    lv.regs.set(0, value);
                }
            } else {
                crate::spec::spec_hit("spec/vcpu_run/exit_mem_abort");
                epilogue_host_call(g_pre, call, g_post, exit::MEM_ABORT, gipa, (op == 2) as u64);
            }
            SpecVerdict::Checked
        }
        // Guest hypercalls: share/unshare a guest page with the host.
        3 | 4 => {
            let Some(vm_pre) = g_pre.vms.get(&handle) else {
                crate::spec::spec_hit("spec/vcpu_run/unchecked5");
                return SpecVerdict::Unchecked("vm not recorded");
            };
            let host_pre = g_pre.host.as_ref().expect("host locked by handler");
            let share = op == 3;
            let gipa_page = page_align_down(gipa);

            // Resolve the physical page behind the guest mapping and check
            // the pre-conditions of the transition.
            let (phys, guest_ok) = match vm_pre.pgt.mapping.lookup(gipa_page) {
                Some(MapletTarget::Mapped { oa, attrs }) => {
                    let want = if share {
                        PageState::Owned
                    } else {
                        PageState::SharedOwned
                    };
                    (oa, attrs.state == Some(want))
                }
                _ => (0, false),
            };
            // Firmware pages are mapped guest-owned but must never reach
            // the host again, not even by the guest's own hand.
            let firmware_denied = share && vm_pre.firmware.contains(&(phys >> PAGE_SHIFT));
            let host_ok = guest_ok
                && !firmware_denied
                && if share {
                    matches!(
                        host_pre.annot.lookup(phys),
                        Some(MapletTarget::Annotated { owner }) if owner == OwnerId::guest(vm_pre.slot)
                    )
                } else {
                    matches!(
                        host_pre.shared.lookup(phys),
                        Some(MapletTarget::Mapped { attrs, .. })
                            if attrs.state == Some(PageState::SharedBorrowed)
                    )
                };

            crate::spec::spec_hit("spec/vcpu_run/exit_guest_hvc");
            epilogue_host_call(g_pre, call, g_post, exit::GUEST_HVC, 0, 0);
            let guest_ret: u64 = if guest_ok && host_ok {
                0
            } else {
                Errno::EPERM.to_ret()
            };
            {
                let l = g_post.locals.get_mut(&cpu).expect("epilogue wrote it");
                let lv = l.loaded.as_mut().expect("loaded checked above");
                lv.regs.set(0, guest_ret);
            }
            if guest_ret != 0 {
                return SpecVerdict::Checked;
            }

            g_post.copy_host_from(g_pre);
            g_post.copy_vm_from(g_pre, handle);
            let host = g_post.host.as_mut().expect("initialised");
            let vm = g_post.vms.get_mut(&handle).expect("initialised");
            let new_guest_state = if share {
                PageState::SharedOwned
            } else {
                PageState::Owned
            };
            // Guest side: flip the page state in place.
            let Some(MapletTarget::Mapped { oa, mut attrs }) = vm.pgt.mapping.lookup(gipa_page)
            else {
                unreachable!("checked above");
            };
            attrs.state = Some(new_guest_state);
            vm.pgt.mapping.insert(Maplet {
                ia: gipa_page,
                nr_pages: 1,
                target: MapletTarget::Mapped { oa, attrs },
            });
            // Host side: annotation <-> borrowed mapping.
            if share {
                host.annot.remove(phys, 1);
                host.shared.insert_new(Maplet {
                    ia: phys,
                    nr_pages: 1,
                    target: MapletTarget::Mapped {
                        oa: phys,
                        attrs: abs_host_attrs(true, PageState::SharedBorrowed),
                    },
                });
            } else {
                host.shared.remove(phys, 1);
                host.annot.insert_new(Maplet {
                    ia: phys,
                    nr_pages: 1,
                    target: MapletTarget::Annotated {
                        owner: OwnerId::guest(vm_pre.slot),
                    },
                });
            }
            SpecVerdict::Checked
        }
        _ => SpecVerdict::Unchecked("unmodelled guest step"),
    }
}
