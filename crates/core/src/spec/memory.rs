//! Specifications of the memory-transition hypercalls.
//!
//! `host_share_hyp` below is a line-for-line Rust rendering of the
//! paper's Fig. 5, down to the six numbered steps. The other transitions
//! (unshare, reclaim, memcache top-up, map-guest) follow the same shape:
//! address-space conversions, permission checks on the pre-state,
//! initialisation of the partial post-state, attribute construction,
//! mapping updates, and the register epilogue.

use pkvm_aarch64::addr::{is_page_aligned, page_align_down, PAGE_SHIFT, PAGE_SIZE};
use pkvm_hyp::error::Errno;
use pkvm_hyp::memcache::MEMCACHE_MAX_TOPUP;
use pkvm_hyp::owner::{OwnerId, PageState};
use pkvm_hyp::vm::Handle;

use crate::calldata::GhostCallData;
use crate::maplet::{Maplet, MapletTarget};
use crate::state::GhostState;

use super::{
    abs_guest_attrs, abs_host_attrs, abs_hyp_attrs, epilogue_host_call, impl_reported_enomem,
    is_owned_exclusively_by_host, SpecVerdict,
};

/// Executable specification of `__pkvm_host_share_hyp` (Fig. 5).
pub fn host_share_hyp(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/host_share_hyp/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;

    // (1) Address space conversions.
    let pfn = g_pre.read_gpr(cpu, 1);
    let phys = pfn << PAGE_SHIFT;
    let host_addr = phys; // The host's stage 2 is identity-related.
    let hyp_addr = g_pre.globals.hyp_va(phys);
    let mut ret: u64 = 0;

    // (2) Permissions checks.
    let host_pre = g_pre.host.as_ref().expect("host locked by handler");
    if !is_owned_exclusively_by_host(host_pre, g_pre, phys) {
        ret = Errno::EPERM.to_ret();
        crate::spec::spec_hit("spec/host_share_hyp/ok");
        epilogue_host_call(g_pre, call, g_post, ret, 0, 0);
        return SpecVerdict::Checked;
    }

    // (3) Initialisation of the (partial) post-state.
    g_post.copy_host_from(g_pre);
    g_post.copy_pkvm_from(g_pre);

    // (4) Construction of abstract mapping attributes.
    let is_memory = g_pre.globals.is_ram(phys);
    let host_attrs = abs_host_attrs(is_memory, PageState::SharedOwned);
    let hyp_attrs = abs_hyp_attrs(is_memory, PageState::SharedBorrowed);

    // (5) Update abstract mappings with new targets.
    g_post
        .host
        .as_mut()
        .expect("initialised above")
        .shared
        .insert_new(Maplet {
            ia: host_addr,
            nr_pages: 1,
            target: MapletTarget::Mapped {
                oa: phys,
                attrs: host_attrs,
            },
        });
    let hyp_map = &mut g_post.pkvm.as_mut().expect("initialised above").pgt.mapping;
    if let Err(collision) = hyp_map.try_insert_new(Maplet {
        ia: hyp_addr,
        nr_pages: 1,
        target: MapletTarget::Mapped {
            oa: phys,
            attrs: hyp_attrs,
        },
    }) {
        // A correct layout never has the linear-map VA of a host page
        // already mapped: this is how the aliasing of real bug 5 surfaces.
        crate::spec::spec_hit("spec/host_share_hyp/impossible");
        return SpecVerdict::Impossible(format!(
            "hyp VA {collision:#x} already mapped while sharing phys {phys:#x}"
        ));
    }

    // (6) Epilogue: update the host register state.
    crate::spec::spec_hit("spec/host_share_hyp/ok2");
    epilogue_host_call(g_pre, call, g_post, ret, 0, 0);
    SpecVerdict::Checked
}

/// Executable specification of `__pkvm_host_unshare_hyp`.
pub fn host_unshare_hyp(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/host_unshare_hyp/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let pfn = g_pre.read_gpr(cpu, 1);
    let phys = pfn << PAGE_SHIFT;
    let hyp_addr = g_pre.globals.hyp_va(phys);

    let host_pre = g_pre.host.as_ref().expect("host locked by handler");
    let pkvm_pre = g_pre.pkvm.as_ref().expect("hyp locked by handler");
    let host_ok = matches!(
        host_pre.shared.lookup(phys),
        Some(MapletTarget::Mapped { attrs, .. }) if attrs.state == Some(PageState::SharedOwned)
    );
    let hyp_ok = matches!(
        pkvm_pre.pgt.mapping.lookup(hyp_addr),
        Some(MapletTarget::Mapped { attrs, .. }) if attrs.state == Some(PageState::SharedBorrowed)
    );
    if !host_ok || !hyp_ok {
        crate::spec::spec_hit("spec/host_unshare_hyp/eperm");
        epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }

    g_post.copy_host_from(g_pre);
    g_post.copy_pkvm_from(g_pre);
    // The page leaves both tracked maps: the host side returns to the
    // untracked exclusively-owned region, the hyp side is unmapped.
    g_post
        .host
        .as_mut()
        .expect("initialised")
        .shared
        .remove(phys, 1);
    g_post
        .pkvm
        .as_mut()
        .expect("initialised")
        .pgt
        .mapping
        .remove(hyp_addr, 1);
    crate::spec::spec_hit("spec/host_unshare_hyp/ok");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    SpecVerdict::Checked
}

/// Executable specification of `__pkvm_host_reclaim_page`.
///
/// Whether a page is *pending* reclaim depends on hypervisor-internal
/// bookkeeping the ghost deliberately abstracts away, so the spec is
/// parametric on the return value: a successful reclaim must remove the
/// page's guest annotation (or borrowed share), a refused one must change
/// nothing.
pub fn host_reclaim_page(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/host_reclaim_page/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let pfn = g_pre.read_gpr(cpu, 1);
    let phys = pfn << PAGE_SHIFT;
    let host_pre = g_pre.host.as_ref().expect("host locked by handler");

    if call.ret() == Errno::EPERM.to_ret() {
        crate::spec::spec_hit("spec/host_reclaim_page/eperm");
        epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    if call.ret() != 0 {
        crate::spec::spec_hit("spec/host_reclaim_page/unchecked2");
        return SpecVerdict::Unchecked("unexpected reclaim return value");
    }
    // Success: the page must have been guest-annotated (protected VM
    // memory) or borrowed/shared (unprotected VM memory), and it reverts
    // to plain host ownership.
    let was_guest = matches!(
        host_pre.annot.lookup(phys),
        Some(MapletTarget::Annotated { owner }) if owner.guest_slot().is_some()
    );
    let was_shared = host_pre.shared.lookup(phys).is_some();
    if !was_guest && !was_shared {
        crate::spec::spec_hit("spec/host_reclaim_page/impossible");
        return SpecVerdict::Impossible(format!(
            "reclaim of {phys:#x} succeeded but the page was not guest-owned or shared"
        ));
    }
    g_post.copy_host_from(g_pre);
    let host = g_post.host.as_mut().expect("initialised");
    host.annot.remove(phys, 1);
    host.shared.remove(phys, 1);
    crate::spec::spec_hit("spec/host_reclaim_page/ok");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    SpecVerdict::Checked
}

/// Executable specification of the memcache top-up (the path of real
/// bugs 1 and 2): `nr` pages at `addr` transfer from host to hypervisor
/// ownership and appear in the hypervisor's linear map.
pub fn topup_memcache(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/topup_memcache/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let addr = g_pre.read_gpr(cpu, 1);
    let nr = g_pre.read_gpr(cpu, 2);
    let local_pre = g_pre.locals.get(&cpu).expect("local recorded");

    let expected_err = if local_pre.loaded.is_none() {
        Some(Errno::ENOENT)
    } else if !is_page_aligned(addr) {
        Some(Errno::EINVAL)
    } else if nr > MEMCACHE_MAX_TOPUP {
        Some(Errno::E2BIG)
    } else {
        None
    };
    if let Some(e) = expected_err {
        crate::spec::spec_hit("spec/topup_memcache/ok");
        epilogue_host_call(g_pre, call, g_post, e.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }

    let host_pre = g_pre.host.as_ref().expect("host locked by handler");
    // Every donated page must be exclusively host-owned.
    for i in 0..nr {
        let pa = page_align_down(addr) + i * PAGE_SIZE;
        if !is_owned_exclusively_by_host(host_pre, g_pre, pa) {
            crate::spec::spec_hit("spec/topup_memcache/eperm");
            epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
            return SpecVerdict::Checked;
        }
    }

    g_post.copy_host_from(g_pre);
    g_post.copy_pkvm_from(g_pre);
    g_post.copy_local_from(g_pre, cpu);
    if nr > 0 {
        let base = page_align_down(addr);
        g_post
            .host
            .as_mut()
            .expect("initialised")
            .annot
            .insert_new(Maplet {
                ia: base,
                nr_pages: nr,
                target: MapletTarget::Annotated {
                    owner: OwnerId::HYP,
                },
            });
        let hyp_map = &mut g_post.pkvm.as_mut().expect("initialised").pgt.mapping;
        if let Err(c) = hyp_map.try_insert_new(Maplet {
            ia: g_pre.globals.hyp_va(base),
            nr_pages: nr,
            target: MapletTarget::Mapped {
                oa: base,
                attrs: abs_hyp_attrs(true, PageState::Owned),
            },
        }) {
            crate::spec::spec_hit("spec/topup_memcache/impossible");
            return SpecVerdict::Impossible(format!("hyp VA {c:#x} already mapped in top-up"));
        }
        // The loaded vCPU's memcache grows (contents are abstracted away
        // from the comparison; the count documents intent).
        let loaded = g_post
            .locals
            .get_mut(&cpu)
            .and_then(|l| l.loaded.as_mut())
            .expect("loaded checked above");
        for i in 0..nr {
            loaded.memcache.insert(0, (base >> PAGE_SHIFT) + i);
        }
    }
    crate::spec::spec_hit("spec/topup_memcache/ok2");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    SpecVerdict::Checked
}

/// Executable specification of `__pkvm_host_map_guest`: the host gives the
/// page at `pfn` to the loaded vCPU's VM at `gfn` — donated for protected
/// VMs, shared for unprotected ones.
pub fn host_map_guest(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/host_map_guest/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let pfn = g_pre.read_gpr(cpu, 1);
    let gfn = g_pre.read_gpr(cpu, 2);
    let phys = pfn << PAGE_SHIFT;
    let gipa = gfn << PAGE_SHIFT;
    let local_pre = g_pre.locals.get(&cpu).expect("local recorded");

    let Some(loaded) = &local_pre.loaded else {
        crate::spec::spec_hit("spec/host_map_guest/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    };
    if gfn >= 1 << 36 {
        crate::spec::spec_hit("spec/host_map_guest/einval");
        epilogue_host_call(g_pre, call, g_post, Errno::EINVAL.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let handle: Handle = loaded.handle;
    // The handler looked the VM up and locked it; if the VM had vanished
    // the call data would show ENOENT, which we accept parametrically.
    let Some(vm_pre) = g_pre.vms.get(&handle) else {
        if Errno::from_ret(call.ret()).is_some() {
            crate::spec::spec_hit("spec/host_map_guest/param");
            epilogue_host_call(g_pre, call, g_post, call.ret(), 0, 0);
            return SpecVerdict::Checked;
        }
        crate::spec::spec_hit("spec/host_map_guest/unchecked2");
        return SpecVerdict::Unchecked("vm not recorded");
    };
    let host_pre = g_pre.host.as_ref().expect("host locked by handler");

    if !is_owned_exclusively_by_host(host_pre, g_pre, phys)
        || vm_pre.pgt.mapping.lookup(gipa).is_some()
    {
        crate::spec::spec_hit("spec/host_map_guest/eperm");
        epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }

    g_post.copy_host_from(g_pre);
    g_post.copy_vm_from(g_pre, handle);
    let host = g_post.host.as_mut().expect("initialised");
    let vm = g_post.vms.get_mut(&handle).expect("initialised");
    if vm_pre.protected {
        host.annot.insert_new(Maplet {
            ia: phys,
            nr_pages: 1,
            target: MapletTarget::Annotated {
                owner: OwnerId::guest(vm_pre.slot),
            },
        });
        vm.pgt.mapping.insert_new(Maplet {
            ia: gipa,
            nr_pages: 1,
            target: MapletTarget::Mapped {
                oa: phys,
                attrs: abs_guest_attrs(PageState::Owned),
            },
        });
    } else {
        host.shared.insert_new(Maplet {
            ia: phys,
            nr_pages: 1,
            target: MapletTarget::Mapped {
                oa: phys,
                attrs: abs_host_attrs(true, PageState::SharedOwned),
            },
        });
        vm.pgt.mapping.insert_new(Maplet {
            ia: gipa,
            nr_pages: 1,
            target: MapletTarget::Mapped {
                oa: phys,
                attrs: abs_guest_attrs(PageState::SharedBorrowed),
            },
        });
    }
    crate::spec::spec_hit("spec/host_map_guest/ok");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    SpecVerdict::Checked
}
