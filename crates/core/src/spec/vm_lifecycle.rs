//! Specifications of VM lifecycle hypercalls: `init_vm`, `init_vcpu`,
//! `teardown_vm`.
//!
//! These are the "more interesting" hypercalls of §4.3: `init_vm` reads
//! its configuration from a host-owned page via `READ_ONCE` (the values
//! arrive as call data), and the handle it returns is deterministic from
//! the pre-state (the lowest free VM-table slot). `teardown_vm` computes
//! the full set of pages that return to the host — metadata, memcache,
//! and stage 2 table pages — from the abstract pre-state alone.

use std::collections::BTreeSet;

use pkvm_aarch64::addr::{PAGE_SHIFT, PAGE_SIZE};
use pkvm_hyp::error::Errno;
use pkvm_hyp::owner::{OwnerId, PageState};
use pkvm_hyp::vm::{handle_of_slot, Handle, MAX_VMS};

use crate::calldata::GhostCallData;
use crate::maplet::{Maplet, MapletTarget};
use crate::state::{AbstractPgtable, GhostState, GhostVcpu, GhostVm};

use super::{
    abs_hyp_attrs, epilogue_host_call, impl_reported_enomem, is_owned_exclusively_by_host,
    SpecVerdict,
};

/// Maximum vCPUs per VM (mirrors the handler's ABI constant).
const MAX_VCPUS: u64 = 8;
/// Pages donated at `init_vm` (metadata + stage 2 root).
const VM_DONATION_PAGES: u64 = 2;

/// Adds the host-to-hyp donation of `nr` pages at `phys` to the computed
/// post-state (annotation + linear mapping), assuming exclusivity was
/// checked.
fn donate_to_hyp(
    g: &mut GhostState,
    globals_hyp_va: u64,
    phys: u64,
    nr: u64,
) -> Result<(), String> {
    g.host
        .as_mut()
        .expect("host component initialised")
        .annot
        .try_insert_new(Maplet {
            ia: phys,
            nr_pages: nr,
            target: MapletTarget::Annotated {
                owner: OwnerId::HYP,
            },
        })
        .map_err(|ia| format!("annotation collision at {ia:#x}"))?;
    g.pkvm
        .as_mut()
        .expect("pkvm component initialised")
        .pgt
        .mapping
        .try_insert_new(Maplet {
            ia: globals_hyp_va,
            nr_pages: nr,
            target: MapletTarget::Mapped {
                oa: phys,
                attrs: abs_hyp_attrs(true, PageState::Owned),
            },
        })
        .map_err(|ia| format!("hyp VA collision at {ia:#x}"))
}

/// Executable specification of `__pkvm_init_vm`.
pub fn init_vm(g_pre: &GhostState, call: &GhostCallData, g_post: &mut GhostState) -> SpecVerdict {
    if impl_reported_enomem(call) {
        // Covers both allocator exhaustion and a full VM table (whose
        // rollback donation dance we deliberately leave loose).
        crate::spec::spec_hit("spec/init_vm/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let params_pfn = g_pre.read_gpr(cpu, 1);
    let donate_pfn = g_pre.read_gpr(cpu, 2);
    let donate_nr = g_pre.read_gpr(cpu, 3);
    let phys = donate_pfn << PAGE_SHIFT;

    // The configuration was read from host-owned memory: nondeterministic,
    // resolved by the recorded call data (§4.3).
    let (Some(nr_vcpus), Some(protected)) = (
        call.read_once("init_vm/nr_vcpus"),
        call.read_once("init_vm/protected"),
    ) else {
        // The handler bailed before reading (bad params page).
        if !g_pre.globals.is_ram(params_pfn << PAGE_SHIFT) {
            crate::spec::spec_hit("spec/init_vm/einval");
            epilogue_host_call(g_pre, call, g_post, Errno::EINVAL.to_ret(), 0, 0);
            return SpecVerdict::Checked;
        }
        crate::spec::spec_hit("spec/init_vm/unchecked2");
        return SpecVerdict::Unchecked("missing call data");
    };

    if nr_vcpus == 0 || nr_vcpus > MAX_VCPUS || donate_nr != VM_DONATION_PAGES {
        crate::spec::spec_hit("spec/init_vm/einval2");
        epilogue_host_call(g_pre, call, g_post, Errno::EINVAL.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let host_pre = g_pre.host.as_ref().expect("host locked by handler");
    for i in 0..donate_nr {
        if !is_owned_exclusively_by_host(host_pre, g_pre, phys + i * PAGE_SIZE) {
            crate::spec::spec_hit("spec/init_vm/eperm");
            epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
            return SpecVerdict::Checked;
        }
    }

    // The handle is deterministic: the lowest free slot.
    let table_pre = g_pre.vm_table.as_ref().expect("vm_table locked by handler");
    let used: BTreeSet<usize> = table_pre.iter().map(|&(_, s)| s).collect();
    let Some(slot) = (0..MAX_VMS).find(|s| !used.contains(s)) else {
        crate::spec::spec_hit("spec/init_vm/unchecked3");
        return SpecVerdict::Unchecked("table full: rollback path is loose");
    };
    let handle = handle_of_slot(slot);

    g_post.copy_host_from(g_pre);
    g_post.copy_pkvm_from(g_pre);
    if let Err(e) = donate_to_hyp(g_post, g_pre.globals.hyp_va(phys), phys, donate_nr) {
        return SpecVerdict::Impossible(e);
    }
    let mut table = table_pre.clone();
    table.push((handle, slot));
    table.sort_unstable();
    g_post.vm_table = Some(table);
    // The freshly created VM's metadata: recorded for the *deferred* check
    // at its first lock acquisition (the handler never locks it here).
    g_post.vms.insert(
        handle,
        GhostVm {
            handle,
            slot,
            protected: protected != 0,
            pgt: AbstractPgtable::default(),
            donated: vec![donate_pfn, donate_pfn + 1],
            firmware: Vec::new(),
            vcpus: (0..nr_vcpus).map(|_| GhostVcpu::Uninit).collect(),
        },
    );
    crate::spec::spec_hit("spec/init_vm/ok");
    epilogue_host_call(g_pre, call, g_post, handle as u64, 0, 0);
    SpecVerdict::Checked
}

/// Executable specification of `__pkvm_init_vcpu`.
pub fn init_vcpu(g_pre: &GhostState, call: &GhostCallData, g_post: &mut GhostState) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/init_vcpu/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let handle = g_pre.read_gpr(cpu, 1) as Handle;
    let idx = g_pre.read_gpr(cpu, 2) as usize;
    let donate_pfn = g_pre.read_gpr(cpu, 3);
    let phys = donate_pfn << PAGE_SHIFT;

    let table_pre = g_pre.vm_table.as_ref().expect("vm_table locked by handler");
    if !table_pre.iter().any(|&(h, _)| h == handle) {
        crate::spec::spec_hit("spec/init_vcpu/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    // A bad index is rejected from immutable VM metadata before any lock
    // the ghost records; accept the error parametrically.
    if call.ret() == Errno::EINVAL.to_ret() {
        crate::spec::spec_hit("spec/init_vcpu/einval");
        epilogue_host_call(g_pre, call, g_post, Errno::EINVAL.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let host_pre = g_pre.host.as_ref().expect("host locked by handler");
    if !is_owned_exclusively_by_host(host_pre, g_pre, phys) {
        crate::spec::spec_hit("spec/init_vcpu/eperm");
        epilogue_host_call(g_pre, call, g_post, Errno::EPERM.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let Some(vm_pre) = g_pre.vms.get(&handle) else {
        crate::spec::spec_hit("spec/init_vcpu/unchecked2");
        return SpecVerdict::Unchecked("vm not recorded");
    };
    if !matches!(vm_pre.vcpus.get(idx), Some(GhostVcpu::Uninit)) {
        // The rollback donation dance nets out to no change.
        crate::spec::spec_hit("spec/init_vcpu/eexist");
        epilogue_host_call(g_pre, call, g_post, Errno::EEXIST.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }

    g_post.copy_host_from(g_pre);
    g_post.copy_pkvm_from(g_pre);
    g_post.copy_vm_table_from(g_pre);
    g_post.copy_vm_from(g_pre, handle);
    if let Err(e) = donate_to_hyp(g_post, g_pre.globals.hyp_va(phys), phys, 1) {
        return SpecVerdict::Impossible(e);
    }
    let vm = g_post.vms.get_mut(&handle).expect("initialised");
    vm.vcpus[idx] = GhostVcpu::Present {
        regs: Default::default(),
        memcache: Vec::new(),
    };
    vm.donated.push(donate_pfn);
    crate::spec::spec_hit("spec/init_vcpu/ok");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    SpecVerdict::Checked
}

/// Executable specification of `__pkvm_teardown_vm`: the guest's mapped
/// pages stay annotated (awaiting reclaim); everything the host donated
/// for the VM's *infrastructure* — metadata pages, unused memcache pages,
/// and stage 2 table nodes — returns to it.
pub fn teardown_vm(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    if impl_reported_enomem(call) {
        crate::spec::spec_hit("spec/teardown_vm/unchecked");
        return SpecVerdict::Unchecked("ENOMEM is allowed anywhere");
    }
    let cpu = call.cpu;
    let handle = g_pre.read_gpr(cpu, 1) as Handle;
    let table_pre = g_pre.vm_table.as_ref().expect("vm_table locked by handler");
    if !table_pre.iter().any(|&(h, _)| h == handle) {
        crate::spec::spec_hit("spec/teardown_vm/enoent");
        epilogue_host_call(g_pre, call, g_post, Errno::ENOENT.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }
    let Some(vm_pre) = g_pre.vms.get(&handle) else {
        crate::spec::spec_hit("spec/teardown_vm/unchecked2");
        return SpecVerdict::Unchecked("vm not recorded");
    };
    if vm_pre
        .vcpus
        .iter()
        .any(|v| matches!(v, GhostVcpu::Loaded { .. }))
    {
        crate::spec::spec_hit("spec/teardown_vm/ebusy");
        epilogue_host_call(g_pre, call, g_post, Errno::EBUSY.to_ret(), 0, 0);
        return SpecVerdict::Checked;
    }

    // Pages returning to the host: donated metadata, per-vCPU memcache
    // pages, and the stage 2 table nodes (the root is among the donated).
    // Table nodes inside the hypervisor carveout came from the pool, not
    // the host (firmware mappings are built before any memcache exists):
    // they go back to the pool and never touch the host's table. Firmware
    // pages themselves are *retired*, not returned — handled below.
    let (hyp_base, hyp_nr) = g_pre.globals.hyp_range;
    let in_hyp_range = |pfn: u64| pfn >= hyp_base && pfn < hyp_base + hyp_nr;
    let mut returned: BTreeSet<u64> = vm_pre.donated.iter().copied().collect();
    for v in &vm_pre.vcpus {
        if let GhostVcpu::Present { memcache, .. } = v {
            returned.extend(memcache.iter().copied());
        }
    }
    returned.extend(
        vm_pre
            .pgt
            .table_pages
            .iter()
            .copied()
            .filter(|&pfn| !in_hyp_range(pfn)),
    );

    g_post.copy_host_from(g_pre);
    g_post.copy_pkvm_from(g_pre);
    let host = g_post.host.as_mut().expect("initialised");
    let pkvm = g_post.pkvm.as_mut().expect("initialised");
    for &pfn in &returned {
        let pa = pfn << PAGE_SHIFT;
        host.annot.remove(pa, 1);
        pkvm.pgt.mapping.remove(g_pre.globals.hyp_va(pa), 1);
    }
    // Firmware pages never return to the host: they are wiped and retired
    // to the hypervisor, so their guest annotation flips to pKVM's.
    for &pfn in &vm_pre.firmware {
        let pa = pfn << PAGE_SHIFT;
        host.annot.remove(pa, 1);
        host.annot.insert_new(Maplet {
            ia: pa,
            nr_pages: 1,
            target: MapletTarget::Annotated {
                owner: OwnerId::HYP,
            },
        });
    }
    let mut table: Vec<(Handle, usize)> = table_pre
        .iter()
        .copied()
        .filter(|&(h, _)| h != handle)
        .collect();
    table.sort_unstable();
    g_post.vm_table = Some(table);
    // The VM component's final recorded state: emptied stage 2, drained
    // memcaches and firmware, registers preserved.
    let mut vm = vm_pre.clone();
    vm.pgt = AbstractPgtable::default();
    vm.firmware.clear();
    for v in &mut vm.vcpus {
        if let GhostVcpu::Present { memcache, .. } = v {
            memcache.clear();
        }
    }
    g_post.vms.insert(handle, vm);
    crate::spec::spec_hit("spec/teardown_vm/ok");
    epilogue_host_call(g_pre, call, g_post, 0, 0, 0);
    SpecVerdict::Checked
}
