//! Reified specification functions (§4).
//!
//! One computable function per exception handler, from the recorded
//! *pre* ghost state (plus the call data resolving nondeterminism, §4.3)
//! to the expected *post* ghost state. The functions are pure in the
//! paper's sense: they read only their ghost arguments, never the
//! implementation state, and they only *write* the components the handler
//! is allowed to change — everything else stays absent, so the ternary
//! check (§4.2.2) verifies it was left untouched.
//!
//! The module split follows the handler families:
//! [`memory`] (share/unshare/reclaim/top-up/map-guest),
//! [`vm_lifecycle`] (init_vm/init_vcpu/teardown),
//! [`vcpu`] (load/put/run), and [`host_abort`] (the loosely-specified
//! mapping-on-demand).

pub mod firmware;
pub mod host_abort;
pub mod memory;
pub mod vcpu;
pub mod vm_lifecycle;

use pkvm_aarch64::attrs::{MemType, Perms};
use pkvm_aarch64::esr::ExceptionClass;
use pkvm_hyp::error::Errno;
use pkvm_hyp::hypercalls as hc;
use pkvm_hyp::owner::PageState;

use crate::calldata::GhostCallData;
use crate::maplet::AbsAttrs;
use crate::state::{GhostHost, GhostState};

/// Records a specification coverage point (the spec-side half of the
/// paper's custom coverage infrastructure, reported by `pkvm-harness`).
#[inline]
pub(crate) fn spec_hit(point: &'static str) {
    pkvm_hyp::cov::hit(point);
}

/// Every coverage point the specification functions can hit; one per
/// distinct return path (success, each error, each loose/`Unchecked`
/// case). The spec-coverage percentages of the evaluation are computed
/// over this list.
pub const SPEC_COV_POINTS: &[&str] = &[
    "spec/host_abort",
    "spec/host_map_guest/einval",
    "spec/host_map_guest/enoent",
    "spec/host_map_guest/eperm",
    "spec/host_map_guest/ok",
    "spec/host_map_guest/param",
    "spec/host_map_guest/unchecked",
    "spec/host_map_guest/unchecked2",
    "spec/host_reclaim_page/eperm",
    "spec/host_reclaim_page/impossible",
    "spec/host_reclaim_page/ok",
    "spec/host_reclaim_page/unchecked",
    "spec/host_reclaim_page/unchecked2",
    "spec/host_share_hyp/impossible",
    "spec/host_share_hyp/ok",
    "spec/host_share_hyp/ok2",
    "spec/host_share_hyp/unchecked",
    "spec/host_unshare_hyp/eperm",
    "spec/host_unshare_hyp/ok",
    "spec/host_unshare_hyp/unchecked",
    "spec/init_vcpu/eexist",
    "spec/init_vcpu/einval",
    "spec/init_vcpu/enoent",
    "spec/init_vcpu/eperm",
    "spec/init_vcpu/ok",
    "spec/init_vcpu/unchecked",
    "spec/init_vcpu/unchecked2",
    "spec/init_vm/einval",
    "spec/init_vm/einval2",
    "spec/init_vm/eperm",
    "spec/init_vm/ok",
    "spec/init_vm/unchecked",
    "spec/init_vm/unchecked2",
    "spec/init_vm/unchecked3",
    "spec/smc",
    "spec/transfer/donate_host",
    "spec/transfer/donate_hyp",
    "spec/transfer/firmware",
    "spec/transfer/guest_share_host",
    "spec/transfer/guest_unshare_host",
    "spec/transfer/map_guest_owned",
    "spec/transfer/map_guest_shared",
    "spec/transfer/reclaim",
    "spec/transfer/share_hyp",
    "spec/transfer/unshare_hyp",
    "spec/teardown_vm/ebusy",
    "spec/teardown_vm/enoent",
    "spec/teardown_vm/ok",
    "spec/teardown_vm/unchecked",
    "spec/teardown_vm/unchecked2",
    "spec/topup_memcache/eperm",
    "spec/topup_memcache/impossible",
    "spec/topup_memcache/ok",
    "spec/topup_memcache/ok2",
    "spec/topup_memcache/unchecked",
    "spec/unknown_hvc",
    "spec/vcpu_load/ebusy",
    "spec/vcpu_load/ebusy2",
    "spec/vcpu_load/einval",
    "spec/vcpu_load/enoent",
    "spec/vcpu_load/enoent2",
    "spec/vcpu_load/ok",
    "spec/vcpu_load/unchecked",
    "spec/vcpu_get_reg/enoent",
    "spec/vcpu_get_reg/einval",
    "spec/vcpu_get_reg/ok",
    "spec/vcpu_set_reg/enoent",
    "spec/vcpu_set_reg/einval",
    "spec/vcpu_set_reg/ok",
    "spec/vcpu_put/enoent",
    "spec/vcpu_put/ok",
    "spec/vcpu_run/enoent",
    "spec/vcpu_run/exit_continue",
    "spec/vcpu_run/exit_guest_hvc",
    "spec/vcpu_run/exit_mem_abort",
    "spec/vcpu_run/exit_wfi",
    "spec/vcpu_run/unchecked",
    "spec/vcpu_run/unchecked2",
    "spec/vcpu_run/unchecked3",
    "spec/vcpu_run/unchecked4",
    "spec/vcpu_run/unchecked5",
    "spec/vm_load_firmware/ebusy",
    "spec/vm_load_firmware/einval",
    "spec/vm_load_firmware/enoent",
    "spec/vm_load_firmware/eperm",
    "spec/vm_load_firmware/eperm2",
    "spec/vm_load_firmware/ok",
    "spec/vm_load_firmware/unchecked",
    "spec/vm_load_firmware/unchecked2",
];

/// The result of running a specification function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecVerdict {
    /// A valid expected post-state was written; check it.
    Checked,
    /// The specification is deliberately loose here (e.g. the
    /// implementation reported `-ENOMEM`, which the spec permits almost
    /// anywhere): skip the check. This is the `false` return of Fig. 5,
    /// enabling gradual specification.
    Unchecked(&'static str),
    /// The specification itself found the recorded pre-state/call
    /// combination impossible for a correct hypervisor (e.g. a linear-map
    /// address collision): report a violation outright.
    Impossible(String),
}

/// `-ENOMEM` as the register return value.
pub(crate) const ENOMEM_RET: u64 = Errno::ENOMEM.to_ret();

/// Returns `true` when the implementation reported an out-of-memory
/// failure, which the loose specification accepts without further checking.
pub(crate) fn impl_reported_enomem(call: &GhostCallData) -> bool {
    call.ret() == ENOMEM_RET
}

/// Abstract attributes the host's stage 2 carries for a page of `state`.
pub(crate) fn abs_host_attrs(is_memory: bool, state: PageState) -> AbsAttrs {
    if is_memory {
        AbsAttrs {
            perms: Perms::RWX,
            memtype: MemType::Normal,
            state: Some(state),
        }
    } else {
        AbsAttrs {
            perms: Perms::RW,
            memtype: MemType::Device,
            state: Some(state),
        }
    }
}

/// Abstract attributes of a pKVM stage 1 mapping (`RW- M` in the diff
/// notation of §4.2.2).
pub(crate) fn abs_hyp_attrs(is_memory: bool, state: PageState) -> AbsAttrs {
    AbsAttrs {
        perms: Perms::RW,
        memtype: if is_memory {
            MemType::Normal
        } else {
            MemType::Device
        },
        state: Some(state),
    }
}

/// Abstract attributes of a guest stage 2 mapping.
pub(crate) fn abs_guest_attrs(state: PageState) -> AbsAttrs {
    AbsAttrs {
        perms: Perms::RWX,
        memtype: MemType::Normal,
        state: Some(state),
    }
}

/// The host-exclusive-ownership precondition of Fig. 5 step (2): the page
/// is real memory, not annotated away, and not in the shared map.
pub(crate) fn is_owned_exclusively_by_host(host: &GhostHost, st: &GhostState, phys: u64) -> bool {
    st.globals.is_ram(phys)
        && host.annot.lookup(phys).is_none()
        && host.shared.lookup(phys).is_none()
}

/// Writes the SMCCC return epilogue into the computed post-state: the
/// local component is copied from the pre-state, then `x0 = 0`, `x1 =
/// ret`, and the remaining argument registers are scrubbed (or carry
/// vcpu_run's exit details) — exactly the register delta visible in the
/// paper's example diff.
pub(crate) fn epilogue_host_call(
    pre: &GhostState,
    call: &GhostCallData,
    post: &mut GhostState,
    ret: u64,
    x2: u64,
    x3: u64,
) {
    post.copy_local_from(pre, call.cpu);
    let l = post.locals.entry(call.cpu).or_default();
    l.regs.set(0, 0);
    l.regs.set(1, ret);
    l.regs.set(2, x2);
    l.regs.set(3, x3);
}

/// Specification of an unknown hypercall: `-EOPNOTSUPP`, no state change.
fn unknown_hvc(pre: &GhostState, call: &GhostCallData, post: &mut GhostState) -> SpecVerdict {
    spec_hit("spec/unknown_hvc");
    epilogue_host_call(pre, call, post, Errno::EOPNOTSUPP.to_ret(), 0, 0);
    SpecVerdict::Checked
}

/// The top-level specification function: dispatches on the trap's
/// exception class and hypercall id, mirroring the implementation's
/// `handle_trap` (§4.2.1).
pub fn compute_post(pre: &GhostState, call: &GhostCallData, post: &mut GhostState) -> SpecVerdict {
    match call.esr.ec() {
        Some(ExceptionClass::Hvc64) => {
            let func = call.regs_pre.get(0);
            match func {
                hc::HVC_HOST_SHARE_HYP => memory::host_share_hyp(pre, call, post),
                hc::HVC_HOST_UNSHARE_HYP => memory::host_unshare_hyp(pre, call, post),
                hc::HVC_HOST_RECLAIM_PAGE => memory::host_reclaim_page(pre, call, post),
                hc::HVC_TOPUP_MEMCACHE => memory::topup_memcache(pre, call, post),
                hc::HVC_HOST_MAP_GUEST => memory::host_map_guest(pre, call, post),
                hc::HVC_INIT_VM => vm_lifecycle::init_vm(pre, call, post),
                hc::HVC_INIT_VCPU => vm_lifecycle::init_vcpu(pre, call, post),
                hc::HVC_TEARDOWN_VM => vm_lifecycle::teardown_vm(pre, call, post),
                hc::HVC_VCPU_LOAD => vcpu::vcpu_load(pre, call, post),
                hc::HVC_VCPU_PUT => vcpu::vcpu_put(pre, call, post),
                hc::HVC_VCPU_RUN => vcpu::vcpu_run(pre, call, post),
                hc::HVC_VCPU_GET_REG => vcpu::vcpu_get_reg(pre, call, post),
                hc::HVC_VCPU_SET_REG => vcpu::vcpu_set_reg(pre, call, post),
                hc::HVC_VM_LOAD_FIRMWARE => firmware::vm_load_firmware(pre, call, post),
                _ => unknown_hvc(pre, call, post),
            }
        }
        Some(ExceptionClass::DataAbortLowerEl) | Some(ExceptionClass::InstAbortLowerEl) => {
            host_abort::host_abort(pre, call, post)
        }
        Some(ExceptionClass::Smc64) => {
            spec_hit("spec/smc");
            // Forwarded to firmware: the hypervisor state is untouched and
            // the host context returns unchanged.
            post.copy_local_from(pre, call.cpu);
            SpecVerdict::Checked
        }
        None => SpecVerdict::Unchecked("unmodelled exception class"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GhostGlobals;
    use pkvm_aarch64::esr::Esr;
    use pkvm_aarch64::sysreg::GprFile;

    #[test]
    fn unknown_hypercall_spec() {
        let globals = GhostGlobals::default();
        let mut pre = GhostState::blank(&globals);
        let mut regs = GprFile::default();
        regs.set(0, 0xc600_ffff);
        pre.locals.entry(0).or_default().regs = regs;
        let call = GhostCallData::new(0, Esr::hvc64(0), None, regs);
        let mut post = GhostState::blank(&globals);
        assert_eq!(compute_post(&pre, &call, &mut post), SpecVerdict::Checked);
        assert_eq!(post.read_gpr(0, 1), Errno::EOPNOTSUPP.to_ret());
        assert_eq!(post.read_gpr(0, 0), 0);
        assert!(post.host.is_none() && post.pkvm.is_none());
    }

    #[test]
    fn smc_spec_changes_nothing() {
        let globals = GhostGlobals::default();
        let mut pre = GhostState::blank(&globals);
        let mut regs = GprFile::default();
        regs.set(0, 0x8400_0001);
        pre.locals.entry(0).or_default().regs = regs;
        let call = GhostCallData::new(0, Esr::smc64(), None, regs);
        let mut post = GhostState::blank(&globals);
        assert_eq!(compute_post(&pre, &call, &mut post), SpecVerdict::Checked);
        assert_eq!(post.locals.get(&0), pre.locals.get(&0));
    }
}
