//! Specification of the host stage 2 abort handler: the deliberately
//! *loose* one (§3.1).
//!
//! pKVM's mapping-on-demand may map more than the faulting page (block
//! mappings), may split blocks, and may fail transiently — so "specifying
//! exactly the implementation behaviour would be over-fitting". The ghost
//! host component was designed for exactly this: it records only the
//! deterministic sub-maps (owner annotations; shared/borrowed pages), and
//! the abstraction function *checks* that whatever else is mapped is a
//! legal identity mapping of real memory. The spec of the abort handler
//! is then simply: **the tracked host state does not change**, and the
//! host's registers are untouched.

use crate::calldata::GhostCallData;
use crate::state::GhostState;

use super::SpecVerdict;

/// Executable specification of the host stage 2 abort handler.
pub fn host_abort(
    g_pre: &GhostState,
    call: &GhostCallData,
    g_post: &mut GhostState,
) -> SpecVerdict {
    crate::spec::spec_hit("spec/host_abort");
    // The handler may or may not have taken the host lock (a raced stage 1
    // re-walk bails out before it); where it did, the tracked abstraction
    // must be exactly preserved.
    if g_pre.host.is_some() {
        g_post.copy_host_from(g_pre);
    }
    // The handler never touches the saved host context: any mapping it
    // installed is observed only through the (checked-legal) retry.
    g_post.copy_local_from(g_pre, call.cpu);
    SpecVerdict::Checked
}
