//! The runtime oracle: recording ghost states and checking the spec.
//!
//! [`Oracle`] implements the hypervisor's instrumentation points
//! ([`GhostHooks`]) and realises the timeline of the paper's Fig. 6: at
//! trap entry it starts recording a pre-state (1); each component lock
//! acquisition records that component's abstraction into the pre-state
//! (2)-(3); each release records into the post-state (4)-(5); at trap exit
//! (6) it collects the final thread-local state and call data, computes
//! the expected post-state with the specification function (7), and
//! compares (8) — the ternary check.
//!
//! It also maintains the two §4.4 invariants: a single *shared copy* of
//! the entire ghost state, against which every acquisition checks that
//! nothing changed while the lock was free (non-interference), and the
//! per-component page-table footprints (separation).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::attrs::Stage;
use pkvm_aarch64::esr::Esr;
use pkvm_aarch64::sync::Mutex;
use pkvm_aarch64::sysreg::GprFile;
use pkvm_hyp::hooks::{Component, ComponentView, GhostHooks, HookCtx, VcpuView};
use pkvm_hyp::hypercalls;
use pkvm_hyp::machine::MachineConfig;
use pkvm_hyp::mm::compute_layout;
use pkvm_hyp::owner::PageState;
use pkvm_hyp::vm::Handle;

use crate::abscache::{AbsCache, CacheKey, CacheStats};
use crate::abstraction::{
    abstract_host, abstract_host_from_interp, abstract_hyp, abstract_vm, abstract_vm_with_pgt,
    interpret_pgtable, Anomaly,
};
use crate::calldata::GhostCallData;
use crate::check::{check_trap, normalize, Violation};
use crate::containment::{contain, Disposition, Quarantine};
use crate::diff::diff_states;
use crate::event::{Event, EventSink, EventStream};
use crate::maplet::{Maplet, MapletTarget};
use crate::spec::{abs_hyp_attrs, compute_post, SpecVerdict};
use crate::state::{
    AbstractPgtable, GhostCpu, GhostGlobals, GhostHost, GhostLoadedVcpu, GhostPkvm, GhostState,
};

/// Oracle configuration switches.
///
/// Construct with [`OracleOpts::builder`] (or [`Default`]): the builder
/// keeps call sites valid as switches are added.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct OracleOpts {
    /// Check that lock-protected state is unchanged between critical
    /// sections (§4.4 invariant 1).
    pub check_noninterference: bool,
    /// Check the page-table footprint separation (§4.4 invariant 2).
    pub check_separation: bool,
    /// Serve component abstractions from the incremental cache
    /// ([`AbsCache`]), re-interpreting only write-log-dirtied subtrees.
    pub incremental_abstraction: bool,
    /// Run the full and incremental abstractions side by side and report
    /// any divergence as an oracle self-check violation. Implies the
    /// cache is maintained; the *full* result feeds the checks.
    pub shadow_validation: bool,
    /// Upper bound on retained violation reports; excess reports are
    /// dropped and counted in `OracleStats::violations_dropped` so a
    /// pathological run cannot exhaust memory through its own findings.
    pub violation_cap: usize,
    /// Per-trap budget of lock events processed at full fidelity. Beyond
    /// it the oracle degrades: remaining events evict their component
    /// from the shared copy instead of abstracting it, and the trap's
    /// check is skipped (`degraded_traps`). Default is effectively
    /// unlimited.
    pub trap_check_budget: u64,
    /// Consecutive contained panics of one component (or spec step)
    /// before it is quarantined.
    pub quarantine_threshold: u32,
    /// How many traps a quarantined component sits out before it is
    /// recovered by re-seeding from a full abstraction pass.
    pub quarantine_traps: u64,
}

impl Default for OracleOpts {
    fn default() -> Self {
        Self {
            check_noninterference: true,
            check_separation: true,
            incremental_abstraction: false,
            shadow_validation: false,
            violation_cap: 4096,
            trap_check_budget: u64::MAX,
            quarantine_threshold: 3,
            quarantine_traps: 16,
        }
    }
}

impl OracleOpts {
    /// Starts a builder from the defaults.
    pub fn builder() -> OracleOptsBuilder {
        OracleOptsBuilder(OracleOpts::default())
    }

    fn uses_cache(&self) -> bool {
        self.incremental_abstraction || self.shadow_validation
    }
}

/// Builder for [`OracleOpts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleOptsBuilder(OracleOpts);

impl OracleOptsBuilder {
    /// Toggle the §4.4 non-interference check (default on).
    pub fn check_noninterference(mut self, on: bool) -> Self {
        self.0.check_noninterference = on;
        self
    }

    /// Toggle the §4.4 footprint-separation check (default on).
    pub fn check_separation(mut self, on: bool) -> Self {
        self.0.check_separation = on;
        self
    }

    /// Toggle the incremental abstraction cache (default off).
    pub fn incremental_abstraction(mut self, on: bool) -> Self {
        self.0.incremental_abstraction = on;
        self
    }

    /// Toggle shadow validation of the incremental cache (default off).
    pub fn shadow_validation(mut self, on: bool) -> Self {
        self.0.shadow_validation = on;
        self
    }

    /// Bound the retained violation log (default 4096; minimum 1).
    pub fn violation_cap(mut self, cap: usize) -> Self {
        self.0.violation_cap = cap.max(1);
        self
    }

    /// Bound the lock events processed at full fidelity per trap
    /// (default unlimited).
    pub fn trap_check_budget(mut self, budget: u64) -> Self {
        self.0.trap_check_budget = budget;
        self
    }

    /// Consecutive contained panics before quarantine (default 3).
    pub fn quarantine_threshold(mut self, n: u32) -> Self {
        self.0.quarantine_threshold = n;
        self
    }

    /// Quarantine duration in traps (default 16).
    pub fn quarantine_traps(mut self, n: u64) -> Self {
        self.0.quarantine_traps = n;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> OracleOpts {
        self.0
    }
}

/// One line of the oracle's trap trace: what was checked and how it went.
#[derive(Clone, Debug)]
pub struct TrapRecord {
    /// Hardware thread the trap ran on.
    pub cpu: usize,
    /// Handler name (hypercall name, `host_abort`, `smc`, ...).
    pub name: String,
    /// `Ok`: checked and clean. `Err`: number of violations, or the
    /// looseness reason when the check was skipped.
    pub outcome: TrapOutcome,
}

/// How one trap's check concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrapOutcome {
    /// Spec computed and matched.
    Clean,
    /// Spec computed; this many violations were recorded.
    Violated(usize),
    /// The loose specification skipped the check.
    Unchecked(String),
}

/// Counters reported alongside violations (for the evaluation harness).
#[derive(Debug, Default)]
pub struct OracleStats {
    /// Traps whose spec was computed and checked.
    pub traps_checked: AtomicU64,
    /// Traps skipped under the loose specification (`Unchecked`).
    pub traps_unchecked: AtomicU64,
    /// Component abstractions computed (lock events).
    pub abstractions: AtomicU64,
    /// Individual `READ_ONCE` values recorded.
    pub read_onces: AtomicU64,
    /// Per-component checks skipped because a foreign trap updated the
    /// component between two of the checked trap's critical sections
    /// (the atomic per-trap comparison does not apply).
    pub interleaved_skips: AtomicU64,
    /// Oracle-internal panics caught and converted into
    /// [`Violation::OracleInternal`] instead of unwinding the caller.
    pub contained_panics: AtomicU64,
    /// Hook events skipped because their component (or spec step) was
    /// quarantined after repeated contained panics.
    pub quarantined_skips: AtomicU64,
    /// Quarantined components recovered by re-seeding from a full
    /// abstraction pass once their bench time expired.
    pub quarantine_recoveries: AtomicU64,
    /// Violation reports dropped because the bounded log was full.
    pub violations_dropped: AtomicU64,
    /// Traps whose check was skipped because the per-trap check budget
    /// ran out mid-trap.
    pub degraded_traps: AtomicU64,
    /// Lock events degraded to a shared-copy eviction (no abstraction)
    /// because the per-trap check budget was exhausted.
    pub budget_degraded_events: AtomicU64,
}

/// A plain-value snapshot of the oracle's resilience counters: everything
/// that says "the oracle absorbed trouble without crashing". Campaign
/// reports carry this so a chaos sweep can distinguish *degraded but
/// safe* from *saw nothing*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceSnapshot {
    /// See [`OracleStats::contained_panics`].
    pub contained_panics: u64,
    /// See [`OracleStats::quarantined_skips`].
    pub quarantined_skips: u64,
    /// See [`OracleStats::quarantine_recoveries`].
    pub quarantine_recoveries: u64,
    /// See [`OracleStats::violations_dropped`].
    pub violations_dropped: u64,
    /// See [`OracleStats::degraded_traps`].
    pub degraded_traps: u64,
    /// See [`OracleStats::budget_degraded_events`].
    pub budget_degraded_events: u64,
    /// See [`OracleStats::interleaved_skips`].
    pub interleaved_skips: u64,
}

impl ResilienceSnapshot {
    /// `true` when any degradation or containment machinery fired.
    pub fn degraded(&self) -> bool {
        self.contained_panics
            + self.quarantined_skips
            + self.quarantine_recoveries
            + self.violations_dropped
            + self.degraded_traps
            + self.budget_degraded_events
            > 0
    }
}

impl OracleStats {
    /// Snapshots the resilience counters.
    pub fn resilience(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            contained_panics: self.contained_panics.load(Ordering::Relaxed),
            quarantined_skips: self.quarantined_skips.load(Ordering::Relaxed),
            quarantine_recoveries: self.quarantine_recoveries.load(Ordering::Relaxed),
            violations_dropped: self.violations_dropped.load(Ordering::Relaxed),
            degraded_traps: self.degraded_traps.load(Ordering::Relaxed),
            budget_degraded_events: self.budget_degraded_events.load(Ordering::Relaxed),
            interleaved_skips: self.interleaved_skips.load(Ordering::Relaxed),
        }
    }
}

/// Key of one shared-copy component (the update-stamp granularity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum CompKey {
    Host,
    Pkvm,
    VmTable,
    Vm(Handle),
}

/// The spec's component naming for a lock-protected [`Component`]: the
/// same strings `check_trap` produces (`host`, `pkvm`, `vm_table`,
/// `vm[<handle>]`), so every report — and every quarantine key — greps
/// the same way.
fn comp_name(comp: Component) -> String {
    match comp {
        Component::Host => "host".into(),
        Component::Hyp => "pkvm".into(),
        Component::VmTable => "vm_table".into(),
        Component::Vm(h) => format!("vm[{h}]"),
    }
}

/// The shared-copy key of a lock-protected [`Component`].
fn comp_key_of(comp: Component) -> CompKey {
    match comp {
        Component::Host => CompKey::Host,
        Component::Hyp => CompKey::Pkvm,
        Component::VmTable => CompKey::VmTable,
        Component::Vm(h) => CompKey::Vm(h),
    }
}

/// Parses the spec's component naming (`host`, `pkvm`, `vm_table`,
/// `vm[<handle>]`) into a shared-copy key. `locals[..]` and malformed
/// names yield `None`.
fn comp_key_of_name(name: &str) -> Option<CompKey> {
    match name {
        "host" => Some(CompKey::Host),
        "pkvm" => Some(CompKey::Pkvm),
        "vm_table" => Some(CompKey::VmTable),
        c => c
            .strip_prefix("vm[")
            .and_then(|rest| rest.strip_suffix(']'))
            .and_then(|h| h.parse::<Handle>().ok())
            .map(CompKey::Vm),
    }
}

impl ComponentValue {
    fn key(&self) -> CompKey {
        match self {
            ComponentValue::Host(_) => CompKey::Host,
            ComponentValue::Pkvm(_) => CompKey::Pkvm,
            ComponentValue::VmTable(..) => CompKey::VmTable,
            ComponentValue::Vm(h, ..) => CompKey::Vm(*h),
        }
    }
}

/// The single shared copy of the ghost state (§4.4 invariant 1), plus a
/// monotonic update stamp per component so concurrent traps can tell
/// whether a component moved underneath them while they ran.
struct SharedGhost {
    state: GhostState,
    versions: HashMap<CompKey, u64>,
    tick: u64,
    /// Incarnation id ([`pkvm_hyp::vm::Vm::uniq`]) of the VM whose state
    /// `state.vms[handle]` currently holds. Handles are slot-derived and
    /// reused after teardown, and `do_teardown_vm` releases the dying VM's
    /// lock *after* dropping the table lock, so without this a dead VM's
    /// final abstraction could overwrite (and later be compared against) a
    /// fresh VM that concurrently reused the handle.
    vm_uniq: HashMap<Handle, u64>,
}

impl SharedGhost {
    /// Records `value` into the shared copy and stamps the component.
    ///
    /// VM components are gated by incarnation: a recording from an older
    /// incarnation of a (reused) handle never lands on top of a newer
    /// one, and a release from a VM no longer in the recorded table (the
    /// tail of teardown) is dropped rather than resurrecting the dead
    /// VM's state. Recording the VM table prunes the state of every VM
    /// that left it.
    fn set(&mut self, value: &ComponentValue) {
        match value {
            ComponentValue::VmTable(vms, uniqs) => {
                let dead: Vec<Handle> = self
                    .state
                    .vms
                    .keys()
                    .copied()
                    .filter(|h| !vms.iter().any(|&(live, _)| live == *h))
                    .collect();
                for h in dead {
                    self.state.vms.remove(&h);
                    self.stamp(CompKey::Vm(h));
                }
                self.vm_uniq
                    .retain(|h, _| vms.iter().any(|&(live, _)| live == *h));
                for &(h, uniq) in uniqs {
                    if let Some(old) = self.vm_uniq.insert(h, uniq) {
                        if old != uniq && self.state.vms.remove(&h).is_some() {
                            // The stored state belonged to a previous
                            // incarnation of this handle; not comparable.
                            self.stamp(CompKey::Vm(h));
                        }
                    }
                }
            }
            ComponentValue::Vm(h, uniq, _) => {
                match self.vm_uniq.get(h) {
                    Some(&stored) if stored > *uniq => return,
                    None => {
                        let live = self
                            .state
                            .vm_table
                            .as_ref()
                            .is_none_or(|t| t.iter().any(|&(lh, _)| lh == *h));
                        if !live {
                            // The tail of a teardown: the table no longer
                            // lists this VM, so its dying abstraction must
                            // not re-enter the shared copy.
                            return;
                        }
                    }
                    _ => {}
                }
                self.vm_uniq.insert(*h, *uniq);
            }
            _ => {}
        }
        self.tick += 1;
        self.versions.insert(value.key(), self.tick);
        Oracle::set_component(&mut self.state, value, false);
    }

    /// Bumps the stamp of `key` without going through a component value
    /// (deferred seeding writes the spec-computed state directly).
    fn stamp(&mut self, key: CompKey) {
        self.tick += 1;
        self.versions.insert(key, self.tick);
    }
}

struct CpuRecord {
    in_trap: bool,
    pre: GhostState,
    post: GhostState,
    call: Option<GhostCallData>,
    /// Shared-copy component stamps at trap entry: deferred seeding only
    /// lands if the component has not moved since (otherwise a concurrent
    /// trap's legitimate update would be overwritten with a stale
    /// expectation, and the next acquisition would report a spurious
    /// non-interference violation).
    versions_at_entry: HashMap<CompKey, u64>,
    /// Shared-copy stamp left by this trap's most recent release of each
    /// component, so a re-acquisition can tell whether a *foreign* trap
    /// updated the component between two of this trap's own critical
    /// sections.
    last_release: HashMap<CompKey, u64>,
    /// Components a foreign trap updated between two of this trap's
    /// critical sections. The per-trap check pretends the handler ran
    /// atomically; for these components it did not, so their comparison
    /// is skipped (the ternary check's "unchecked" answer) instead of
    /// reporting a spurious mismatch.
    interleaved: HashSet<CompKey>,
    /// Lock events processed so far within this trap (the per-trap check
    /// budget's spend counter).
    events_this_trap: u64,
    /// The budget ran out mid-trap: remaining events degrade to evictions
    /// and the trap's check is skipped.
    degraded: bool,
    /// Event-stream sequence id of this trap's `TrapEnter`, so every
    /// event and violation produced inside the trap links back to it.
    trap_seq: Option<u64>,
}

/// The runtime test oracle; install as the machine's [`GhostHooks`].
pub struct Oracle {
    /// The initialisation-time constants, derived independently from the
    /// machine configuration (the spec's own view of the correct layout).
    pub globals: GhostGlobals,
    opts: OracleOpts,
    shared: Mutex<SharedGhost>,
    cpus: Vec<Mutex<CpuRecord>>,
    footprints: Mutex<HashMap<Component, BTreeSet<u64>>>,
    abscache: Mutex<AbsCache>,
    events: Arc<EventStream>,
    quarantine: Quarantine,
    /// Counters.
    pub stats: OracleStats,
}

impl Oracle {
    /// Builds an oracle for machines booted from `config`.
    ///
    /// The globals are *derived from the configuration*, not copied from
    /// the booted machine: the oracle computes what a correct layout looks
    /// like, so layout bugs (real bug 5) surface at the boot check.
    pub fn new(config: &MachineConfig, opts: OracleOpts) -> Arc<Oracle> {
        let events = Arc::new(EventStream::new(false, opts.violation_cap));
        Oracle::with_stream(config, opts, events)
    }

    /// Like [`Oracle::new`], but recording into a caller-provided
    /// [`EventStream`] — the harness shares one stream between the proxy
    /// (driver events), the chaos engine (injections), and the oracle, so
    /// a whole campaign lands on one timeline.
    pub fn with_stream(
        config: &MachineConfig,
        opts: OracleOpts,
        events: Arc<EventStream>,
    ) -> Arc<Oracle> {
        let (last_base, last_size) = *config.dram.last().expect("config has DRAM");
        let ram_end = last_base + last_size;
        let pool_base_pfn = (ram_end - config.hyp_pool_pages * PAGE_SIZE) >> 12;
        let layout = compute_layout(PhysAddr::new(ram_end), false).expect("layout fits");
        let globals = GhostGlobals {
            nr_cpus: config.nr_cpus,
            physvirt_offset: layout.physvirt_offset,
            uart_va: layout.uart_va.bits(),
            hyp_range: (pool_base_pfn, config.hyp_pool_pages),
            ram: config.dram.clone(),
            mmio: config.mmio.clone(),
        };
        let shared = GhostState::blank(&globals);
        Arc::new(Oracle {
            cpus: (0..config.nr_cpus)
                .map(|_| {
                    Mutex::new(CpuRecord {
                        in_trap: false,
                        pre: GhostState::blank(&globals),
                        post: GhostState::blank(&globals),
                        call: None,
                        versions_at_entry: HashMap::new(),
                        last_release: HashMap::new(),
                        interleaved: HashSet::new(),
                        events_this_trap: 0,
                        degraded: false,
                        trap_seq: None,
                    })
                })
                .collect(),
            globals,
            opts,
            shared: Mutex::new(SharedGhost {
                state: shared,
                versions: HashMap::new(),
                tick: 0,
                vm_uniq: HashMap::new(),
            }),
            footprints: Mutex::new(HashMap::new()),
            abscache: Mutex::new(AbsCache::new()),
            events,
            quarantine: Quarantine::new(opts.quarantine_threshold, opts.quarantine_traps),
            stats: OracleStats::default(),
        })
    }

    /// Starts a builder for machines booted from `config`; configure the
    /// switches fluently, then [`build`](OracleBuilder::build).
    pub fn builder(config: &MachineConfig) -> OracleBuilder<'_> {
        OracleBuilder {
            config,
            opts: OracleOpts::default(),
            events: None,
        }
    }

    /// Resolution counters of the incremental abstraction cache (all zero
    /// unless `incremental_abstraction` or `shadow_validation` is on).
    pub fn cache_stats(&self) -> CacheStats {
        self.abscache.lock().stats
    }

    /// The event stream this oracle records into.
    pub fn events(&self) -> &Arc<EventStream> {
        &self.events
    }

    /// All violations recorded so far (served from the event stream's
    /// bounded log).
    pub fn violations(&self) -> Vec<Violation> {
        self.events.violations()
    }

    /// Number of violations recorded so far, without cloning the reports.
    /// A single relaxed atomic load: cheap enough for worker threads of a
    /// random-testing campaign to poll every few steps.
    pub fn violation_count(&self) -> u64 {
        self.events.violation_count()
    }

    /// Returns `true` if no violations have been recorded.
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// Drops all recorded violations (between test cases).
    pub fn clear_violations(&self) {
        self.events.clear_violations();
    }

    /// The most recent checked traps (bounded; newest last; served from
    /// the event stream's check ring).
    pub fn trace(&self) -> Vec<TrapRecord> {
        self.events.trap_records()
    }

    fn push_trace(&self, trap: Option<u64>, rec: TrapRecord) {
        self.events.emit(
            rec.cpu as u32,
            trap,
            Event::Check {
                cpu: rec.cpu,
                name: rec.name,
                outcome: rec.outcome,
            },
        );
    }

    fn report(&self, v: Violation) {
        self.report_all_at(0, None, vec![v]);
    }

    fn report_at(&self, cpu: usize, trap: Option<u64>, v: Violation) {
        self.report_all_at(cpu, trap, vec![v]);
    }

    fn report_all_at(&self, cpu: usize, trap: Option<u64>, mut new: Vec<Violation>) {
        self.annotate_vm_uniq(&mut new);
        for v in new {
            if !self.events.violation(cpu as u32, trap, v) {
                self.stats
                    .violations_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn report_anomalies(
        &self,
        cpu: usize,
        trap: Option<u64>,
        context: &str,
        anomalies: Vec<Anomaly>,
    ) {
        self.report_all_at(
            cpu,
            trap,
            anomalies
                .into_iter()
                .map(|a| Violation::AbstractionAnomaly {
                    seq: None,
                    context: context.into(),
                    anomaly: a,
                })
                .collect(),
        );
    }

    /// Fills in the VM incarnation id on reports about a `vm[<handle>]`
    /// component, from the shared copy's incarnation table. (Reports that
    /// already know their incarnation keep it.)
    fn annotate_vm_uniq(&self, vs: &mut [Violation]) {
        let wants = |v: &Violation| {
            v.vm_uniq().is_none()
                && matches!(
                    v.component().and_then(comp_key_of_name),
                    Some(CompKey::Vm(_))
                )
        };
        if !vs.iter().any(wants) {
            return;
        }
        let guard = self.shared.lock();
        for v in vs.iter_mut() {
            if let Some(CompKey::Vm(h)) = v.component().and_then(comp_key_of_name) {
                if let Some(&u) = guard.vm_uniq.get(&h) {
                    v.set_vm_uniq(u);
                }
            }
        }
    }

    /// Runs one oracle step with panics contained: a panic becomes a
    /// [`Violation::OracleInternal`] and a strike against `key`'s
    /// quarantine record, never an unwind into the hypervisor.
    fn guarded(&self, key: &str, f: impl FnOnce()) {
        match contain(f) {
            Ok(()) => self.quarantine.record_success(key),
            Err(payload) => {
                self.stats.contained_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine.record_failure(key);
                self.report(Violation::OracleInternal {
                    seq: None,
                    component: key.to_string(),
                    payload,
                });
            }
        }
    }

    /// Sequence id of the trap currently executing on `cpu`, if any.
    fn current_trap(&self, cpu: usize) -> Option<u64> {
        let rec = self.cpus[cpu].lock();
        if rec.in_trap {
            rec.trap_seq
        } else {
            None
        }
    }

    /// Degrades one lock event: instead of abstracting the component, its
    /// entry is evicted from the shared copy (and stamped), so nothing
    /// stale is ever compared later. Used when the component is
    /// quarantined or the per-trap budget ran out — the cheap-but-safe
    /// fallback.
    fn evict_shared(&self, comp: Component) {
        let key = comp_key_of(comp);
        let mut shared = self.shared.lock();
        match key {
            CompKey::Host => shared.state.host = None,
            CompKey::Pkvm => shared.state.pkvm = None,
            CompKey::VmTable => shared.state.vm_table = None,
            CompKey::Vm(h) => {
                shared.state.vms.remove(&h);
            }
        }
        shared.stamp(key);
    }

    /// Accounts one lock event against the per-trap check budget. `true`
    /// means the budget is spent: the caller must degrade this event.
    fn budget_exhausted(&self, cpu: usize) -> bool {
        let mut rec = self.cpus[cpu].lock();
        if !rec.in_trap {
            return false;
        }
        rec.events_this_trap += 1;
        if rec.events_this_trap > self.opts.trap_check_budget {
            rec.degraded = true;
            true
        } else {
            false
        }
    }

    /// Bookkeeping for a lock event skipped under quarantine: count it,
    /// evict the component so nothing stale is compared, and mark it
    /// interleaved so the running trap's check ignores it.
    fn note_quarantine_skip(&self, ctx: &HookCtx<'_>, comp: Component) {
        self.stats.quarantined_skips.fetch_add(1, Ordering::Relaxed);
        self.evict_shared(comp);
        let mut rec = self.cpus[ctx.cpu].lock();
        if rec.in_trap {
            rec.interleaved.insert(comp_key_of(comp));
        }
    }

    /// Number of components (or spec steps) currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.quarantine.active()
    }

    /// Approximate resident size of the ghost state, in bytes (for the
    /// paper's memory-impact measurement).
    pub fn approx_ghost_bytes(&self) -> usize {
        fn state_bytes(s: &GhostState) -> usize {
            let mapping = |m: &crate::mapping::Mapping| m.len() * core::mem::size_of::<Maplet>();
            let mut n = core::mem::size_of::<GhostState>();
            if let Some(h) = &s.host {
                n += mapping(&h.annot) + mapping(&h.shared) + h.table_pages.len() * 8;
            }
            if let Some(p) = &s.pkvm {
                n += mapping(&p.pgt.mapping) + p.pgt.table_pages.len() * 8;
            }
            for vm in s.vms.values() {
                n += mapping(&vm.pgt.mapping) + vm.pgt.table_pages.len() * 8;
                n += vm.vcpus.len() * core::mem::size_of::<crate::state::GhostVcpu>();
            }
            n += s.locals.len() * core::mem::size_of::<GhostCpu>();
            n
        }
        let mut total = state_bytes(&self.shared.lock().state);
        for c in &self.cpus {
            let rec = c.lock();
            total += state_bytes(&rec.pre) + state_bytes(&rec.post);
        }
        total
    }

    /// The component abstraction function: dispatches on the view the
    /// lock helper provided.
    fn abstract_component(
        &self,
        ctx: &HookCtx<'_>,
        trap: Option<u64>,
        comp: Component,
        view: &ComponentView,
    ) -> ComponentValue {
        self.stats.abstractions.fetch_add(1, Ordering::Relaxed);
        let cached = self.opts.uses_cache();
        let mut anomalies = Vec::new();
        let value = match view {
            ComponentView::Host { root } if cached => {
                let interp = self.cached_interp(
                    ctx,
                    trap,
                    Stage::Stage2,
                    *root,
                    CacheKey::Host,
                    &mut anomalies,
                );
                ComponentValue::Host(abstract_host_from_interp(
                    interp,
                    &self.globals,
                    &mut anomalies,
                ))
            }
            ComponentView::Host { root } => {
                ComponentValue::Host(abstract_host(ctx.mem, *root, &self.globals, &mut anomalies))
            }
            ComponentView::Hyp { root } if cached => {
                let pgt = self.cached_interp(
                    ctx,
                    trap,
                    Stage::Stage1,
                    *root,
                    CacheKey::Hyp,
                    &mut anomalies,
                );
                ComponentValue::Pkvm(GhostPkvm { pgt })
            }
            ComponentView::Hyp { root } => {
                ComponentValue::Pkvm(abstract_hyp(ctx.mem, *root, &mut anomalies))
            }
            ComponentView::VmTable { vms, uniqs } => {
                let mut v = vms.clone();
                v.sort_unstable();
                let mut u = uniqs.clone();
                u.sort_unstable();
                if cached {
                    // VM teardown is observed here: drop the interpretation
                    // of any handle no longer in the table, so a reused
                    // handle never resurrects a stale entry.
                    self.abscache
                        .lock()
                        .retain_vms(|h| v.iter().any(|&(live, _)| live == h));
                }
                ComponentValue::VmTable(v, u)
            }
            ComponentView::Vm(view) if cached => {
                let pgt = self.cached_interp(
                    ctx,
                    trap,
                    Stage::Stage2,
                    view.s2_root,
                    CacheKey::Vm(view.handle),
                    &mut anomalies,
                );
                ComponentValue::Vm(view.handle, view.uniq, abstract_vm_with_pgt(view, pgt))
            }
            ComponentView::Vm(view) => ComponentValue::Vm(
                view.handle,
                view.uniq,
                abstract_vm(ctx.mem, view, &mut anomalies),
            ),
        };
        if !anomalies.is_empty() {
            self.report_anomalies(ctx.cpu, trap, &format!("{comp:?}"), anomalies);
        }
        value
    }

    /// Interprets `root` through the incremental cache. Under shadow
    /// validation the full walk also runs; a divergence is reported as an
    /// oracle self-check violation and the full result wins, so a cache
    /// bug can never mask (or fabricate) a hypervisor bug.
    fn cached_interp(
        &self,
        ctx: &HookCtx<'_>,
        trap: Option<u64>,
        stage: Stage,
        root: PhysAddr,
        key: CacheKey,
        anomalies: &mut Vec<Anomaly>,
    ) -> AbstractPgtable {
        if !self.opts.shadow_validation {
            return self
                .abscache
                .lock()
                .interp(ctx.mem, stage, root, key, anomalies);
        }
        let mut inc_anomalies = Vec::new();
        let inc = self
            .abscache
            .lock()
            .interp(ctx.mem, stage, root, key, &mut inc_anomalies);
        let before = anomalies.len();
        let full = interpret_pgtable(ctx.mem, stage, root, anomalies);
        if inc != full || inc_anomalies != anomalies[before..] {
            self.report_at(
                ctx.cpu,
                trap,
                Violation::ShadowDivergence {
                    seq: None,
                    component: format!("{key:?}"),
                    diff: pgtable_divergence(&full, &inc, &anomalies[before..], &inc_anomalies),
                },
            );
        }
        full
    }

    fn set_component(state: &mut GhostState, value: &ComponentValue, only_if_absent: bool) {
        match value {
            ComponentValue::Host(h) => {
                if !(only_if_absent && state.host.is_some()) {
                    state.host = Some(h.clone());
                }
            }
            ComponentValue::Pkvm(p) => {
                if !(only_if_absent && state.pkvm.is_some()) {
                    state.pkvm = Some(p.clone());
                }
            }
            ComponentValue::VmTable(t, _) => {
                if !(only_if_absent && state.vm_table.is_some()) {
                    state.vm_table = Some(t.clone());
                }
            }
            ComponentValue::Vm(h, _, vm) => {
                if !(only_if_absent && state.vms.contains_key(h)) {
                    state.vms.insert(*h, vm.clone());
                }
            }
        }
    }

    fn noninterference_check(
        &self,
        cpu: usize,
        trap: Option<u64>,
        comp: Component,
        value: &ComponentValue,
    ) {
        if !self.opts.check_noninterference {
            return;
        }
        let guard = self.shared.lock();
        let shared = &guard.state;
        let (prev, now): (GhostState, GhostState) = match value {
            ComponentValue::Host(h) => {
                let Some(p) = &shared.host else { return };
                (
                    GhostState {
                        host: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        host: Some(h.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::Pkvm(p2) => {
                let Some(p) = &shared.pkvm else { return };
                (
                    GhostState {
                        pkvm: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        pkvm: Some(p2.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::VmTable(t, _) => {
                let Some(p) = &shared.vm_table else { return };
                (
                    GhostState {
                        vm_table: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        vm_table: Some(t.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::Vm(h, uniq, vm) => {
                if guard.vm_uniq.get(h).is_some_and(|&stored| stored != *uniq) {
                    // The stored state belongs to a different incarnation
                    // of this (reused) handle; nothing comparable.
                    return;
                }
                let Some(p) = shared.vms.get(h) else { return };
                let mut a = GhostState::default();
                a.vms.insert(*h, p.clone());
                let mut b = GhostState::default();
                b.vms.insert(*h, vm.clone());
                (a, b)
            }
        };
        drop(guard);
        let (prev_n, now_n) = (normalize(&prev), normalize(&now));
        if prev_n != now_n {
            let uniq = match value {
                ComponentValue::Vm(_, u, _) => Some(*u),
                _ => None,
            };
            self.report_at(
                cpu,
                trap,
                Violation::NonInterference {
                    seq: None,
                    component: comp_name(comp),
                    uniq,
                    diff: diff_states(&prev_n, &now_n),
                },
            );
        }
    }

    fn trap_name(call: &GhostCallData) -> String {
        match call.esr.ec() {
            Some(pkvm_aarch64::esr::ExceptionClass::Hvc64) => {
                hypercalls::name(call.regs_pre.get(0)).to_string()
            }
            Some(pkvm_aarch64::esr::ExceptionClass::Smc64) => "smc".into(),
            Some(_) => "host_abort".into(),
            None => "unknown".into(),
        }
    }

    fn ghost_cpu(regs: &GprFile, loaded: &Option<(Handle, usize, VcpuView)>) -> GhostCpu {
        GhostCpu {
            regs: *regs,
            loaded: loaded.as_ref().map(|(h, i, v)| GhostLoadedVcpu {
                handle: *h,
                idx: *i,
                regs: v.regs,
                memcache: v.memcache_pages.iter().map(|p| p.pfn()).collect(),
            }),
        }
    }

    /// The specification of the boot-time initial state: carveout
    /// annotated hyp-owned in the host table; carveout linear-mapped and
    /// the UART device-mapped in pKVM's table; no VMs.
    pub fn spec_boot_state(&self) -> GhostState {
        let g = &self.globals;
        let (pool_pfn, pool_pages) = g.hyp_range;
        let pool_base = pool_pfn << 12;
        let mut s = GhostState::blank(g);
        let mut host = GhostHost::default();
        host.annot.insert_new(Maplet {
            ia: pool_base,
            nr_pages: pool_pages,
            target: MapletTarget::Annotated {
                owner: pkvm_hyp::owner::OwnerId::HYP,
            },
        });
        s.host = Some(host);
        let mut pkvm = GhostPkvm::default();
        pkvm.pgt.mapping.insert_new(Maplet {
            ia: g.hyp_va(pool_base),
            nr_pages: pool_pages,
            target: MapletTarget::Mapped {
                oa: pool_base,
                attrs: abs_hyp_attrs(true, PageState::Owned),
            },
        });
        if let Some(&(uart_base, _)) = g.mmio.first() {
            pkvm.pgt.mapping.insert_new(Maplet {
                ia: g.uart_va,
                nr_pages: 1,
                target: MapletTarget::Mapped {
                    oa: uart_base,
                    attrs: abs_hyp_attrs(false, PageState::Owned),
                },
            });
        }
        s.pkvm = Some(pkvm);
        s.vm_table = Some(Vec::new());
        s
    }

    /// Checks the recorded post-boot state against [`Oracle::spec_boot_state`].
    /// Call once after `Machine::boot`. Returns `true` when it matched.
    pub fn check_boot(&self) -> bool {
        let expected = normalize(&self.spec_boot_state());
        let recorded = normalize(&self.shared.lock().state.clone());
        let mut ok = true;
        for (name, exp_has, rec_has) in [
            ("host", expected.host.is_some(), recorded.host.is_some()),
            ("pkvm", expected.pkvm.is_some(), recorded.pkvm.is_some()),
        ] {
            if exp_has && !rec_has {
                self.report(Violation::SpecMismatch {
                    seq: None,
                    trap: "boot".into(),
                    component: name.into(),
                    uniq: None,
                    diff: "component never recorded during boot".into(),
                });
                ok = false;
            }
        }
        let mut exp_cmp = expected.clone();
        exp_cmp.vm_table = None; // the VM table lock is not taken at boot
        let mut rec_cmp = recorded.clone();
        rec_cmp.vm_table = None;
        if exp_cmp.host.is_some() && rec_cmp.host.is_some() && exp_cmp != rec_cmp {
            self.report(Violation::SpecMismatch {
                seq: None,
                trap: "boot".into(),
                component: "initial state".into(),
                uniq: None,
                diff: diff_states(&exp_cmp, &rec_cmp),
            });
            ok = false;
        }
        ok
    }

    /// Seeds spec-defined but never-recorded components into the shared
    /// copy after a checked trap, so the *next* acquisition validates
    /// them. Two hardening rules apply. First, seeding runs without the
    /// component's lock, so a computed value only lands if the component
    /// has not moved since this trap entered — otherwise a concurrent
    /// trap's legitimate update would be overwritten with a stale
    /// expectation and the next acquisition would report a spurious
    /// non-interference violation. Second, a malformed component name is
    /// an oracle bug, not a hypervisor bug: it is surfaced as an
    /// [`Violation::OracleSelfCheck`] instead of panicking the run.
    fn seed_deferred(
        &self,
        trap: &str,
        deferred: &[String],
        computed: &GhostState,
        versions_at_entry: &HashMap<CompKey, u64>,
    ) {
        let mut self_check = Vec::new();
        let mut shared = self.shared.lock();
        for comp in deferred {
            let key = match comp_key_of_name(comp) {
                Some(k) => k,
                None => {
                    if comp.starts_with("vm[") {
                        self_check.push(Violation::OracleSelfCheck {
                            seq: None,
                            context: format!("deferred seeding after {trap}"),
                            detail: format!("malformed component name {comp:?}"),
                        });
                    }
                    continue;
                }
            };
            if shared.versions.get(&key) != versions_at_entry.get(&key) {
                // The component moved while this trap ran; the concurrent
                // recording is fresher than our computed expectation.
                continue;
            }
            match key {
                CompKey::Host => {
                    if let Some(h) = &computed.host {
                        shared.state.host = Some(h.clone());
                        shared.stamp(key);
                    }
                }
                CompKey::Pkvm => {
                    if let Some(p) = &computed.pkvm {
                        shared.state.pkvm = Some(p.clone());
                        shared.stamp(key);
                    }
                }
                CompKey::VmTable => {
                    if let Some(t) = &computed.vm_table {
                        shared.state.vm_table = Some(t.clone());
                        shared.stamp(key);
                    }
                }
                CompKey::Vm(h) => {
                    if let Some(vm) = computed.vms.get(&h) {
                        shared.state.vms.insert(h, vm.clone());
                        shared.stamp(key);
                    }
                }
            }
        }
        drop(shared);
        if !self_check.is_empty() {
            self.report_all_at(0, None, self_check);
        }
    }
}

/// Fluent construction of an [`Oracle`]; see [`Oracle::builder`].
pub struct OracleBuilder<'a> {
    config: &'a MachineConfig,
    opts: OracleOpts,
    events: Option<Arc<EventStream>>,
}

impl OracleBuilder<'_> {
    /// Replaces the accumulated switches wholesale.
    pub fn opts(mut self, opts: OracleOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Records into a shared [`EventStream`] instead of a private one.
    pub fn events(mut self, stream: Arc<EventStream>) -> Self {
        self.events = Some(stream);
        self
    }

    /// Toggle the §4.4 non-interference check (default on).
    pub fn check_noninterference(mut self, on: bool) -> Self {
        self.opts.check_noninterference = on;
        self
    }

    /// Toggle the §4.4 footprint-separation check (default on).
    pub fn check_separation(mut self, on: bool) -> Self {
        self.opts.check_separation = on;
        self
    }

    /// Toggle the incremental abstraction cache (default off).
    pub fn incremental_abstraction(mut self, on: bool) -> Self {
        self.opts.incremental_abstraction = on;
        self
    }

    /// Toggle shadow validation of the incremental cache (default off).
    pub fn shadow_validation(mut self, on: bool) -> Self {
        self.opts.shadow_validation = on;
        self
    }

    /// Caps the retained violation log (default 4096, minimum 1).
    pub fn violation_cap(mut self, cap: usize) -> Self {
        self.opts.violation_cap = cap.max(1);
        self
    }

    /// Caps checked hook events per trap before degrading (default
    /// unlimited).
    pub fn trap_check_budget(mut self, budget: u64) -> Self {
        self.opts.trap_check_budget = budget;
        self
    }

    /// Contained panics of one component before it is quarantined
    /// (default 3).
    pub fn quarantine_threshold(mut self, n: u32) -> Self {
        self.opts.quarantine_threshold = n;
        self
    }

    /// Traps a quarantined component sits out before recovery
    /// (default 16).
    pub fn quarantine_traps(mut self, n: u64) -> Self {
        self.opts.quarantine_traps = n;
        self
    }

    /// Builds the oracle.
    pub fn build(self) -> Arc<Oracle> {
        match self.events {
            Some(stream) => Oracle::with_stream(self.config, self.opts, stream),
            None => Oracle::new(self.config, self.opts),
        }
    }
}

/// Renders what differed between the full walk and the incremental
/// replay, maplet by maplet, for the shadow-divergence report.
fn pgtable_divergence(
    full: &AbstractPgtable,
    inc: &AbstractPgtable,
    full_anomalies: &[Anomaly],
    inc_anomalies: &[Anomaly],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for m in full.mapping.iter() {
        if !inc.mapping.iter().any(|n| n == m) {
            let _ = writeln!(out, "  full only: {m:?}");
        }
    }
    for m in inc.mapping.iter() {
        if !full.mapping.iter().any(|n| n == m) {
            let _ = writeln!(out, "  incremental only: {m:?}");
        }
    }
    if full.table_pages != inc.table_pages {
        let _ = writeln!(
            out,
            "  table pages: full {:?} vs incremental {:?}",
            full.table_pages, inc.table_pages
        );
    }
    if full_anomalies != inc_anomalies {
        let _ = writeln!(
            out,
            "  anomalies: full {full_anomalies:?} vs incremental {inc_anomalies:?}"
        );
    }
    if out.is_empty() {
        out.push_str("  (states compare equal after the fact; transient divergence)\n");
    }
    out
}

enum ComponentValue {
    Host(GhostHost),
    Pkvm(GhostPkvm),
    /// Live (handle, slot) pairs, plus (handle, incarnation) pairs so the
    /// shared copy can detect handle reuse across a teardown.
    VmTable(Vec<(Handle, usize)>, Vec<(Handle, u64)>),
    /// Handle, incarnation id, abstract state.
    Vm(Handle, u64, crate::state::GhostVm),
}

impl Oracle {
    /// The spec+check phase of `trap_exit` (runs contained). Reads the
    /// trap's recordings and reports through the bounded log; it never
    /// mutates `rec`, so a contained panic leaves no half-written record.
    fn spec_and_check(&self, cpu: usize, rec: &CpuRecord, call: &GhostCallData, name: &str) {
        // (7) Compute the expected post-state from the pre-state and the
        // call data, then (8) compare.
        let mut computed = GhostState::blank(&self.globals);
        match compute_post(&rec.pre, call, &mut computed) {
            SpecVerdict::Checked => {
                self.stats.traps_checked.fetch_add(1, Ordering::Relaxed);
                let mut outcome = check_trap(name, &rec.pre, &rec.post, &computed);
                if !rec.interleaved.is_empty() {
                    // Foreign traps updated these components between two of
                    // our critical sections; their recorded post is not
                    // "pre plus this handler's effect", so comparing it is
                    // meaningless. Drop their findings (counted, so a
                    // campaign can see how often the check degraded).
                    let interleaved = &rec.interleaved;
                    outcome.violations.retain(|v| {
                        let comp = match v {
                            Violation::SpecMismatch { component, .. }
                            | Violation::UnexpectedChange { component, .. } => component,
                            _ => return true,
                        };
                        let skip = comp_key_of_name(comp).is_some_and(|k| interleaved.contains(&k));
                        if skip {
                            self.stats.interleaved_skips.fetch_add(1, Ordering::Relaxed);
                        }
                        !skip
                    });
                }
                self.push_trace(
                    rec.trap_seq,
                    TrapRecord {
                        cpu,
                        name: name.to_string(),
                        outcome: if outcome.violations.is_empty() {
                            TrapOutcome::Clean
                        } else {
                            TrapOutcome::Violated(outcome.violations.len())
                        },
                    },
                );
                if !outcome.violations.is_empty() {
                    self.report_all_at(cpu, rec.trap_seq, outcome.violations);
                }
                // Seed spec-defined but never-recorded components into the
                // shared copy: the next acquisition validates them.
                if !outcome.deferred.is_empty() {
                    self.seed_deferred(name, &outcome.deferred, &computed, &rec.versions_at_entry);
                }
            }
            SpecVerdict::Unchecked(why) => {
                self.stats.traps_unchecked.fetch_add(1, Ordering::Relaxed);
                self.push_trace(
                    rec.trap_seq,
                    TrapRecord {
                        cpu,
                        name: name.to_string(),
                        outcome: TrapOutcome::Unchecked(why.into()),
                    },
                );
                // Loose case: the shared copy was already updated at the
                // lock releases.
            }
            SpecVerdict::Impossible(reason) => {
                self.push_trace(
                    rec.trap_seq,
                    TrapRecord {
                        cpu,
                        name: name.to_string(),
                        outcome: TrapOutcome::Violated(1),
                    },
                );
                self.report_at(
                    cpu,
                    rec.trap_seq,
                    Violation::SpecMismatch {
                        seq: None,
                        trap: name.to_string(),
                        component: "spec-detected impossibility".into(),
                        uniq: None,
                        diff: reason,
                    },
                );
            }
        }
    }

    fn lock_acquired_inner(
        &self,
        ctx: &HookCtx<'_>,
        trap: Option<u64>,
        comp: Component,
        view: &ComponentView,
        check_ni: bool,
    ) {
        let value = self.abstract_component(ctx, trap, comp, view);
        if check_ni {
            self.noninterference_check(ctx.cpu, trap, comp, &value);
        }
        let key = value.key();
        // Safe to read outside the rec lock: we hold the component's lock,
        // so no foreign trap can stamp this component right now.
        let version = self.shared.lock().versions.get(&key).copied();
        let mut rec = self.cpus[ctx.cpu].lock();
        if rec.in_trap {
            // A re-acquisition after one of our own releases: if the stamp
            // moved in between, a foreign trap updated the component and
            // the atomic per-trap check no longer applies to it.
            if let Some(&last) = rec.last_release.get(&key) {
                if version != Some(last) {
                    rec.interleaved.insert(key);
                }
            }
            // First acquisition within the trap defines the pre-state.
            Self::set_component(&mut rec.pre, &value, true);
        } else {
            drop(rec);
            self.shared.lock().set(&value);
        }
    }

    fn lock_releasing_inner(
        &self,
        ctx: &HookCtx<'_>,
        trap: Option<u64>,
        comp: Component,
        view: &ComponentView,
    ) {
        let value = self.abstract_component(ctx, trap, comp, view);
        let key = value.key();
        let version = {
            let mut shared = self.shared.lock();
            shared.set(&value);
            shared.versions.get(&key).copied()
        };
        let mut rec = self.cpus[ctx.cpu].lock();
        if rec.in_trap {
            // Last release within the trap defines the post-state.
            Self::set_component(&mut rec.post, &value, false);
            if let Some(v) = version {
                rec.last_release.insert(key, v);
            }
        }
    }
}

impl GhostHooks for Oracle {
    fn trap_enter(
        &self,
        ctx: &HookCtx<'_>,
        esr: Esr,
        fault_ipa: Option<u64>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
        // The quarantine clock counts traps.
        self.quarantine.tick();
        self.guarded("trap_enter", || {
            let seq = self
                .events
                .emit(ctx.cpu as u32, None, Event::TrapEnter { cpu: ctx.cpu });
            let versions = self.shared.lock().versions.clone();
            let mut rec = self.cpus[ctx.cpu].lock();
            rec.in_trap = true;
            rec.pre = GhostState::blank(&self.globals);
            rec.post = GhostState::blank(&self.globals);
            rec.call = Some(GhostCallData::new(ctx.cpu, esr, fault_ipa, *regs));
            rec.versions_at_entry = versions;
            rec.last_release.clear();
            rec.interleaved.clear();
            rec.events_this_trap = 0;
            rec.degraded = false;
            rec.trap_seq = Some(seq);
            let cpu_state = Self::ghost_cpu(regs, &loaded);
            rec.pre.locals.insert(ctx.cpu, cpu_state);
        });
    }

    fn trap_exit(
        &self,
        ctx: &HookCtx<'_>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
        let mut rec = self.cpus[ctx.cpu].lock();
        if !rec.in_trap {
            return;
        }
        rec.in_trap = false;
        // Phase 1: finish the recording. Contained so a panic leaves the
        // per-CPU record consistent (the next trap_enter resets it anyway).
        let prep = contain(|| {
            let cpu_state = Self::ghost_cpu(regs, &loaded);
            rec.post.locals.insert(ctx.cpu, cpu_state);
            let mut call = rec.call.take()?;
            call.regs_post = *regs;
            let name = Self::trap_name(&call);
            Some((call, name))
        });
        let (call, name) = match prep {
            Ok(Some(v)) => v,
            Ok(None) => {
                // No call data: trap_enter never ran (or its delivery was
                // dropped). A confused recording, not a hypervisor bug.
                let trap = rec.trap_seq;
                drop(rec);
                self.report_at(
                    ctx.cpu,
                    trap,
                    Violation::OracleSelfCheck {
                        seq: None,
                        context: "trap_exit".into(),
                        detail: "no recorded call data (trap_enter not delivered?)".into(),
                    },
                );
                return;
            }
            Err(payload) => {
                let trap = rec.trap_seq;
                drop(rec);
                self.stats.contained_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine.record_failure("trap_exit");
                self.report_at(
                    ctx.cpu,
                    trap,
                    Violation::OracleInternal {
                        seq: None,
                        component: "trap_exit".into(),
                        payload,
                    },
                );
                return;
            }
        };
        self.events.emit(
            ctx.cpu as u32,
            rec.trap_seq,
            Event::TrapExit {
                cpu: ctx.cpu,
                name: name.clone(),
            },
        );
        // Phase 2: the check — unless this trap degraded under budget
        // pressure, or this handler's spec step is quarantined.
        if rec.degraded {
            self.stats.degraded_traps.fetch_add(1, Ordering::Relaxed);
            self.stats.traps_unchecked.fetch_add(1, Ordering::Relaxed);
            self.push_trace(
                rec.trap_seq,
                TrapRecord {
                    cpu: ctx.cpu,
                    name,
                    outcome: TrapOutcome::Unchecked("per-trap check budget exhausted".into()),
                },
            );
            return;
        }
        let spec_key = format!("spec:{name}");
        match self.quarantine.disposition(&spec_key) {
            Disposition::Skip => {
                self.stats.quarantined_skips.fetch_add(1, Ordering::Relaxed);
                self.stats.traps_unchecked.fetch_add(1, Ordering::Relaxed);
                self.push_trace(
                    rec.trap_seq,
                    TrapRecord {
                        cpu: ctx.cpu,
                        name,
                        outcome: TrapOutcome::Unchecked("spec step quarantined".into()),
                    },
                );
                return;
            }
            Disposition::Recover => {
                self.stats
                    .quarantine_recoveries
                    .fetch_add(1, Ordering::Relaxed);
            }
            Disposition::Process => {}
        }
        match contain(|| self.spec_and_check(ctx.cpu, &rec, &call, &name)) {
            Ok(()) => self.quarantine.record_success(&spec_key),
            Err(payload) => {
                self.stats.contained_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine.record_failure(&spec_key);
                self.push_trace(
                    rec.trap_seq,
                    TrapRecord {
                        cpu: ctx.cpu,
                        name,
                        outcome: TrapOutcome::Unchecked("spec step panicked (contained)".into()),
                    },
                );
                self.report_at(
                    ctx.cpu,
                    rec.trap_seq,
                    Violation::OracleInternal {
                        seq: None,
                        component: spec_key,
                        payload,
                    },
                );
            }
        }
    }

    fn lock_acquired(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {
        let trap = self.current_trap(ctx.cpu);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::LockAcquired { cpu: ctx.cpu, comp },
        );
        let key = comp_name(comp);
        let check_ni = match self.quarantine.disposition(&key) {
            Disposition::Skip => {
                self.note_quarantine_skip(ctx, comp);
                return;
            }
            // Recovery from quarantine: re-seed the shared copy from a
            // full abstraction pass. The component's state while benched
            // is unknown, so the non-interference comparison is skipped
            // exactly once.
            Disposition::Recover => {
                self.stats
                    .quarantine_recoveries
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
            Disposition::Process => true,
        };
        if self.budget_exhausted(ctx.cpu) {
            self.stats
                .budget_degraded_events
                .fetch_add(1, Ordering::Relaxed);
            self.evict_shared(comp);
            return;
        }
        self.guarded(&key, || {
            self.lock_acquired_inner(ctx, trap, comp, view, check_ni);
        });
    }

    fn lock_releasing(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {
        let trap = self.current_trap(ctx.cpu);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::LockReleasing { cpu: ctx.cpu, comp },
        );
        let key = comp_name(comp);
        match self.quarantine.disposition(&key) {
            Disposition::Skip => {
                self.note_quarantine_skip(ctx, comp);
                return;
            }
            // A release *is* a full abstraction pass recorded into the
            // shared copy, so recovery needs no special casing here.
            Disposition::Recover => {
                self.stats
                    .quarantine_recoveries
                    .fetch_add(1, Ordering::Relaxed);
            }
            Disposition::Process => {}
        }
        if self.budget_exhausted(ctx.cpu) {
            self.stats
                .budget_degraded_events
                .fetch_add(1, Ordering::Relaxed);
            self.evict_shared(comp);
            return;
        }
        self.guarded(&key, || {
            self.lock_releasing_inner(ctx, trap, comp, view);
        });
    }

    fn read_once(&self, ctx: &HookCtx<'_>, tag: &'static str, value: u64) {
        self.stats.read_onces.fetch_add(1, Ordering::Relaxed);
        self.guarded("read_once", || {
            let mut rec = self.cpus[ctx.cpu].lock();
            let trap = if rec.in_trap { rec.trap_seq } else { None };
            self.events.emit(
                ctx.cpu as u32,
                trap,
                Event::ReadOnce {
                    cpu: ctx.cpu,
                    tag: tag.into(),
                    value,
                },
            );
            if let Some(call) = rec.call.as_mut() {
                call.read_onces.push((tag, value));
            }
        });
    }

    fn table_page_alloc(&self, ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {
        let trap = self.current_trap(ctx.cpu);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::TablePageAlloc {
                comp,
                pfn: page.pfn(),
            },
        );
        if !self.opts.check_separation {
            return;
        }
        let mut fp = self.footprints.lock();
        for (other, pages) in fp.iter() {
            if *other != comp && pages.contains(&page.pfn()) {
                let v = Violation::SeparationOverlap {
                    seq: None,
                    component: format!("{comp:?}"),
                    pfn: page.pfn(),
                    owner: format!("{other:?}"),
                };
                drop(fp);
                self.report_at(ctx.cpu, trap, v);
                return;
            }
        }
        fp.entry(comp).or_default().insert(page.pfn());
    }

    fn table_page_free(&self, ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {
        let trap = self.current_trap(ctx.cpu);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::TablePageFree {
                comp,
                pfn: page.pfn(),
            },
        );
        if !self.opts.check_separation {
            return;
        }
        if let Some(pages) = self.footprints.lock().get_mut(&comp) {
            pages.remove(&page.pfn());
        }
    }

    fn hyp_panic(&self, ctx: &HookCtx<'_>, reason: &str) {
        let trap = self.current_trap(ctx.cpu);
        self.report_at(
            ctx.cpu,
            trap,
            Violation::HypPanic {
                seq: None,
                reason: reason.into(),
            },
        );
    }

    fn wants_write_log(&self) -> bool {
        self.opts.uses_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TRACE_CAP;

    fn oracle() -> Arc<Oracle> {
        Oracle::new(&MachineConfig::default(), OracleOpts::default())
    }

    #[test]
    fn boot_spec_state_has_the_three_boot_components() {
        let o = oracle();
        let s = o.spec_boot_state();
        let host = s.host.as_ref().expect("host annotated");
        assert_eq!(host.annot.nr_pages(), o.globals.hyp_range.1);
        assert!(host.shared.is_empty());
        let pkvm = s.pkvm.as_ref().expect("linear map + uart");
        assert_eq!(pkvm.pgt.mapping.nr_pages(), o.globals.hyp_range.1 + 1);
        assert_eq!(s.vm_table.as_deref(), Some(&[][..]));
    }

    #[test]
    fn separation_check_flags_cross_component_table_pages() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let page = PhysAddr::new(0x4400_0000);
        o.table_page_alloc(&ctx, Component::Host, page);
        assert!(o.is_clean());
        // The same page backing a *different* component's table: flagged.
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(matches!(
            o.violations()[0],
            Violation::SeparationOverlap { .. }
        ));
        // Freeing and re-allocating elsewhere is fine.
        o.clear_violations();
        o.table_page_free(&ctx, Component::Host, page);
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn separation_check_can_be_disabled() {
        let o = Oracle::builder(&MachineConfig::default())
            .check_separation(false)
            .build();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let page = PhysAddr::new(0x4400_0000);
        o.table_page_alloc(&ctx, Component::Host, page);
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(o.is_clean());
    }

    fn ghost_vm(handle: Handle, donated: &[u64]) -> crate::state::GhostVm {
        crate::state::GhostVm {
            handle,
            slot: 0,
            protected: true,
            pgt: Default::default(),
            donated: donated.to_vec(),
            vcpus: Vec::new(),
        }
    }

    #[test]
    fn shared_copy_drops_the_dying_release_of_a_torn_down_vm() {
        // `do_teardown_vm` releases the dying VM's lock *after* dropping
        // the table lock, so the release arrives when the table no longer
        // lists the VM. It must not resurrect the dead state: a concurrent
        // `init_vm` reusing the handle would otherwise be compared against
        // it.
        let o = oracle();
        let h: Handle = 0x1000;
        let mut shared = o.shared.lock();
        shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 1)]));
        shared.set(&ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])));
        assert!(shared.state.vms.contains_key(&h));
        // Teardown: table recorded without the VM prunes its entry...
        shared.set(&ComponentValue::VmTable(Vec::new(), Vec::new()));
        assert!(!shared.state.vms.contains_key(&h));
        // ...and the dying VM's trailing lock release is dropped.
        shared.set(&ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])));
        assert!(!shared.state.vms.contains_key(&h), "dead VM resurrected");
        // A new incarnation reusing the handle records normally.
        shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 2)]));
        shared.set(&ComponentValue::Vm(h, 2, ghost_vm(h, &[0x44e07])));
        assert_eq!(shared.state.vms[&h].donated, vec![0x44e07]);
        // An even later stale release from the old incarnation still loses.
        shared.set(&ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])));
        assert_eq!(shared.state.vms[&h].donated, vec![0x44e07]);
    }

    #[test]
    fn noninterference_skips_a_reused_handles_old_incarnation() {
        let o = oracle();
        let h: Handle = 0x1000;
        {
            let mut shared = o.shared.lock();
            shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 2)]));
            shared.set(&ComponentValue::Vm(h, 2, ghost_vm(h, &[0x44e07])));
        }
        // A different incarnation's view differing from the stored state
        // is not interference — the two states describe different VMs.
        o.noninterference_check(
            0,
            None,
            Component::Vm(h),
            &ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])),
        );
        assert!(o.is_clean(), "{:?}", o.violations());
        // The same incarnation differing is the real §4.4 violation.
        o.noninterference_check(
            0,
            None,
            Component::Vm(h),
            &ComponentValue::Vm(h, 2, ghost_vm(h, &[0x44007])),
        );
        assert!(matches!(
            &o.violations()[0],
            Violation::NonInterference { .. }
        ));
    }

    #[test]
    fn table_recording_invalidates_a_stale_incarnations_state() {
        // Belt and braces: if an old incarnation's state is somehow still
        // stored when the table is recorded with a new incarnation under
        // the same handle, the stale state is dropped (and the component
        // stamped) rather than compared against the new VM.
        let o = oracle();
        let h: Handle = 0x1000;
        let mut shared = o.shared.lock();
        shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 1)]));
        shared.set(&ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])));
        let stamp_before = shared.versions[&CompKey::Vm(h)];
        shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 5)]));
        assert!(!shared.state.vms.contains_key(&h));
        assert!(shared.versions[&CompKey::Vm(h)] > stamp_before);
        assert_eq!(shared.vm_uniq[&h], 5);
    }

    #[test]
    fn hyp_panic_is_a_violation() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.hyp_panic(&ctx, "BUG()");
        assert!(
            matches!(&o.violations()[0], Violation::HypPanic { reason, .. } if reason == "BUG()")
        );
    }

    #[test]
    fn trace_is_bounded() {
        let o = oracle();
        for i in 0..(TRACE_CAP + 10) {
            o.push_trace(
                None,
                TrapRecord {
                    cpu: 0,
                    name: format!("t{i}"),
                    outcome: TrapOutcome::Clean,
                },
            );
        }
        let t = o.trace();
        assert_eq!(t.len(), TRACE_CAP);
        assert_eq!(t.last().unwrap().name, format!("t{}", TRACE_CAP + 9));
    }

    #[test]
    fn ghost_bytes_accounting_is_nonzero_once_populated() {
        let o = oracle();
        let base = o.approx_ghost_bytes();
        let mut shared = o.shared.lock();
        let mut host = GhostHost::default();
        host.annot.insert_new(Maplet {
            ia: 0x4400_0000,
            nr_pages: 16,
            target: MapletTarget::Annotated {
                owner: pkvm_hyp::owner::OwnerId::HYP,
            },
        });
        shared.state.host = Some(host);
        drop(shared);
        assert!(o.approx_ghost_bytes() > base);
    }

    #[test]
    fn malformed_deferred_name_reports_a_self_check_violation() {
        let o = oracle();
        let computed = GhostState::blank(&o.globals);
        o.seed_deferred(
            "init_vm",
            &["vm[bogus]".to_string(), "vm[".to_string()],
            &computed,
            &HashMap::new(),
        );
        let vs = o.violations();
        assert_eq!(vs.len(), 2, "{vs:?}");
        for v in &vs {
            assert!(
                matches!(v, Violation::OracleSelfCheck { context, detail, .. }
                    if context.contains("init_vm") && detail.contains("malformed")),
                "{v}"
            );
        }
    }

    #[test]
    fn contained_panics_report_and_then_quarantine() {
        let o = Oracle::new(
            &MachineConfig::default(),
            OracleOpts::builder()
                .quarantine_threshold(3)
                .quarantine_traps(2)
                .build(),
        );
        for _ in 0..3 {
            o.guarded("host", || panic!("chaos made me do it"));
        }
        let vs = o.violations();
        assert_eq!(vs.len(), 3);
        assert!(vs.iter().all(|v| matches!(
            v,
            Violation::OracleInternal { component, payload, .. }
                if component == "host" && payload.contains("chaos")
        )));
        assert_eq!(o.stats.contained_panics.load(Ordering::Relaxed), 3);
        assert_eq!(o.quarantine.disposition("host"), Disposition::Skip);
        assert_eq!(o.quarantined(), 1);
        // After its bench time the component recovers exactly once.
        o.quarantine.tick();
        o.quarantine.tick();
        assert_eq!(o.quarantine.disposition("host"), Disposition::Recover);
        assert_eq!(o.quarantine.disposition("host"), Disposition::Process);
    }

    #[test]
    fn violation_log_is_bounded_and_drops_are_counted() {
        let o = Oracle::new(
            &MachineConfig::default(),
            OracleOpts::builder().violation_cap(4).build(),
        );
        for i in 0..10 {
            o.report(Violation::HypPanic {
                seq: None,
                reason: format!("p{i}"),
            });
        }
        assert_eq!(o.violations().len(), 4);
        assert_eq!(o.violation_count(), 4);
        assert_eq!(o.stats.violations_dropped.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn reports_are_annotated_with_the_vm_incarnation() {
        let o = oracle();
        let h: Handle = 0x1000;
        {
            let mut shared = o.shared.lock();
            shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 7)]));
        }
        o.report(Violation::SpecMismatch {
            seq: None,
            trap: "vcpu_run".into(),
            component: format!("vm[{h}]"),
            uniq: None,
            diff: "d".into(),
        });
        let v = &o.violations()[0];
        assert_eq!(v.vm_uniq(), Some(7));
        let line = v.to_string();
        assert!(
            line.starts_with("violation kind=spec-mismatch trap=vcpu_run comp=vm[4096] uniq=7"),
            "{line}"
        );
    }

    #[test]
    fn trap_exit_without_call_data_is_a_self_check_not_a_panic() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        // Force the inconsistent recording a dropped trap_enter leaves.
        o.cpus[0].lock().in_trap = true;
        o.trap_exit(&ctx, &GprFile::default(), None);
        assert!(matches!(
            &o.violations()[0],
            Violation::OracleSelfCheck { context, .. } if context == "trap_exit"
        ));
    }

    #[test]
    fn deferred_seeding_respects_concurrent_component_updates() {
        let o = oracle();
        // A concurrent trap recorded the host component after this trap
        // entered (entry snapshot is empty, shared copy is stamped).
        let concurrent = GhostHost::default();
        {
            let mut shared = o.shared.lock();
            shared.state.host = Some(concurrent.clone());
            shared.stamp(CompKey::Host);
        }
        let mut computed = GhostState::blank(&o.globals);
        let mut stale = GhostHost::default();
        stale.annot.insert_new(Maplet {
            ia: 0x4400_0000,
            nr_pages: 1,
            target: MapletTarget::Annotated {
                owner: pkvm_hyp::owner::OwnerId::HYP,
            },
        });
        computed.host = Some(stale);
        o.seed_deferred("share", &["host".to_string()], &computed, &HashMap::new());
        // The stale expectation must not overwrite the fresher recording.
        let shared = o.shared.lock();
        assert_eq!(shared.state.host.as_ref(), Some(&concurrent));
        drop(shared);
        assert!(o.is_clean());

        // With matching versions the seed lands.
        let versions = o.shared.lock().versions.clone();
        o.seed_deferred("share", &["host".to_string()], &computed, &versions);
        let shared = o.shared.lock();
        assert_eq!(shared.state.host.as_ref(), computed.host.as_ref());
    }
}
